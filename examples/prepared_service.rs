//! The prepared-query engine as a service loop: register query shapes once,
//! then answer a stream of (query, database) traffic through the plan cache
//! and the batch API.
//!
//! Run with `cargo run --release --example prepared_service`.

use cq_fine::classification::{Engine, EngineConfig, QueryId};
use cq_fine::structures::Structure;
use cq_fine::workloads::repeated_query_traffic;

fn main() {
    let engine = Engine::new(EngineConfig::default());

    // A deterministic traffic trace: 4 distinct query shapes (one per
    // solver tier), each recurring 12 times against a fleet of 8 random
    // databases.
    let traffic = repeated_query_traffic(8, 12, 12, 2024);
    println!(
        "traffic: {} instances over {} distinct queries, {} databases",
        traffic.len(),
        traffic.queries.len(),
        traffic.databases.len()
    );

    // Register each distinct query once; preparation (core + widths +
    // decomposition certificates) happens here and never again.
    let ids: Vec<QueryId> = traffic.queries.iter().map(|q| engine.register(q)).collect();
    for (q, id) in traffic.queries.iter().zip(&ids) {
        let plan = engine.prepared(*id);
        let w = plan.widths();
        println!(
            "prepared {q}: core size {}, tw {}, pw {}, td {}",
            plan.evaluated_size(),
            w.treewidth,
            w.pathwidth,
            w.treedepth
        );
    }

    // Serve the whole trace through the batch API.
    let batch: Vec<(QueryId, &Structure)> = traffic
        .trace
        .iter()
        .map(|&(q, d)| (ids[q], &traffic.databases[d]))
        .collect();
    let reports = engine.solve_batch(&batch);

    let satisfied = reports.iter().filter(|r| r.exists).count();
    println!(
        "served {} instances: {} satisfied, {} not",
        reports.len(),
        satisfied,
        reports.len() - satisfied
    );

    // Per-tier accounting: which solver handled how much of the traffic.
    for choice in [
        cq_fine::classification::SolverChoice::TreeDepth,
        cq_fine::classification::SolverChoice::PathDecomposition,
        cq_fine::classification::SolverChoice::TreeDecomposition,
        cq_fine::classification::SolverChoice::Backtracking,
    ] {
        let n = reports.iter().filter(|r| r.choice == choice).count();
        if n > 0 {
            println!("  {choice:?}: {n} instances");
        }
    }

    let stats = engine.cache_stats();
    println!(
        "plan cache: {} plans, {} hits, {} misses (each distinct query prepared exactly once)",
        stats.entries, stats.hits, stats.misses
    );
}
