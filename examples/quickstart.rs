//! Quickstart: evaluate a boolean conjunctive query on a small database,
//! inspect its structural measures, and let the classification engine pick
//! the right algorithm.
//!
//! Run with `cargo run --example quickstart`.

use cq_fine::classification::{solve_instance, EngineConfig};
use cq_fine::decomp::width_profile_of_structure;
use cq_fine::workloads;

fn main() {
    // A chain (multi-way join) query: ∃x0..x4  R0(x0,x1) ∧ R1(x1,x2) ∧ ...
    let query = workloads::chain_join_query(4, 2);
    println!("query: {query}");

    // A random database over the same schema.
    let db = workloads::random_database(60, 2, 220, 7);
    println!(
        "database: {} elements, {} tuples",
        db.universe_size(),
        db.tuple_count()
    );

    // Chandra–Merlin: evaluation = homomorphism from the canonical structure.
    let canonical = query.canonical_structure().expect("well-formed query");
    let widths = width_profile_of_structure(&canonical);
    println!(
        "canonical structure widths: treewidth {}, pathwidth {}, tree depth {}",
        widths.treewidth, widths.pathwidth, widths.treedepth
    );

    let report = solve_instance(&canonical, &db, EngineConfig::default());
    println!(
        "engine chose {:?} (degree hint {:?}); query is {} on this database",
        report.choice,
        report.degree_hint,
        if report.exists { "TRUE" } else { "FALSE" }
    );

    // Direct evaluation through the ConjunctiveQuery API agrees.
    assert_eq!(query.evaluate(&db).unwrap(), report.exists);

    // A star query (tree depth 2) is evaluated by the para-L algorithm.
    let star = workloads::star_join_query(5, 2)
        .canonical_structure()
        .unwrap();
    let star_report = solve_instance(&star, &db, EngineConfig::default());
    println!(
        "star join query: chose {:?}, answer {}",
        star_report.choice, star_report.exists
    );
}
