//! Regenerate the checked-in golden plan-store fixture
//! `tests/fixtures/plans_v1.bin` — the byte-level pin of plan-store format
//! version 1 that CI decodes on every build.
//!
//! Run after an **intentional, version-bumped** format change:
//!
//! ```text
//! cargo run --example generate_plan_fixture
//! ```
//!
//! then rename / re-pin the fixture to the new version alongside a
//! `PLAN_STORE_VERSION` bump.  If this regenerates different bytes *without*
//! a version bump, the codec drifted and the compatibility test is failing
//! for exactly the reason it exists.
//!
//! The fixture content is fully deterministic: the first six
//! `distinct_query_fleet` queries prepared under the default configuration,
//! with every lazy artifact (sentence, staircase, counting certificates)
//! materialized so all optional fields are exercised in their present form,
//! saved sorted by fingerprint.

use cq_fine::classification::{Engine, EngineConfig};
use cq_fine::structures::families;
use cq_fine::workloads::distinct_query_fleet;

fn main() {
    let config = EngineConfig::default();
    let engine = Engine::new(config);
    let target = families::clique(3);
    for query in distinct_query_fleet(6) {
        let plan = engine.prepare(&query);
        plan.sentence();
        plan.staircase();
        engine.count_prepared(&plan, &target);
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/plans_v1.bin");
    let saved = engine.save_plans(path).expect("write fixture");
    println!("wrote {saved} plans to {path}");
    let bytes = std::fs::read(path).expect("read back");
    println!(
        "fixture: {} bytes, fnv1a64 {:#018x}",
        bytes.len(),
        cq_fine::structures::codec::fnv1a64(&bytes)
    );
}
