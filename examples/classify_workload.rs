//! Classify query classes into the three degrees of Theorem 3.1.
//!
//! Run with `cargo run --example classify_workload`.

use cq_fine::classification::{classify_generated, Degree};
use cq_fine::structures::{families, star_expansion};

/// A named class: label, generator, and how many members to sample.
type NamedClass = (
    &'static str,
    Box<dyn Fn(usize) -> cq_fine::structures::Structure>,
    usize,
);

fn main() {
    let classes: Vec<NamedClass> = vec![
        ("undirected paths", Box::new(|i| families::path(i + 2)), 7),
        ("stars K_{1,l}", Box::new(|i| families::star(i + 1)), 7),
        ("even cycles", Box::new(|i| families::cycle(2 * i + 4)), 7),
        (
            "directed paths ->P_k",
            Box::new(|i| families::directed_path(i + 2)),
            8,
        ),
        (
            "coloured paths P*_k",
            Box::new(|i| star_expansion(&families::path(i + 2))),
            8,
        ),
        ("odd cycles", Box::new(|i| families::cycle(2 * i + 3)), 7),
        (
            "coloured trees T*_h",
            Box::new(|i| star_expansion(&families::tree_t(i + 1))),
            3,
        ),
        ("cliques K_k", Box::new(|i| families::clique(i + 1)), 6),
    ];

    println!("class                     degree          max core (tw, pw, td)");
    for (name, gen, samples) in classes {
        let c = classify_generated(&*gen, samples);
        let degree = match c.degree {
            Degree::ParaL => "para-L",
            Degree::PathComplete => "PATH-complete",
            Degree::TreeComplete => "TREE-complete",
            Degree::W1Hard => "W[1]-hard",
        };
        println!(
            "{name:<25} {degree:<15} ({}, {}, {})",
            c.max_core_treewidth, c.max_core_pathwidth, c.max_core_treedepth
        );
    }
}
