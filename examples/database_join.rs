//! A database-flavoured scenario: evaluate and count chain joins, star joins
//! and cycle joins over a synthetic database, using the algorithm licensed
//! by each query's structure.
//!
//! Run with `cargo run --example database_join`.

use cq_fine::solver::treedec::count_hom_via_tree_decomposition;
use cq_fine::solver::treedepth::count_hom_via_treedepth;
use cq_fine::structures::count_homomorphisms_bruteforce;
use cq_fine::workloads;

fn main() {
    let db = workloads::random_database(40, 2, 160, 2024);
    println!(
        "database: {} elements, {} tuples over schema R0/2, R1/2",
        db.universe_size(),
        db.tuple_count()
    );

    for (name, query) in [
        ("chain join (length 3)", workloads::chain_join_query(3, 2)),
        ("star join (4 legs)", workloads::star_join_query(4, 2)),
        ("cycle join (length 4)", workloads::cycle_join_query(4, 2)),
    ] {
        let a = query.canonical_structure().expect("well-formed");
        let answer = query.evaluate(&db).expect("same schema");
        // Counting: pick sum-product for tree-depth-bounded shapes, tree DP
        // otherwise; cross-check against brute force on this small database.
        let widths = cq_fine::decomp::width_profile_of_structure(&a);
        let count = if widths.treedepth <= 3 {
            count_hom_via_treedepth(&a, &db)
        } else {
            let (_, td) = cq_fine::decomp::treewidth::treewidth_of_structure(&a);
            count_hom_via_tree_decomposition(&a, &db, &td)
        };
        assert_eq!(count, count_homomorphisms_bruteforce(&a, &db));
        println!("{name:<22} satisfied: {answer:<5}  #solutions (boolean-hom count): {count}");
    }
}
