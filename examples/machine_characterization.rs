//! The machine characterizations of PATH and TREE (Theorems 4.3 and 5.5):
//! run a jump machine and an alternating jump machine, compile their
//! acceptance questions into HOM(P*) / HOM(T*) instances, and check that the
//! homomorphism answers agree with the machine semantics.
//!
//! Run with `cargo run --example machine_characterization`.

use cq_fine::graphs::families::grid_graph;
use cq_fine::machine::alternating::accepts_alternating_machine;
use cq_fine::machine::compile::{compile_alternating_to_hom_tree, compile_jump_to_hom_path};
use cq_fine::machine::jump::accepts_jump_machine;
use cq_fine::machine::problems::{StPathInput, StPathMachine, TreeQueryInput, TreeQueryMachine};
use cq_fine::structures::{families, homomorphism_exists, ops::colored_target};

fn main() {
    // PATH: the st-path jump machine on a 3x4 grid.
    let input = StPathInput {
        graph: grid_graph(3, 4),
        s: 0,
        t: 11,
        k: 6,
    };
    let run = accepts_jump_machine(&StPathMachine, &input);
    let compiled = compile_jump_to_hom_path(&StPathMachine, &input);
    let hom = homomorphism_exists(&compiled.query, &compiled.database);
    println!(
        "st-path on the 3x4 grid, k = 6: machine accepts = {}, HOM(P*) instance = {} \
         ({} configurations, nondeterministic bits = {})",
        run.accepted, hom, compiled.configurations, run.nondeterministic_bits
    );
    assert_eq!(run.accepted, hom);

    // TREE: the tree-query alternating machine evaluating T*_2 on a triangle.
    let nodes = families::binary_universe_size(2);
    let db = colored_target(nodes, &families::clique(3), |_| (0..3).collect());
    let input = TreeQueryInput {
        height: 2,
        database: db,
    };
    let run = accepts_alternating_machine(&TreeQueryMachine, &input);
    let compiled = compile_alternating_to_hom_tree(&TreeQueryMachine, &input);
    let hom = homomorphism_exists(&compiled.query, &compiled.database);
    println!(
        "T*_2 into a triangle: alternating machine accepts = {}, HOM(T*) instance = {} \
         (co-nondeterministic bits = {})",
        run.accepted, hom, run.conondeterministic_bits
    );
    assert_eq!(run.accepted, hom);
}
