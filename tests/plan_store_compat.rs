//! Golden-fixture compatibility gate for the plan-store format.
//!
//! `tests/fixtures/plans_v1.bin` is a checked-in version-1 store written by
//! `examples/generate_plan_fixture.rs`.  This test decodes it with the
//! current build:
//!
//! * if the codec's byte layout drifts **without** a `PLAN_STORE_VERSION`
//!   bump, the fixture stops decoding (or stops verifying) and the build
//!   fails here;
//! * if the version is bumped, the version assertion fails until the
//!   fixture story is consciously updated alongside it.
//!
//! Either way, silent format drift cannot land.

use cq_fine::classification::{Engine, EngineConfig, PlanStore, PLAN_STORE_VERSION};
use cq_fine::structures::{families, homomorphism_exists, Structure};
use cq_fine::workloads::distinct_query_fleet;

const FIXTURE: &[u8] = include_bytes!("fixtures/plans_v1.bin");
const FIXTURE_PLANS: usize = 6;

#[test]
fn version_1_is_the_current_format() {
    // A version bump must consciously revisit the golden fixture (new
    // fixture file, updated constants here) — this assertion is the tripwire.
    assert_eq!(
        PLAN_STORE_VERSION, 1,
        "PLAN_STORE_VERSION changed: regenerate the golden fixture and update this test"
    );
}

#[test]
fn golden_fixture_decodes_and_every_plan_verifies() {
    let store = PlanStore::from_bytes(FIXTURE).expect(
        "checked-in plans_v1.bin no longer decodes: the on-disk format drifted \
         without a PLAN_STORE_VERSION bump",
    );
    assert_eq!(store.corrupt_records(), 0);
    assert_eq!(store.len(), FIXTURE_PLANS);
    assert_eq!(store.config(), &EngineConfig::default());
    let config = EngineConfig::default();
    for record in store.records() {
        let plan = record.decode_plan().expect("fixture payload decodes");
        assert_eq!(plan.fingerprint(), record.fingerprint());
        plan.verify(&config)
            .unwrap_or_else(|e| panic!("fixture plan failed verification: {e}"));
    }
}

#[test]
fn golden_fixture_warm_starts_todays_engine_with_zero_preparation() {
    // The fixture was generated from the first six distinct_query_fleet
    // queries; regenerate them and prove the decade-old bytes still serve
    // today's traffic with zero per-query exponential work.
    let fleet = distinct_query_fleet(FIXTURE_PLANS);
    let mut path = std::env::temp_dir();
    path.push(format!("cq_fixture_compat_{}.bin", std::process::id()));
    std::fs::write(&path, FIXTURE).expect("stage fixture");
    let engine = Engine::new(EngineConfig::default())
        .with_plan_store(&path)
        .expect("warm-start from the golden fixture");
    let _ = std::fs::remove_file(&path);
    let stats = engine.prep_stats();
    assert_eq!(stats.plans_loaded, FIXTURE_PLANS as u64);
    assert_eq!(stats.plans_rejected, 0);

    let targets = [
        families::clique(3),
        families::clique(4),
        families::grid(3, 3),
    ];
    let batch: Vec<(&Structure, &Structure)> = fleet
        .iter()
        .flat_map(|q| targets.iter().map(move |t| (q, t)))
        .collect();
    let reports = engine.solve_batch_instances(&batch);
    for ((q, t), report) in batch.iter().zip(&reports) {
        assert_eq!(report.exists, homomorphism_exists(q, t), "{q} -> {t}");
    }
    let counts = engine.count_batch(&batch);
    for ((q, t), count) in batch.iter().zip(&counts) {
        assert_eq!(
            count.count.positive(),
            homomorphism_exists(q, t),
            "{q} -> {t}"
        );
    }
    let after = engine.prep_stats();
    assert_eq!(after.preparations, 0, "fixture plans must serve everything");
    assert_eq!(after.total_width_calls(), 0, "warm path ran a width DP");
    assert_eq!(after.core_computations, 0);
    assert_eq!(after.counting_preparations, 0);
}

#[test]
fn fixture_regeneration_is_bit_identical() {
    // The generator example documents how the fixture is produced; this
    // test re-runs the same recipe in-process and compares bytes, so the
    // fixture can never silently diverge from its documented provenance.
    let config = EngineConfig::default();
    let engine = Engine::new(config);
    let target = families::clique(3);
    for query in distinct_query_fleet(FIXTURE_PLANS) {
        let plan = engine.prepare(&query);
        plan.sentence();
        plan.staircase();
        engine.count_prepared(&plan, &target);
    }
    let mut path = std::env::temp_dir();
    path.push(format!("cq_fixture_regen_{}.bin", std::process::id()));
    engine.save_plans(&path).expect("save");
    let regenerated = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        regenerated, FIXTURE,
        "regenerating the fixture produced different bytes: codec drift \
         without a version bump"
    );
}
