//! Integration test: the Classification Theorem end to end — classify a
//! family, then solve instances with the licensed algorithm and cross-check
//! every answer against the reference solver.

use cq_fine::classification::{classify_generated, solve_instance, Degree, EngineConfig};
use cq_fine::structures::{families, homomorphism_exists, star_expansion};

#[test]
fn degrees_of_the_paper_families() {
    assert_eq!(
        classify_generated(|i| families::path(i + 2), 7).degree,
        Degree::ParaL
    );
    assert_eq!(
        classify_generated(|i| families::directed_path(i + 2), 8).degree,
        Degree::PathComplete
    );
    assert_eq!(
        classify_generated(|i| star_expansion(&families::tree_t(i + 1)), 3).degree,
        Degree::TreeComplete
    );
    assert_eq!(
        classify_generated(|i| families::clique(i + 1), 6).degree,
        Degree::W1Hard
    );
}

#[test]
fn engine_matches_reference_on_a_grid_of_instances() {
    let queries = vec![
        families::star(3),
        families::path(5),
        families::cycle(5),
        families::cycle(6),
        families::directed_path(4),
        families::grid(2, 2),
    ];
    let targets = vec![
        families::path(4),
        families::cycle(5),
        families::cycle(8),
        families::clique(3),
        families::grid(3, 3),
        families::directed_cycle(6),
    ];
    for a in &queries {
        for b in &targets {
            let report = solve_instance(a, b, EngineConfig::default());
            assert_eq!(report.exists, homomorphism_exists(a, b), "{a} -> {b}");
        }
    }
}
