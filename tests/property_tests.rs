//! Property-based tests on the core invariants, spanning crates.
//!
//! The container build has no access to crates.io, so instead of `proptest`
//! these properties are exercised over a deterministic grid of seeded random
//! structures (the workload generators are seeded, so failures reproduce
//! exactly; the failing `(n, seed)` pair is in every assertion message).

use cq_fine::classification::{Engine, EngineConfig};
use cq_fine::decomp::width_profile;
use cq_fine::graphs::gaifman_graph;
use cq_fine::solver::treedec::{count_hom_via_tree_decomposition, hom_via_tree_decomposition};
use cq_fine::solver::treedepth::count_hom_via_treedepth;
use cq_fine::structures::{
    core_of, count_homomorphisms_bruteforce, homomorphism_exists, is_core, Structure,
};
use cq_fine::workloads::{random_digraph_structure, random_graph_structure};

/// Deterministic sample of small random undirected graph structures.
fn small_graphs() -> Vec<(usize, u64, Structure)> {
    let mut out = Vec::new();
    for n in 3..8 {
        for seed in 0..5 {
            out.push((n, seed, random_graph_structure(n, 0.4, seed)));
        }
    }
    out
}

/// Deterministic sample of small random digraph structures.
fn small_digraphs() -> Vec<(usize, u64, Structure)> {
    let mut out = Vec::new();
    for n in 2..7 {
        for seed in 0..3 {
            out.push((n, seed, random_digraph_structure(n, 0.3, seed)));
        }
    }
    out
}

/// The core is a core, is homomorphically equivalent to the input, and
/// taking the core twice changes nothing.
#[test]
fn core_invariants() {
    for (n, seed, a) in small_graphs() {
        let c = core_of(&a);
        assert!(is_core(&c.core), "core of (n={n}, seed={seed}) is a core");
        assert!(homomorphism_exists(&a, &c.core), "(n={n}, seed={seed})");
        assert!(homomorphism_exists(&c.core, &a), "(n={n}, seed={seed})");
        assert_eq!(
            core_of(&c.core).core_size(),
            c.core_size(),
            "idempotent core (n={n}, seed={seed})"
        );
    }
}

/// tw <= pw <= td - 1 (for graphs with at least one edge).
#[test]
fn width_measure_ordering() {
    for (n, seed, a) in small_graphs() {
        let g = gaifman_graph(&a);
        let p = width_profile(&g);
        assert!(p.treewidth <= p.pathwidth, "(n={n}, seed={seed})");
        if g.edge_count() > 0 {
            assert!(p.pathwidth < p.treedepth, "(n={n}, seed={seed})");
        }
    }
}

/// The tree-decomposition DP and the reference solver agree on decision and
/// counting; the tree-depth counter agrees as well.
#[test]
fn solvers_agree() {
    let digraphs = small_digraphs();
    for (i, (an, aseed, a)) in digraphs.iter().enumerate() {
        // Pair each query with a rotation of the sample as targets.
        let (bn, bseed, b) = &digraphs[(i * 7 + 3) % digraphs.len()];
        let label = format!("a=(n={an}, seed={aseed}) b=(n={bn}, seed={bseed})");
        let expected = homomorphism_exists(a, b);
        let (_, td) = cq_fine::decomp::treewidth::treewidth_of_structure(a);
        assert_eq!(hom_via_tree_decomposition(a, b, &td), expected, "{label}");
        let expected_count = count_homomorphisms_bruteforce(a, b);
        assert_eq!(
            count_hom_via_tree_decomposition(a, b, &td),
            expected_count,
            "{label}"
        );
        assert_eq!(count_hom_via_treedepth(a, b), expected_count, "{label}");
    }
}

/// Parallel determinism: `solve_batch_instances` with `workers = 1` and
/// `workers = N` produce identical `EngineReport` sequences on random
/// batches — the parallel fan-out changes wall-clock, never results or
/// their order.  Exercised over several seeded workloads and worker counts.
#[test]
fn parallel_batch_reports_equal_sequential_reports() {
    use cq_fine::workloads::repeated_query_traffic;
    for seed in [1u64, 13, 77] {
        let workload = repeated_query_traffic(4, 10, 5, seed);
        let instances = workload.instances();
        let sequential = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let expected = sequential.solve_batch_instances(&instances);
        for workers in [2usize, 4, 8] {
            let parallel = Engine::new(EngineConfig {
                workers,
                ..EngineConfig::default()
            });
            let got = parallel.solve_batch_instances(&instances);
            assert_eq!(
                got, expected,
                "workers={workers} diverged from sequential (seed={seed})"
            );
            // Same preparation work too: each distinct query exactly once.
            assert_eq!(
                parallel.prep_stats().preparations,
                sequential.prep_stats().preparations,
                "seed={seed} workers={workers}"
            );
        }
    }
}

/// The registered-handle batch API is deterministic across worker counts as
/// well, including the order of reports for interleaved query handles.
#[test]
fn parallel_registered_batch_is_deterministic() {
    use cq_fine::workloads::database_fleet;
    let queries = cq_fine::workloads::distinct_query_fleet(6);
    let fleet = database_fleet(5, 9, 0.4, 21);
    let make_engine = |workers: usize| {
        let engine = Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        });
        let ids: Vec<_> = queries.iter().map(|q| engine.register(q)).collect();
        (engine, ids)
    };
    let (seq_engine, seq_ids) = make_engine(1);
    let (par_engine, par_ids) = make_engine(8);
    let seq_batch: Vec<_> = fleet
        .iter()
        .flat_map(|db| seq_ids.iter().map(move |&id| (id, db)))
        .collect();
    let par_batch: Vec<_> = fleet
        .iter()
        .flat_map(|db| par_ids.iter().map(move |&id| (id, db)))
        .collect();
    assert_eq!(
        seq_engine.solve_batch(&seq_batch),
        par_engine.solve_batch(&par_batch)
    );
}

/// Decision/counting consistency: `count > 0` ⟺ the decision engine
/// reports a homomorphism, across the seeded grid — even though the two
/// paths run different algorithms on different structures (the decision
/// side may evaluate the core, the counting side never does).  Exercised
/// through one shared engine per worker count, with counts additionally
/// bit-identical between workers 1 and 4.
#[test]
fn counting_is_positive_exactly_when_decision_succeeds() {
    let digraphs = small_digraphs();
    let pairs: Vec<(&Structure, &Structure)> = digraphs
        .iter()
        .enumerate()
        .map(|(i, (_, _, a))| {
            let (_, _, b) = &digraphs[(i * 7 + 3) % digraphs.len()];
            (a, b)
        })
        .collect();
    let mut per_worker_counts = Vec::new();
    for workers in [1usize, 4] {
        let engine = Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        });
        let decisions = engine.solve_batch_instances(&pairs);
        let counts = engine.count_batch(&pairs);
        for (((a, b), decision), count) in pairs.iter().zip(&decisions).zip(&counts) {
            let (an, aseed, _) = digraphs
                .iter()
                .find(|(_, _, q)| std::ptr::eq(q, *a))
                .unwrap();
            assert_eq!(
                count.count.positive(),
                decision.exists,
                "decide/count disagree on a=(n={an}, seed={aseed}) -> {b} (workers={workers})"
            );
            assert_eq!(
                count.count,
                count_homomorphisms_bruteforce(a, b),
                "count wrong on a=(n={an}, seed={aseed}) -> {b} (workers={workers})"
            );
        }
        per_worker_counts.push(counts);
    }
    assert_eq!(
        per_worker_counts[0], per_worker_counts[1],
        "counts must be bit-identical across worker counts"
    );
}

/// Kernel determinism under fan-out: the evaluation kernel behind every
/// registry solver produces **bit-identical** decision reports and counts
/// with `workers = 1` and `workers = 4` on the kernel stress trace (the
/// tree-DP/counting regime of bench E16) — the instance-index cache and
/// the hash-join tables introduce no cross-thread nondeterminism.
#[test]
fn kernel_results_are_bit_identical_across_workers_1_and_4() {
    use cq_fine::workloads::kernel_stress_traffic;
    let workload = kernel_stress_traffic(3, 10, 4, 29);
    let instances = workload.instances();
    let make_engine = |workers: usize| {
        Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    };
    let sequential = make_engine(1);
    let parallel = make_engine(4);
    let seq_decisions = sequential.solve_batch_instances(&instances);
    let par_decisions = parallel.solve_batch_instances(&instances);
    assert_eq!(seq_decisions, par_decisions);
    let seq_counts = sequential.count_batch(&instances);
    let par_counts = parallel.count_batch(&instances);
    assert_eq!(seq_counts, par_counts);
    // The kernel answers are the brute-force truth on every instance.
    for ((q, t), (decision, count)) in instances.iter().zip(seq_decisions.iter().zip(&seq_counts)) {
        assert_eq!(decision.exists, homomorphism_exists(q, t), "{q} -> {t}");
        assert_eq!(
            count.count,
            count_homomorphisms_bruteforce(q, t),
            "{q} -> {t}"
        );
    }
    // On the sequential engine, exactly one index build per distinct
    // database seen, shared by the decide and count passes.
    let stats = sequential.index_stats();
    assert_eq!(stats.misses, stats.entries as u64);
    assert!(stats.entries <= workload.databases.len());
    assert_eq!(stats.lookups, 2 * instances.len() as u64);
}

/// Homomorphism counts multiply over direct products of targets.
#[test]
fn product_counting_law() {
    let digraphs = small_digraphs();
    for (i, (_, _, a)) in digraphs.iter().enumerate() {
        let (_, _, b) = &digraphs[(i * 5 + 1) % digraphs.len()];
        let (_, _, c) = &digraphs[(i * 11 + 2) % digraphs.len()];
        let prod = cq_fine::structures::direct_product(b, c).unwrap();
        let left = count_homomorphisms_bruteforce(a, &prod);
        let right = count_homomorphisms_bruteforce(a, b) * count_homomorphisms_bruteforce(a, c);
        assert_eq!(left, right);
    }
}

/// The binary codec is the identity on the seeded query grid:
/// `decode(encode(x)) == x` for structures, and behaviour-identical for
/// prepared plans (whose type has no `PartialEq` — equality is asserted on
/// every observable artifact and on the engine reports they produce).
#[test]
fn codec_roundtrip_is_identity_on_the_seeded_grid() {
    use cq_fine::structures::codec::{decode_from_slice, encode_to_vec};
    use cq_fine::structures::Structure;
    for (n, seed, a) in small_graphs().into_iter().chain(small_digraphs()) {
        let bytes = encode_to_vec(&a);
        let back: Structure = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, a, "structure roundtrip (n={n}, seed={seed})");
        // Deterministic encoding: same value, same bytes.
        assert_eq!(bytes, encode_to_vec(&back), "(n={n}, seed={seed})");
    }
}

/// Prepared plans round-trip through the codec with every observable
/// artifact intact, verify cleanly, and produce bit-identical engine
/// reports — across the seeded grid, with the lazy artifacts materialized
/// on a rotating subset so both the present and the absent encodings are
/// exercised.
#[test]
fn prepared_plans_roundtrip_and_verify_on_the_seeded_grid() {
    use cq_fine::classification::PreparedQuery;
    use cq_fine::structures::codec::{decode_from_slice, encode_to_vec};
    let config = EngineConfig::default();
    let targets = [
        cq_fine::structures::families::clique(3),
        cq_fine::structures::families::cycle(5),
    ];
    for (i, (n, seed, a)) in small_digraphs().into_iter().enumerate() {
        let plan = PreparedQuery::prepare(&a, &config);
        // Rotate which lazy artifacts are materialized before saving.
        if i % 2 == 0 {
            plan.sentence();
        }
        if i % 3 == 0 {
            plan.staircase();
            plan.counting_analysis();
        }
        let bytes = encode_to_vec(&plan);
        let back: PreparedQuery = decode_from_slice(&bytes).expect("decode");
        let label = format!("(n={n}, seed={seed})");
        // Re-encode before touching any lazy accessor (those materialize
        // artifacts and would legitimately grow the encoding).
        assert_eq!(bytes, encode_to_vec(&back), "{label}: deterministic");
        back.verify(&config)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(back.fingerprint(), plan.fingerprint(), "{label}");
        assert_eq!(back.original(), plan.original(), "{label}");
        assert_eq!(back.evaluated(), plan.evaluated(), "{label}");
        assert_eq!(back.core_applied(), plan.core_applied(), "{label}");
        assert_eq!(back.gaifman(), plan.gaifman(), "{label}");
        assert_eq!(back.widths(), plan.widths(), "{label}");
        assert_eq!(back.degree_hint(), plan.degree_hint(), "{label}");
        assert_eq!(back.counting_widths(), plan.counting_widths(), "{label}");
        // Behaviour: the decoded plan answers exactly like the original.
        let engine = Engine::new(config);
        for t in &targets {
            assert_eq!(
                engine.solve_prepared(&back, t),
                engine.solve_prepared(&plan, t),
                "{label} -> {t}"
            );
            assert_eq!(
                engine.count_prepared(&back, t).count,
                engine.count_prepared(&plan, t).count,
                "{label} -> {t}"
            );
        }
    }
}

/// An absent edge between existing elements, or `None` when the relation
/// is complete (dense seeds on tiny universes).
fn absent_edge(s: &Structure) -> Option<(cq_fine::structures::SymbolId, Vec<u32>)> {
    let index = cq_fine::structures::StructureIndex::new(s);
    let sym = s.vocabulary().ids().next()?;
    if s.relation(sym).arity() != 2 {
        return None;
    }
    let n = s.universe_size() as u32;
    for a in 0..n {
        for b in 0..n {
            if a != b && index.row_of(sym, &[a, b]).is_none() {
                return Some((sym, vec![a, b]));
            }
        }
    }
    None
}

/// insert ∘ delete = identity, in both orders: inserting a fresh tuple and
/// deleting it restores the original structure, and deleting an existing
/// tuple and re-inserting it does too (row ids may permute — swap-remove
/// plus append — but structure equality is set equality per relation).
#[test]
fn insert_delete_roundtrips_are_the_identity() {
    use cq_fine::structures::DeltaBatch;
    for (n, seed, s) in small_graphs().into_iter().chain(small_digraphs()) {
        let label = format!("(n={n}, seed={seed})");
        if let Some((sym, row)) = absent_edge(&s) {
            let mut forward = s.clone();
            let mut ins = DeltaBatch::new();
            ins.insert(sym, row.clone());
            forward
                .apply_delta(&ins)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_ne!(forward, s, "{label}: the insert must be visible");
            let mut del = DeltaBatch::new();
            del.delete(sym, row);
            forward
                .apply_delta(&del)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(forward, s, "{label}: delete must undo the insert");
        }
        if let Some((sym, row)) = s.all_tuples().next().map(|(sym, r)| (sym, r.to_vec())) {
            let mut back = s.clone();
            let mut del = DeltaBatch::new();
            del.delete(sym, row.clone());
            back.apply_delta(&del)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_ne!(back, s, "{label}: the delete must be visible");
            let mut ins = DeltaBatch::new();
            ins.insert(sym, row);
            back.apply_delta(&ins)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(back, s, "{label}: insert must undo the delete");
        }
    }
}

/// Deleting an absent tuple (and inserting a present one) is a validated
/// no-op across the grid: the batch is accepted, the structure is
/// unchanged, and the applied record says so.
#[test]
fn absent_deletes_and_present_inserts_are_noops_on_the_grid() {
    use cq_fine::structures::DeltaBatch;
    for (n, seed, s) in small_graphs() {
        let label = format!("(n={n}, seed={seed})");
        let mut batch = DeltaBatch::new();
        let mut expected_noop = false;
        if let Some((sym, row)) = absent_edge(&s) {
            batch.delete(sym, row);
            expected_noop = true;
        }
        if let Some((sym, row)) = s.all_tuples().next().map(|(sym, r)| (sym, r.to_vec())) {
            batch.insert(sym, row);
            expected_noop = true;
        }
        if !expected_noop {
            continue;
        }
        let mut mutated = s.clone();
        let applied = mutated
            .apply_delta(&batch)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(applied.is_noop(), "{label}: nothing effectively changed");
        assert_eq!(mutated, s, "{label}: a no-op batch leaves the structure");
    }
}

/// [`TupleWeights::apply_delta`] mirrors the structure's swap-remove row
/// moves exactly: after every churn round the maintained table is
/// slot-for-slot equal to a table rebuilt from scratch with the same
/// content-keyed formula — so a weighted aggregate can never read the
/// weight of a departed tuple, and min-cost through the engine agrees
/// with a cold evaluation.
#[test]
fn tuple_weights_stay_aligned_under_delta_churn() {
    use cq_fine::structures::{SymbolId, TupleWeights};
    use cq_fine::workloads::mutation_traffic;
    fn wf(sym: SymbolId, t: &[u32]) -> u64 {
        (sym.index() as u64 + 1) * 13 + t.iter().map(|&e| u64::from(e) * 3 + 1).sum::<u64>() % 41
    }
    let engine = Engine::new(EngineConfig::default());
    let query = cq_fine::structures::families::path(3);
    for seed in 0..4 {
        let s = random_graph_structure(12, 0.3, seed);
        let mut current = s.clone();
        let mut weights = TupleWeights::from_fn(&s, |sym, _, t| wf(sym, t));
        for (round, batch) in mutation_traffic(&s, 3, 0.2, seed ^ 0xBEEF)
            .iter()
            .enumerate()
        {
            let applied = current.apply_delta(batch).expect("valid traffic batch");
            weights.apply_delta(&applied, wf);
            let label = format!("(seed={seed}, round={round})");
            assert!(weights.matches(&current), "{label}: table misaligned");
            let fresh = TupleWeights::from_fn(&current, |sym, _, t| wf(sym, t));
            assert_eq!(weights, fresh, "{label}: a slot holds a stale weight");
            assert_eq!(
                engine.evaluate_min_cost(&query, &current, &weights).value,
                engine.evaluate_min_cost(&query, &current, &fresh).value,
                "{label}: maintained and rebuilt weights must aggregate alike"
            );
        }
    }
}
