//! Property-based tests on the core invariants, spanning crates.

use cq_fine::decomp::width_profile;
use cq_fine::graphs::gaifman_graph;
use cq_fine::solver::treedec::{count_hom_via_tree_decomposition, hom_via_tree_decomposition};
use cq_fine::solver::treedepth::count_hom_via_treedepth;
use cq_fine::structures::{
    core_of, count_homomorphisms_bruteforce, homomorphism_exists, is_core, Structure,
};
use cq_fine::workloads::{random_graph_structure, random_digraph_structure};
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = Structure> {
    (3usize..8, 0u64..500).prop_map(|(n, seed)| random_graph_structure(n, 0.4, seed))
}

fn small_digraph() -> impl Strategy<Value = Structure> {
    (2usize..7, 0u64..500).prop_map(|(n, seed)| random_digraph_structure(n, 0.3, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core is a core, is homomorphically equivalent to the input, and
    /// taking the core twice changes nothing.
    #[test]
    fn core_invariants(a in small_graph()) {
        let c = core_of(&a);
        prop_assert!(is_core(&c.core));
        prop_assert!(homomorphism_exists(&a, &c.core));
        prop_assert!(homomorphism_exists(&c.core, &a));
        prop_assert_eq!(core_of(&c.core).core_size(), c.core_size());
    }

    /// tw <= pw <= td - 1 (for graphs with at least one edge).
    #[test]
    fn width_measure_ordering(a in small_graph()) {
        let g = gaifman_graph(&a);
        let p = width_profile(&g);
        prop_assert!(p.treewidth <= p.pathwidth);
        if g.edge_count() > 0 {
            prop_assert!(p.pathwidth < p.treedepth);
        }
    }

    /// The tree-decomposition DP and the reference solver agree on decision
    /// and counting; the tree-depth counter agrees as well.
    #[test]
    fn solvers_agree(a in small_digraph(), b in small_digraph()) {
        let expected = homomorphism_exists(&a, &b);
        let (_, td) = cq_fine::decomp::treewidth::treewidth_of_structure(&a);
        prop_assert_eq!(hom_via_tree_decomposition(&a, &b, &td), expected);
        let expected_count = count_homomorphisms_bruteforce(&a, &b);
        prop_assert_eq!(count_hom_via_tree_decomposition(&a, &b, &td), expected_count);
        prop_assert_eq!(count_hom_via_treedepth(&a, &b), expected_count);
    }

    /// Homomorphism counts multiply over direct products of targets.
    #[test]
    fn product_counting_law(a in small_digraph(), b in small_digraph(), c in small_digraph()) {
        let prod = cq_fine::structures::direct_product(&b, &c).unwrap();
        let left = count_homomorphisms_bruteforce(&a, &prod);
        let right = count_homomorphisms_bruteforce(&a, &b) * count_homomorphisms_bruteforce(&a, &c);
        prop_assert_eq!(left, right);
    }
}
