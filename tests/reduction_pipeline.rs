//! Integration test: reductions compose across crates — machine compilation,
//! the Theorem 4.7 chain, and the Lemma 3.4 reduction feeding the solvers.

use cq_fine::graphs::families::cycle_graph;
use cq_fine::machine::compile::compile_jump_to_hom_path;
use cq_fine::machine::jump::accepts_jump_machine;
use cq_fine::machine::problems::{StPathInput, StPathMachine};
use cq_fine::reductions::chain::{
    dirpath_to_st_path, hom_path_star_to_dirpath, st_path_to_dircycle,
};
use cq_fine::reductions::treedec_reduction::to_tree_star_instance_auto;
use cq_fine::solver::treedec::hom_via_tree_decomposition;
use cq_fine::structures::ops::colored_target;
use cq_fine::structures::{families, homomorphism_exists, star_expansion};

#[test]
fn machine_compilation_feeds_the_path_solver() {
    for k in [3usize, 4, 6] {
        let input = StPathInput {
            graph: cycle_graph(8),
            s: 0,
            t: 4,
            k,
        };
        let expected = accepts_jump_machine(&StPathMachine, &input).accepted;
        let compiled = compile_jump_to_hom_path(&StPathMachine, &input);
        // Solve the compiled instance with the tree-decomposition DP (P* has
        // treewidth 1), not just the reference solver.
        let (_, td) = cq_fine::decomp::treewidth::treewidth_of_structure(&compiled.query);
        let got = hom_via_tree_decomposition(&compiled.query, &compiled.database, &td);
        assert_eq!(got, expected, "k = {k}");
    }
}

#[test]
fn theorem_4_7_chain_composes() {
    for (base, k, all_colors) in [
        (families::cycle(6), 3usize, true),
        (families::path(5), 4, true),
        (families::cycle(5), 3, false),
    ] {
        let n = base.universe_size();
        let b = colored_target(k, &base, |e| {
            if all_colors {
                (0..n).collect()
            } else {
                vec![e]
            }
        });
        let query = star_expansion(&families::path(k));
        let expected = homomorphism_exists(&query, &b);
        let s1 = hom_path_star_to_dirpath(k, &b);
        let s2 = dirpath_to_st_path(k, &s1.database);
        let s3 = st_path_to_dircycle(&s2);
        assert_eq!(s1.holds(), expected);
        assert_eq!(s2.holds(), expected);
        assert_eq!(s3.holds(), expected);
    }
}

#[test]
fn lemma_3_4_reduction_feeds_the_tree_solver() {
    let a = families::cycle(5);
    let b = families::cycle(7);
    let expected = homomorphism_exists(&a, &b);
    let reduced = to_tree_star_instance_auto(&a, &b);
    let (_, td) = cq_fine::decomp::treewidth::treewidth_of_structure(&reduced.query);
    assert_eq!(
        hom_via_tree_decomposition(&reduced.query, &reduced.database, &td),
        expected
    );
}
