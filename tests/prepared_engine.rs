//! End-to-end test of the prepared-query engine through the facade crate:
//! register queries, evaluate a batch, inspect the cache — the workflow a
//! downstream service embedding `cq-fine` would run.

use cq_fine::classification::{Engine, EngineConfig, QueryId, SolverChoice};
use cq_fine::structures::{families, homomorphism_exists, relabeled, star_expansion, Structure};

#[test]
fn batch_workflow_through_the_facade() {
    let engine = Engine::new(EngineConfig::default());

    // Register a mixed bag of queries, one per solver tier.
    let star = families::star(4);
    let colored_path = star_expansion(&families::path(9)); // td 4 > threshold: path tier
    let clique = families::clique(5); // treewidth 4 > threshold: backtracking tier
    let ids: Vec<QueryId> = [&star, &colored_path, &clique]
        .into_iter()
        .map(|q| engine.register(q))
        .collect();

    let targets: Vec<Structure> = vec![
        families::clique(4),
        families::cycle(6),
        families::grid(3, 3),
    ];

    let batch: Vec<(QueryId, &Structure)> = targets
        .iter()
        .flat_map(|t| ids.iter().map(move |&id| (id, t)))
        .collect();
    let reports = engine.solve_batch(&batch);
    assert_eq!(reports.len(), batch.len());

    let queries = [&star, &colored_path, &clique];
    for ((report, (_, t)), q) in reports.iter().zip(&batch).zip(queries.iter().cycle()) {
        assert_eq!(report.exists, homomorphism_exists(q, t), "{q} -> {t}");
    }

    // The tiers were actually exercised.
    let choices: Vec<SolverChoice> = reports.iter().take(3).map(|r| r.choice).collect();
    assert_eq!(
        choices,
        [
            SolverChoice::TreeDepth,
            SolverChoice::PathDecomposition,
            SolverChoice::Backtracking
        ]
    );

    // Re-registering an equivalent query is a cache hit, not a new plan.
    let scrambled: Vec<usize> = (0..star.universe_size()).rev().collect();
    engine.register(&relabeled(&star, &scrambled));
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.hits, 1);
}
