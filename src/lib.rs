//! # cq-fine
//!
//! A full reproduction of Chen & Müller, *"The Fine Classification of
//! Conjunctive Queries and Parameterized Logarithmic Space Complexity"*
//! (PODS 2013), as a Rust workspace.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names so that examples and downstream users can depend on a single crate:
//!
//! * [`structures`] — relational structures, homomorphisms, cores, `A*`;
//! * [`graphs`] — graphs, Gaifman graphs, minors;
//! * [`decomp`] — tree/path decompositions, treewidth, pathwidth, tree depth;
//! * [`logic`] — first-order and `{∧,∃}` sentences, metered model checking;
//! * [`machine`] — the resource-metered machine substrate (jump machines);
//! * [`solver`] — homomorphism / embedding / counting algorithms;
//! * [`reductions`] — the paper's pl-reductions as instance transformations;
//! * [`classification`] — the fine classification itself (Theorem 3.1 / 6.1);
//! * [`workloads`] — seeded generators used by the experiments.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the experiment
//! harness.

pub use cq_core as classification;
pub use cq_decomp as decomp;
pub use cq_graphs as graphs;
pub use cq_logic as logic;
pub use cq_machine as machine;
pub use cq_reductions as reductions;
pub use cq_service as service;
pub use cq_solver as solver;
pub use cq_structures as structures;
pub use cq_workloads as workloads;
