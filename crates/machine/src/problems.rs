//! Concrete machines for the paper's flagship problems.
//!
//! * [`StPathMachine`] — the jump machine deciding `p-st-PATH` (Section 4):
//!   "is there a path of length at most `k` from `s` to `t`?"  It guesses
//!   the path vertex by vertex with one jump per step and verifies each
//!   consecutive pair against the edge relation, using space `O(log n)` plus
//!   a counter bounded by `k` — a PATH algorithm in the sense of
//!   Definition 4.1/4.4.
//!
//! * [`TreeQueryMachine`] — the alternating jump machine behind the proof of
//!   `p-HOM(T*) ∈ TREE` (Theorem 5.5): existentially guess the image of the
//!   root, then repeatedly *universally* choose a child of the current tree
//!   node and *existentially* guess (by a jump) its image, verifying the
//!   colour and edge constraints.

use crate::alternating::{AltOutcome, AlternatingJumpMachine, BranchOutcome};
use crate::jump::{JumpMachine, SegmentOutcome};
use cq_graphs::{Graph, Vertex};
use cq_structures::Structure;

/// Input of [`StPathMachine`]: an undirected graph, two endpoints and the
/// length bound (the parameter).
#[derive(Debug, Clone)]
pub struct StPathInput {
    /// The graph.
    pub graph: Graph,
    /// The source vertex.
    pub s: Vertex,
    /// The target vertex.
    pub t: Vertex,
    /// The length bound `k` (number of edges).
    pub k: usize,
}

/// The jump machine for `p-st-PATH` (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct StPathMachine;

/// Configuration of [`StPathMachine`]: `(edges walked, current vertex, alive)`.
pub type StPathState = (usize, Vertex, bool);

impl JumpMachine<StPathInput> for StPathMachine {
    type State = StPathState;

    fn initial(&self, input: &StPathInput) -> StPathState {
        (0, input.s, true)
    }

    fn position_count(&self, input: &StPathInput) -> usize {
        input.graph.vertex_count()
    }

    fn jump_bound(&self, input: &StPathInput) -> usize {
        input.k
    }

    fn run_segment(&self, input: &StPathInput, state: &StPathState) -> SegmentOutcome<StPathState> {
        let (walked, current, alive) = *state;
        if !alive {
            SegmentOutcome::Reject
        } else if current == input.t {
            SegmentOutcome::Accept
        } else if walked >= input.k {
            SegmentOutcome::Reject
        } else {
            SegmentOutcome::Jump(*state)
        }
    }

    fn resume(&self, input: &StPathInput, at_jump: &StPathState, position: usize) -> StPathState {
        let (walked, current, alive) = *at_jump;
        let ok = alive
            && position < input.graph.vertex_count()
            && input.graph.has_edge(current, position);
        (walked + 1, position, ok)
    }
}

/// Input of [`TreeQueryMachine`]: the height of the coloured complete binary
/// tree query `T*_height` and the database to evaluate it on.  The database
/// must interpret `E` and the colours `C_t` (named `C_{t}` as produced by
/// [`cq_structures::star_expansion`] / `colored_target`) for every heap index
/// `t` of the tree.
#[derive(Debug, Clone)]
pub struct TreeQueryInput {
    /// Height of the complete binary tree query.
    pub height: usize,
    /// The database `B`.
    pub database: Structure,
}

/// The alternating jump machine evaluating `HOM(T*_h, B)` (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeQueryMachine;

/// Configuration of [`TreeQueryMachine`]:
/// `(tree node, image of that node or MAX when not yet guessed, pending child
/// for the next jump or MAX, alive)`.
pub type TreeQueryState = (usize, usize, usize, bool);

const UNSET: usize = usize::MAX;

impl TreeQueryMachine {
    fn color_allows(db: &Structure, node: usize, image: usize) -> bool {
        match db.vocabulary().id_of(&format!("C_{node}")) {
            Some(sym) => db.contains(sym, &[image]),
            None => false,
        }
    }

    fn edge_allows(db: &Structure, a: usize, b: usize) -> bool {
        match db.vocabulary().id_of("E") {
            Some(sym) => db.contains(sym, &[a, b]),
            None => false,
        }
    }
}

impl AlternatingJumpMachine<TreeQueryInput> for TreeQueryMachine {
    type State = TreeQueryState;

    fn initial(&self, _input: &TreeQueryInput) -> TreeQueryState {
        (0, UNSET, UNSET, true)
    }

    fn position_count(&self, input: &TreeQueryInput) -> usize {
        input.database.universe_size()
    }

    fn round_bound(&self, input: &TreeQueryInput) -> usize {
        input.height + 1
    }

    fn run_segment(
        &self,
        input: &TreeQueryInput,
        state: &TreeQueryState,
    ) -> AltOutcome<TreeQueryState> {
        let (node, image, _pending, alive) = *state;
        if !alive {
            return AltOutcome::Halt(false);
        }
        if image == UNSET {
            // Root image not yet guessed: a trivial universal guess whose two
            // identical branches both jump to guess it.
            let guess = (node, UNSET, node, true);
            return AltOutcome::Branch(Box::new([
                BranchOutcome::Jump(guess),
                BranchOutcome::Jump(guess),
            ]));
        }
        let internal = if input.height == 0 {
            0
        } else {
            cq_structures::families::binary_universe_size(input.height - 1)
        };
        if node >= internal {
            // Leaf: all constraints along the path were already verified.
            return AltOutcome::Halt(true);
        }
        let left = (node, image, 2 * node + 1, true);
        let right = (node, image, 2 * node + 2, true);
        AltOutcome::Branch(Box::new([
            BranchOutcome::Jump(left),
            BranchOutcome::Jump(right),
        ]))
    }

    fn resume(
        &self,
        input: &TreeQueryInput,
        at_jump: &TreeQueryState,
        position: usize,
    ) -> TreeQueryState {
        let (node, image, pending, alive) = *at_jump;
        if !alive || pending == UNSET {
            return (node, image, UNSET, false);
        }
        if image == UNSET {
            // Guessing the root image: only the colour constraint applies.
            let ok = Self::color_allows(&input.database, node, position);
            return (node, position, UNSET, ok);
        }
        // Guessing the image of child `pending`.
        let ok = Self::color_allows(&input.database, pending, position)
            && Self::edge_allows(&input.database, image, position);
        (pending, position, UNSET, ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::accepts_alternating_machine;
    use crate::jump::accepts_jump_machine;
    use cq_graphs::families::{complete_graph, cycle_graph, grid_graph, path_graph};
    use cq_graphs::traversal::shortest_path_length;
    use cq_structures::ops::colored_target;
    use cq_structures::{families, homomorphism_exists, star_expansion};

    #[test]
    fn st_path_machine_matches_bfs_on_many_instances() {
        let graphs = vec![
            path_graph(7),
            cycle_graph(8),
            grid_graph(3, 3),
            complete_graph(4),
        ];
        for graph in graphs {
            let n = graph.vertex_count();
            for (s, t) in [(0, n - 1), (0, n / 2), (1, n - 2)] {
                for k in 0..=n {
                    let expected = shortest_path_length(&graph, s, t)
                        .map(|d| d <= k)
                        .unwrap_or(false);
                    let input = StPathInput {
                        graph: graph.clone(),
                        s,
                        t,
                        k,
                    };
                    let run = accepts_jump_machine(&StPathMachine, &input);
                    assert_eq!(run.accepted, expected, "s={s} t={t} k={k}");
                }
            }
        }
    }

    #[test]
    fn st_path_machine_on_disconnected_graph() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let input = StPathInput {
            graph: g,
            s: 0,
            t: 3,
            k: 10,
        };
        assert!(!accepts_jump_machine(&StPathMachine, &input).accepted);
    }

    #[test]
    fn tree_query_machine_agrees_with_homomorphism_search() {
        // Evaluate T*_r against various coloured databases and compare with
        // the reference homomorphism search.
        for r in [0usize, 1, 2] {
            let nodes = families::binary_universe_size(r);
            let query = star_expansion(&families::tree_t(r));

            // (a) everything allowed over a triangle: always a yes-instance.
            let tri = families::clique(3);
            let db_yes = colored_target(nodes, &tri, |_| (0..3).collect());
            // (b) root pinned to vertex 0 of a path of length 1 and children
            //     also pinned to 0: forces a loop, which a simple graph lacks
            //     — a no-instance when r >= 1.
            let p2 = families::path(2);
            let db_no = colored_target(nodes, &p2, |_| vec![0]);

            for db in [db_yes, db_no] {
                let expected = homomorphism_exists(&query, &db);
                let input = TreeQueryInput {
                    height: r,
                    database: db,
                };
                let run = accepts_alternating_machine(&TreeQueryMachine, &input);
                assert_eq!(run.accepted, expected, "height {r}");
            }
        }
    }

    #[test]
    fn tree_query_machine_respects_colors() {
        // Pin the root to one endpoint of an edge and the children to the
        // other: yes for height 1.
        let nodes = families::binary_universe_size(1);
        let p2 = families::path(2);
        let db = colored_target(nodes, &p2, |node| if node == 0 { vec![0] } else { vec![1] });
        let input = TreeQueryInput {
            height: 1,
            database: db.clone(),
        };
        let run = accepts_alternating_machine(&TreeQueryMachine, &input);
        let query = star_expansion(&families::tree_t(1));
        assert!(run.accepted);
        assert!(homomorphism_exists(&query, &db));
        assert!(run.conondeterministic_bits >= 1);
    }
}
