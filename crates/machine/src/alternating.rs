//! Alternating jump machines (Definition 5.3) in the normalized form used by
//! the proof of Theorem 5.5.
//!
//! The normalization (stated before the Theorem 5.5 reduction): on every run
//! the machine alternates universal binary guesses and jumps — run
//! deterministically to a universal guess with two branches, in each branch
//! run deterministically to a jump (or a halt), resume after the jump, and so
//! on.  Acceptance: a universal guess is accepting when *both* branches are
//! accepting; a jump is accepting when *some* resumption position leads to
//! acceptance; halting configurations are accepting iff they accept.
//!
//! The class TREE (Definition 5.1) consists of the problems accepted by
//! pl-space bounded alternating machines with `f(k)·log n` nondeterministic
//! and `f(k)` co-nondeterministic bits; Lemma 5.4 shows jumps may replace the
//! nondeterministic bits, which is the interface implemented here.

use std::collections::BTreeSet;
use std::hash::Hash;

/// The outcome of one branch of a universal guess: the branch runs
/// deterministically to a halt or to a jump request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchOutcome<S> {
    /// The branch halted with the given acceptance.
    Halt(bool),
    /// The branch reached the jump state in configuration `S`.
    Jump(S),
}

/// The outcome of running one segment of an alternating jump machine from a
/// starting configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AltOutcome<S> {
    /// The machine halted with the given acceptance before any guess.
    Halt(bool),
    /// The machine reached a universal guess; the two entries describe the
    /// continuation of each branch (`0` and `1`).
    Branch(Box<[BranchOutcome<S>; 2]>),
}

/// An alternating jump machine over inputs of type `I`.
pub trait AlternatingJumpMachine<I: ?Sized> {
    /// A starting configuration.
    type State: Clone + Ord + Hash;

    /// The starting configuration on the given input.
    fn initial(&self, input: &I) -> Self::State;

    /// The number of input positions a jump may target.
    fn position_count(&self, input: &I) -> usize;

    /// An upper bound on the number of rounds (universal guess + jump pairs)
    /// of any run — the paper's `f(κ(x))`.
    fn round_bound(&self, input: &I) -> usize;

    /// Run deterministically from a starting configuration to a halt or a
    /// universal guess whose branches are each run to a halt or a jump.
    fn run_segment(&self, input: &I, state: &Self::State) -> AltOutcome<Self::State>;

    /// The starting configuration obtained by resuming a branch's jump
    /// configuration with the input head on `position`.
    fn resume(&self, input: &I, at_jump: &Self::State, position: usize) -> Self::State;
}

/// Metering data for an alternating acceptance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AltRun {
    /// Whether the machine accepts the input.
    pub accepted: bool,
    /// Number of distinct starting configurations explored.
    pub configurations: usize,
    /// The round bound `f(k)`.
    pub round_bound: usize,
    /// Nondeterministic bits of a bit-guessing simulation:
    /// `round_bound · ⌈log2(position_count)⌉`.
    pub nondeterministic_bits: usize,
    /// Co-nondeterministic bits: one per round.
    pub conondeterministic_bits: usize,
}

/// Decide acceptance of an alternating jump machine by direct evaluation of
/// the AND/OR semantics, with metering.
pub fn accepts_alternating_machine<I: ?Sized, M: AlternatingJumpMachine<I>>(
    machine: &M,
    input: &I,
) -> AltRun {
    let rounds = machine.round_bound(input);
    let positions = machine.position_count(input);
    let mut visited: BTreeSet<M::State> = BTreeSet::new();

    fn accepting<I: ?Sized, M: AlternatingJumpMachine<I>>(
        machine: &M,
        input: &I,
        state: &M::State,
        rounds_left: usize,
        visited: &mut BTreeSet<M::State>,
    ) -> bool {
        visited.insert(state.clone());
        match machine.run_segment(input, state) {
            AltOutcome::Halt(b) => b,
            AltOutcome::Branch(branches) => {
                if rounds_left == 0 {
                    return false;
                }
                branches.iter().all(|branch| match branch {
                    BranchOutcome::Halt(b) => *b,
                    BranchOutcome::Jump(at_jump) => (0..machine.position_count(input)).any(|p| {
                        let next = machine.resume(input, at_jump, p);
                        accepting(machine, input, &next, rounds_left - 1, visited)
                    }),
                })
            }
        }
    }

    let initial = machine.initial(input);
    let accepted = accepting(machine, input, &initial, rounds, &mut visited);
    let bits_per_jump = (usize::BITS - positions.max(1).leading_zeros()) as usize;
    AltRun {
        accepted,
        configurations: visited.len(),
        round_bound: rounds,
        nondeterministic_bits: rounds * bits_per_jump,
        conondeterministic_bits: rounds,
    }
}

/// Enumerate all starting configurations reachable from the initial one
/// through rounds of (universal branch, jump, resume) — the enumeration
/// `c_1, …, c_m` of the Theorem 5.5 proof.
pub fn reachable_start_states<I: ?Sized, M: AlternatingJumpMachine<I>>(
    machine: &M,
    input: &I,
) -> Vec<M::State> {
    let mut seen: BTreeSet<M::State> = BTreeSet::new();
    let mut queue = vec![machine.initial(input)];
    seen.insert(machine.initial(input));
    while let Some(state) = queue.pop() {
        if let AltOutcome::Branch(branches) = machine.run_segment(input, &state) {
            for branch in branches.iter() {
                if let BranchOutcome::Jump(at_jump) = branch {
                    for p in 0..machine.position_count(input) {
                        let next = machine.resume(input, at_jump, p);
                        if seen.insert(next.clone()) {
                            queue.push(next);
                        }
                    }
                }
            }
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy machine over a bit string: accept iff *every* block of length 2
    /// (universally chosen among the first `k` blocks) contains *some* one
    /// (existentially found by a jump into the block).
    struct EveryBlockHasAOne {
        blocks: usize,
    }

    /// State: (blocks still to verify, pending block index or usize::MAX, alive).
    type State = (usize, usize, bool);

    impl AlternatingJumpMachine<Vec<bool>> for EveryBlockHasAOne {
        type State = State;

        fn initial(&self, _input: &Vec<bool>) -> State {
            (self.blocks, usize::MAX, true)
        }

        fn position_count(&self, input: &Vec<bool>) -> usize {
            input.len()
        }

        fn round_bound(&self, _input: &Vec<bool>) -> usize {
            // One round per halving of the remaining block range would be
            // cleverer; we simply allow one round per block.
            self.blocks
        }

        fn run_segment(&self, input: &Vec<bool>, state: &State) -> AltOutcome<State> {
            let (remaining, pending, alive) = *state;
            if !alive {
                return AltOutcome::Halt(false);
            }
            if pending != usize::MAX {
                // We resumed after a jump which was supposed to land on a
                // one inside block `pending`; the resume already validated
                // it, so just continue (validation encoded in `alive`).
            }
            if remaining == 0 {
                return AltOutcome::Halt(true);
            }
            // Universal guess: branch 0 verifies block `remaining - 1` now
            // (via a jump); branch 1 skips ahead to verify the rest
            // (continuing the recursion).  Both must accept, which makes the
            // machine check every block.
            let verify_now: BranchOutcome<State> =
                BranchOutcome::Jump((remaining, remaining - 1, true));
            let check_rest: BranchOutcome<State> = if remaining == 1 {
                BranchOutcome::Halt(true)
            } else {
                // Move to the next round without consuming a jump: model as a
                // jump whose landing position is irrelevant.
                BranchOutcome::Jump((remaining, usize::MAX, true))
            };
            let _ = input;
            AltOutcome::Branch(Box::new([verify_now, check_rest]))
        }

        fn resume(&self, input: &Vec<bool>, at_jump: &State, position: usize) -> State {
            let (remaining, pending, alive) = *at_jump;
            if pending == usize::MAX {
                // The "skip ahead" branch: decrement the counter.
                return (remaining - 1, usize::MAX, alive);
            }
            // The "verify block" branch: the jump must land inside the block
            // on a one.
            let lo = pending * 2;
            let hi = lo + 2;
            if alive && position >= lo && position < hi && input.get(position) == Some(&true) {
                (0, usize::MAX, true)
            } else {
                (0, usize::MAX, false)
            }
        }
    }

    #[test]
    fn accepts_iff_every_block_has_a_one() {
        // blocks of length 2: [1,0 | 0,1 | 1,1] — all have a one.
        let good = vec![true, false, false, true, true, true];
        let run = accepts_alternating_machine(&EveryBlockHasAOne { blocks: 3 }, &good);
        assert!(run.accepted);
        assert_eq!(run.conondeterministic_bits, 3);
        assert!(run.nondeterministic_bits >= 3);

        // [1,0 | 0,0 | 1,1] — middle block has no one.
        let bad = vec![true, false, false, false, true, true];
        let run = accepts_alternating_machine(&EveryBlockHasAOne { blocks: 3 }, &bad);
        assert!(!run.accepted);
    }

    #[test]
    fn zero_blocks_always_accepts() {
        let run = accepts_alternating_machine(&EveryBlockHasAOne { blocks: 0 }, &vec![false; 4]);
        assert!(run.accepted);
        assert_eq!(run.round_bound, 0);
    }

    #[test]
    fn reachable_states_enumeration() {
        let input = vec![true, true, true, true];
        let states = reachable_start_states(&EveryBlockHasAOne { blocks: 2 }, &input);
        assert!(states.contains(&(2, usize::MAX, true)));
        assert!(states.len() < 32);
    }
}
