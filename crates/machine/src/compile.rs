//! The machine-to-homomorphism compilers of Theorem 4.3 and Theorem 5.5.
//!
//! * [`compile_jump_to_hom_path`] turns the acceptance question of a jump
//!   machine into a `p-HOM(P*)` instance: the query is the coloured path
//!   `P*_{f(k)+1}`, the database's elements are (level, starting
//!   configuration) pairs, edges encode the "reaches" relation between
//!   starting configurations, and the colours pin level 0 to the initial
//!   configuration and the last level to accepting configurations.  This is
//!   the hardness half of "`p-HOM(P*)` is PATH-complete".
//!
//! * [`compile_alternating_to_hom_tree`] does the same for alternating jump
//!   machines and `p-HOM(T*)` (Theorem 5.5): the query is the coloured
//!   complete binary tree `T*_{f(k)}`, a database element is a (tree node,
//!   starting configuration) pair, and the edge between a node and its
//!   `b`-child encodes the "`b`-reaches" relation.
//!
//! Both compilers add an absorbing accepting configuration so that machines
//! that accept in fewer than `f(k)` rounds still produce a homomorphism (the
//! paper instead normalizes machines to use exactly `f(k)` jumps; the
//! absorbing state is the same normalization performed inside the
//! reduction).

use crate::alternating::{
    reachable_start_states as alt_states, AltOutcome, AlternatingJumpMachine, BranchOutcome,
};
use crate::jump::{reachable_start_states as jump_states, JumpMachine, SegmentOutcome};
use cq_structures::ops::colored_target;
use cq_structures::{families, star_expansion, Structure};

/// A compiled `p-HOM` instance together with bookkeeping about the
/// compilation (used by the experiments to report blow-up factors).
#[derive(Debug, Clone)]
pub struct CompiledInstance {
    /// The left-hand (query) structure — `P*_{j+1}` or `T*_r`.
    pub query: Structure,
    /// The right-hand (database) structure.
    pub database: Structure,
    /// Number of machine starting configurations enumerated (the paper's `m`).
    pub configurations: usize,
    /// The number of rounds/jumps `f(k)` of the compiled machine.
    pub rounds: usize,
}

impl CompiledInstance {
    /// The paper's size measure of the produced database.
    pub fn database_size(&self) -> usize {
        self.database.paper_size()
    }
}

/// Compile a jump machine on a concrete input into an equivalent
/// `p-HOM(P*)` instance (Theorem 4.3).
///
/// The machine accepts the input iff there is a homomorphism from
/// `CompiledInstance::query` to `CompiledInstance::database`.
pub fn compile_jump_to_hom_path<I: ?Sized, M: JumpMachine<I>>(
    machine: &M,
    input: &I,
) -> CompiledInstance {
    let rounds = machine.jump_bound(input);
    let states = jump_states(machine, input);
    let m = states.len();
    let accept_idx = m; // absorbing accepting configuration
    let total_states = m + 1;
    let index_of = |s: &M::State| states.binary_search(s).expect("state enumerated");

    // reaches[i] = successors of configuration i (one jump later).
    let mut reaches: Vec<Vec<usize>> = vec![Vec::new(); total_states];
    let mut accepting = vec![false; total_states];
    for (i, s) in states.iter().enumerate() {
        match machine.run_segment(input, s) {
            SegmentOutcome::Accept => {
                accepting[i] = true;
                reaches[i].push(accept_idx);
            }
            SegmentOutcome::Reject => {}
            SegmentOutcome::Jump(at_jump) => {
                for p in 0..machine.position_count(input) {
                    let next = machine.resume(input, &at_jump, p);
                    let j = index_of(&next);
                    if !reaches[i].contains(&j) {
                        reaches[i].push(j);
                    }
                }
            }
        }
    }
    accepting[accept_idx] = true;
    reaches[accept_idx].push(accept_idx);

    // Query: the coloured path with rounds + 1 vertices (levels 0..rounds).
    let query = star_expansion(&families::path(rounds + 1));

    // Database base graph: (level, configuration) pairs with edges between
    // consecutive levels following the reaches relation.
    let levels = rounds + 1;
    let encode = |level: usize, cfg: usize| level * total_states + cfg;
    let vocab = cq_structures::Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut builder =
        cq_structures::StructureBuilder::new(vocab).with_universe(levels * total_states);
    for level in 0..rounds {
        for (i, succs) in reaches.iter().enumerate() {
            for &j in succs {
                builder.raw_fact(e, vec![encode(level, i), encode(level + 1, j)]);
                builder.raw_fact(e, vec![encode(level + 1, j), encode(level, i)]);
            }
        }
    }
    let base = builder.build().expect("valid database base");

    let initial_idx = index_of(&machine.initial(input));
    let database = colored_target(rounds + 1, &base, |level| {
        (0..total_states)
            .filter(|&cfg| {
                (level != 0 || cfg == initial_idx) && (level != rounds || accepting[cfg])
            })
            .map(|cfg| encode(level, cfg))
            .collect()
    });

    CompiledInstance {
        query,
        database,
        configurations: m,
        rounds,
    }
}

/// Compile an alternating jump machine on a concrete input into an
/// equivalent `p-HOM(T*)` instance (Theorem 5.5).
///
/// The machine accepts the input iff there is a homomorphism from
/// `CompiledInstance::query` (the coloured complete binary tree of height
/// `f(k)`) to `CompiledInstance::database`.
pub fn compile_alternating_to_hom_tree<I: ?Sized, M: AlternatingJumpMachine<I>>(
    machine: &M,
    input: &I,
) -> CompiledInstance {
    let rounds = machine.round_bound(input);
    let states = alt_states(machine, input);
    let m = states.len();
    let accept_idx = m;
    let total_states = m + 1;
    let index_of = |s: &M::State| states.binary_search(s).expect("state enumerated");

    // b_reaches[b][i] = configurations reachable from i by taking universal
    // branch b and then one jump.
    let mut b_reaches: [Vec<Vec<usize>>; 2] = [
        vec![Vec::new(); total_states],
        vec![Vec::new(); total_states],
    ];
    let mut accepting = vec![false; total_states];
    for (i, s) in states.iter().enumerate() {
        match machine.run_segment(input, s) {
            AltOutcome::Halt(true) => {
                accepting[i] = true;
                b_reaches[0][i].push(accept_idx);
                b_reaches[1][i].push(accept_idx);
            }
            AltOutcome::Halt(false) => {}
            AltOutcome::Branch(branches) => {
                for (b, branch) in branches.iter().enumerate() {
                    match branch {
                        BranchOutcome::Halt(true) => b_reaches[b][i].push(accept_idx),
                        BranchOutcome::Halt(false) => {}
                        BranchOutcome::Jump(at_jump) => {
                            for p in 0..machine.position_count(input) {
                                let next = machine.resume(input, at_jump, p);
                                let j = index_of(&next);
                                if !b_reaches[b][i].contains(&j) {
                                    b_reaches[b][i].push(j);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    accepting[accept_idx] = true;
    b_reaches[0][accept_idx].push(accept_idx);
    b_reaches[1][accept_idx].push(accept_idx);

    // Query: the coloured complete binary tree of height `rounds` (heap
    // layout: children of t are 2t+1 and 2t+2).
    let query = star_expansion(&families::tree_t(rounds));
    let nodes = families::binary_universe_size(rounds);
    let internal = if rounds == 0 {
        0
    } else {
        families::binary_universe_size(rounds - 1)
    };

    let encode = |node: usize, cfg: usize| node * total_states + cfg;
    let vocab = cq_structures::Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut builder =
        cq_structures::StructureBuilder::new(vocab).with_universe(nodes * total_states);
    for t in 0..internal {
        for (b, child) in [2 * t + 1, 2 * t + 2].into_iter().enumerate() {
            for (i, succs) in b_reaches[b].iter().enumerate() {
                for &j in succs {
                    builder.raw_fact(e, vec![encode(t, i), encode(child, j)]);
                    builder.raw_fact(e, vec![encode(child, j), encode(t, i)]);
                }
            }
        }
    }
    let base = builder.build().expect("valid database base");

    let initial_idx = index_of(&machine.initial(input));
    let database = colored_target(nodes, &base, |node| {
        let is_leaf = node >= internal;
        (0..total_states)
            .filter(|&cfg| (node != 0 || cfg == initial_idx) && (!is_leaf || accepting[cfg]))
            .map(|cfg| encode(node, cfg))
            .collect()
    });

    CompiledInstance {
        query,
        database,
        configurations: m,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::accepts_alternating_machine;
    use crate::jump::accepts_jump_machine;
    use crate::problems::{StPathInput, StPathMachine, TreeQueryInput, TreeQueryMachine};
    use cq_graphs::families::{cycle_graph, path_graph, star_graph};
    use cq_structures::homomorphism_exists;

    #[test]
    fn st_path_compilation_agrees_with_machine_and_graph() {
        let machine = StPathMachine;
        let cases = vec![
            (path_graph(6), 0, 5, 5, true),
            (path_graph(6), 0, 5, 4, false),
            (cycle_graph(6), 0, 3, 3, true),
            (cycle_graph(6), 0, 3, 2, false),
            (star_graph(4), 1, 2, 2, true),
            (star_graph(4), 1, 2, 1, false),
        ];
        for (graph, s, t, k, expected) in cases {
            let input = StPathInput { graph, s, t, k };
            let run = accepts_jump_machine(&machine, &input);
            assert_eq!(run.accepted, expected, "machine on k={k}");
            let compiled = compile_jump_to_hom_path(&machine, &input);
            assert_eq!(
                homomorphism_exists(&compiled.query, &compiled.database),
                expected,
                "compiled instance k={k}"
            );
            assert_eq!(compiled.rounds, k);
            assert!(compiled.configurations > 0);
            assert!(compiled.database_size() > 0);
        }
    }

    #[test]
    fn compiled_query_is_a_colored_path() {
        let input = StPathInput {
            graph: path_graph(4),
            s: 0,
            t: 3,
            k: 3,
        };
        let compiled = compile_jump_to_hom_path(&StPathMachine, &input);
        // The query is P*_{k+1}: k+2 relation symbols (E plus k+1 colours).
        assert_eq!(compiled.query.universe_size(), 4);
        assert_eq!(compiled.query.vocabulary().len(), 5);
    }

    #[test]
    fn alternating_compilation_agrees_with_machine() {
        // The tree-query machine evaluates HOM(T*_r, B); compiling it back to
        // a HOM(T*) instance must preserve the answer.
        for (r, target_yes) in [(1usize, true), (2, true)] {
            let query = cq_structures::star_expansion(&cq_structures::families::tree_t(r));
            // A database where everything is allowed: the complete binary
            // tree maps into a big clique.
            let clique = cq_structures::families::clique(3);
            let db = cq_structures::ops::colored_target(
                cq_structures::families::binary_universe_size(r),
                &clique,
                |_| (0..3).collect(),
            );
            let input = TreeQueryInput {
                height: r,
                database: db.clone(),
            };
            let run = accepts_alternating_machine(&TreeQueryMachine, &input);
            assert_eq!(run.accepted, homomorphism_exists(&query, &db));
            assert_eq!(run.accepted, target_yes);

            let compiled = compile_alternating_to_hom_tree(&TreeQueryMachine, &input);
            assert_eq!(
                homomorphism_exists(&compiled.query, &compiled.database),
                run.accepted,
                "height {r}"
            );
        }
    }

    #[test]
    fn alternating_compilation_detects_rejection() {
        // A database whose colours forbid the root: no homomorphism.
        let r = 1usize;
        let clique = cq_structures::families::clique(2);
        let db = cq_structures::ops::colored_target(
            cq_structures::families::binary_universe_size(r),
            &clique,
            |node| if node == 0 { vec![] } else { (0..2).collect() },
        );
        let query = cq_structures::star_expansion(&cq_structures::families::tree_t(r));
        assert!(!homomorphism_exists(&query, &db));
        let input = TreeQueryInput {
            height: r,
            database: db,
        };
        let run = accepts_alternating_machine(&TreeQueryMachine, &input);
        assert!(!run.accepted);
        let compiled = compile_alternating_to_hom_tree(&TreeQueryMachine, &input);
        assert!(!homomorphism_exists(&compiled.query, &compiled.database));
    }
}
