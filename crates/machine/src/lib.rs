//! # cq-machine
//!
//! The resource-metered machine substrate behind the classes **PATH** and
//! **TREE** (Sections 4 and 5 of Chen & Müller, PODS 2013).
//!
//! The paper defines PATH through nondeterministic machines that are pl-space
//! bounded and use `f(k)·log n` nondeterministic bits, and characterizes it
//! through *jump machines* (Definition 4.4): machines whose only
//! nondeterminism is to "jump" the input head to a nondeterministically
//! chosen input position, at most `f(k)` times.  TREE is characterized
//! through *alternating jump machines* (Definition 5.3, Lemma 5.4) which in
//! addition may make `f(k)` universal binary guesses.
//!
//! We model these machines at the level the paper's reductions operate on —
//! the configuration graph:
//!
//! * a [`jump::JumpMachine`] exposes the deterministic run *segments* between
//!   jumps (start state → accept / reject / jump request) and the resumption
//!   of a segment after a jump to a chosen input position;
//! * an [`alternating::AlternatingJumpMachine`] exposes segments of the
//!   normalized form used in the proof of Theorem 5.5: run deterministically
//!   to a halt or a universal binary guess whose two branches each run to a
//!   halt or a jump request.
//!
//! [`jump::accepts_jump_machine`] and
//! [`alternating::accepts_alternating_machine`] implement the acceptance
//! semantics directly (with metering of jumps, guessed bits and visited
//! configurations), and [`compile`] implements the reductions of
//! Theorem 4.3 and Theorem 5.5 that turn an accepting computation question
//! into a `p-HOM(P*)` / `p-HOM(T*)` instance.  [`problems`] provides concrete
//! machines for `p-st-PATH` and for tree-query evaluation, which the
//! experiments compile and solve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alternating;
pub mod compile;
pub mod jump;
pub mod problems;

pub use alternating::{
    accepts_alternating_machine, AltOutcome, AlternatingJumpMachine, BranchOutcome,
};
pub use compile::{compile_alternating_to_hom_tree, compile_jump_to_hom_path, CompiledInstance};
pub use jump::{accepts_jump_machine, JumpMachine, JumpRun, SegmentOutcome};
pub use problems::{StPathMachine, TreeQueryMachine};
