//! Jump machines (Definition 4.4) modelled at the configuration-graph level.
//!
//! A jump machine runs deterministically except that it may, at most `f(k)`
//! times, *jump*: the input head is placed nondeterministically on some input
//! position and the run continues from the machine's start state.  Lemma 4.5
//! shows that accepting languages of pl-space bounded jump machines with
//! `f(k)` jumps is exactly the class PATH.
//!
//! We expose the machine through its deterministic *segments*: from a
//! starting configuration the machine either halts (accepting or rejecting)
//! or reaches its jump state; a jump to position `p` yields the next starting
//! configuration.  This is exactly the granularity at which the reduction of
//! Theorem 4.3 manipulates machines, and it lets concrete machines be written
//! as small Rust state machines instead of Turing-machine tables while
//! preserving the resource accounting (the number of jumps and the number of
//! distinct starting configurations, which is `2^{O(g(k))}·n^{O(1)}` for a
//! pl-space bounded machine).

use std::collections::BTreeSet;
use std::hash::Hash;

/// Outcome of running one deterministic segment of a jump machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentOutcome<S> {
    /// The machine halted and accepted.
    Accept,
    /// The machine halted and rejected.
    Reject,
    /// The machine reached its jump state; `S` is the configuration at the
    /// jump (the successor configuration is obtained by
    /// [`JumpMachine::resume`] with the chosen input position).
    Jump(S),
}

/// A jump machine over inputs of type `I`.
///
/// Implementations must guarantee that the number of distinct configurations
/// returned by [`JumpMachine::initial`] and [`JumpMachine::resume`] is finite
/// (for pl-space bounded machines it is `2^{O(f(k))}·|x|^{O(1)}`), since the
/// compiler of Theorem 4.3 enumerates them.
pub trait JumpMachine<I: ?Sized> {
    /// A starting configuration (work-tape contents + internal state + input
    /// head position, abstracted).
    type State: Clone + Ord + Hash;

    /// The starting configuration on the given input.
    fn initial(&self, input: &I) -> Self::State;

    /// The number of input positions a jump may target (the paper's `n`).
    fn position_count(&self, input: &I) -> usize;

    /// An upper bound on the number of jumps any run performs (`f(κ(x))`).
    fn jump_bound(&self, input: &I) -> usize;

    /// Run deterministically from a starting configuration until the machine
    /// halts or requests a jump.
    fn run_segment(&self, input: &I, state: &Self::State) -> SegmentOutcome<Self::State>;

    /// The starting configuration obtained from the configuration at a jump
    /// by placing the input head on `position`.
    fn resume(&self, input: &I, at_jump: &Self::State, position: usize) -> Self::State;
}

/// Metering data for a jump-machine acceptance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JumpRun {
    /// Whether the machine accepts the input.
    pub accepted: bool,
    /// Number of distinct starting configurations explored.
    pub configurations: usize,
    /// The jump bound `f(k)` announced by the machine.
    pub jump_bound: usize,
    /// The number of nondeterministic bits a bit-guessing simulation would
    /// use: `jump_bound · ⌈log2(position_count)⌉` (cf. Lemma 4.5 (2)⇒(1)).
    pub nondeterministic_bits: usize,
}

/// Decide acceptance of a jump machine by exhaustive exploration of the
/// configuration graph (depth-limited by the jump bound), with metering.
///
/// This is the reference semantics against which the Theorem 4.3 compilation
/// is tested: the machine accepts iff some sequence of at most `f(k)` jumps
/// leads a segment to `Accept`.
pub fn accepts_jump_machine<I: ?Sized, M: JumpMachine<I>>(machine: &M, input: &I) -> JumpRun {
    let bound = machine.jump_bound(input);
    let positions = machine.position_count(input);
    let mut visited: BTreeSet<(usize, M::State)> = BTreeSet::new();

    fn explore<I: ?Sized, M: JumpMachine<I>>(
        machine: &M,
        input: &I,
        state: &M::State,
        jumps_left: usize,
        visited: &mut BTreeSet<(usize, M::State)>,
    ) -> bool {
        if !visited.insert((jumps_left, state.clone())) {
            return false;
        }
        match machine.run_segment(input, state) {
            SegmentOutcome::Accept => true,
            SegmentOutcome::Reject => false,
            SegmentOutcome::Jump(at_jump) => {
                if jumps_left == 0 {
                    return false;
                }
                for p in 0..machine.position_count(input) {
                    let next = machine.resume(input, &at_jump, p);
                    if explore(machine, input, &next, jumps_left - 1, visited) {
                        return true;
                    }
                }
                false
            }
        }
    }

    let initial = machine.initial(input);
    let accepted = explore(machine, input, &initial, bound, &mut visited);
    let bits_per_jump = (usize::BITS - positions.max(1).leading_zeros()) as usize;
    JumpRun {
        accepted,
        configurations: visited.len(),
        jump_bound: bound,
        nondeterministic_bits: bound * bits_per_jump,
    }
}

/// Enumerate all starting configurations reachable from the initial one
/// (closure under "segment runs to a jump, resume at any position").  This is
/// the configuration enumeration `c_1, …, c_m` of the Theorem 4.3 proof.
pub fn reachable_start_states<I: ?Sized, M: JumpMachine<I>>(
    machine: &M,
    input: &I,
) -> Vec<M::State> {
    let mut seen: BTreeSet<M::State> = BTreeSet::new();
    let mut queue = vec![machine.initial(input)];
    seen.insert(machine.initial(input));
    while let Some(state) = queue.pop() {
        if let SegmentOutcome::Jump(at_jump) = machine.run_segment(input, &state) {
            for p in 0..machine.position_count(input) {
                let next = machine.resume(input, &at_jump, p);
                if seen.insert(next.clone()) {
                    queue.push(next);
                }
            }
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy jump machine over a bit-string input: accept iff the input
    /// contains at least `k` ones, found by jumping to `k` positions in
    /// strictly increasing order and verifying a one at each.
    struct CountOnes {
        k: usize,
    }

    /// State: (ones verified so far, minimum next allowed position, alive).
    type COState = (usize, usize, bool);

    impl JumpMachine<Vec<bool>> for CountOnes {
        type State = COState;

        fn initial(&self, _input: &Vec<bool>) -> COState {
            (0, 0, true)
        }

        fn position_count(&self, input: &Vec<bool>) -> usize {
            input.len()
        }

        fn jump_bound(&self, _input: &Vec<bool>) -> usize {
            self.k
        }

        fn run_segment(&self, _input: &Vec<bool>, state: &COState) -> SegmentOutcome<COState> {
            let (found, _, alive) = *state;
            if !alive {
                SegmentOutcome::Reject
            } else if found >= self.k {
                SegmentOutcome::Accept
            } else {
                SegmentOutcome::Jump(*state)
            }
        }

        fn resume(&self, input: &Vec<bool>, at_jump: &COState, position: usize) -> COState {
            let (found, min_pos, alive) = *at_jump;
            if alive && position >= min_pos && input[position] {
                (found + 1, position + 1, true)
            } else {
                (found, min_pos, false)
            }
        }
    }

    #[test]
    fn count_ones_accepts_iff_enough_ones() {
        let input = vec![false, true, false, true, true, false];
        for k in 0..=4 {
            let run = accepts_jump_machine(&CountOnes { k }, &input);
            assert_eq!(run.accepted, k <= 3, "k = {k}");
            assert_eq!(run.jump_bound, k);
        }
    }

    #[test]
    fn metering_reports_bits() {
        let input = vec![true; 8];
        let run = accepts_jump_machine(&CountOnes { k: 3 }, &input);
        assert!(run.accepted);
        // 3 jumps, 8 positions -> 4 bits per jump.
        assert_eq!(run.nondeterministic_bits, 3 * 4);
        assert!(run.configurations > 0);
    }

    #[test]
    fn reachable_states_are_parameter_bounded_not_input_bounded() {
        // The number of distinct starting configurations of CountOnes is
        // O(k · n): bounded polynomially in the input and by the parameter.
        let input = vec![true; 10];
        let states = reachable_start_states(&CountOnes { k: 2 }, &input);
        assert!(!states.is_empty());
        assert!(states.len() <= 2 * (input.len() + 2) * 2 + 2);
        assert!(states.contains(&(0, 0, true)));
    }

    #[test]
    fn empty_input_rejects_positive_k() {
        let input: Vec<bool> = vec![];
        let run = accepts_jump_machine(&CountOnes { k: 1 }, &input);
        assert!(!run.accepted);
        let run0 = accepts_jump_machine(&CountOnes { k: 0 }, &input);
        assert!(run0.accepted);
    }
}
