//! Lemma 3.8: `p-HOM(G*) ≤pl p-HOM(A*)` when `G` is the Gaifman graph of
//! `A`.
//!
//! Given an instance `(G*, B)` (where `B` interprets `E` and the colours
//! `C_a`) and the structure `A` whose Gaifman graph is `G`, the reduction
//! outputs `(A*, B')` with `B' = A × B`, colours
//! `C_a^{B'} = {a} × C_a^B`, and, for every relation symbol `R` of `A`,
//! `R^{B'}` containing the tuples `((a₁,b₁),…)` such that `ā ∈ R^A` and for
//! all `i ≠ j` with `a_i ≠ a_j` we have `(b_i, b_j) ∈ E^B`.

use crate::ReducedInstance;
use cq_structures::{star_expansion, Structure, Tuple};

/// Apply the Lemma 3.8 reduction: `a` is the structure whose Gaifman graph
/// the query `G*` was built from, and `b` is the database of the `(G*, B)`
/// instance (interpreting `E` and the colours `C_a`).
pub fn gaifman_to_structure_instance(a: &Structure, b: &Structure) -> ReducedInstance {
    let query = star_expansion(a);
    let nb = b.universe_size();
    let eb = b.vocabulary().id_of("E");

    // Vocabulary of B': the symbols of A plus the colours C_a.
    let mut database =
        Structure::new(query.vocabulary().clone(), a.universe_size() * nb).expect("non-empty");

    // Relation tuples.
    for (sym, t) in a.all_tuples() {
        let name = a.vocabulary().name(sym);
        let target_sym = database.vocabulary().id_of(name).expect("copied symbol");
        // Enumerate all b-tuples of the same arity and keep the compatible ones.
        let arity = t.len();
        let mut assignment: Vec<usize> = vec![0; arity];
        loop {
            // Check pairwise E-constraints for distinct query elements.
            let ok = (0..arity).all(|i| {
                (0..arity).all(|j| {
                    if t[i] == t[j] {
                        // Equal query elements must receive equal images for
                        // the tuple to be meaningful under the pairing below;
                        // the paper's definition leaves them unconstrained,
                        // but tuples with unequal images at equal positions
                        // can never be the image of a homomorphism, so
                        // including or excluding them does not change the
                        // answer.  We exclude them to keep B' smaller.
                        assignment[i] == assignment[j]
                    } else {
                        eb.map(|sym| b.contains(sym, &[assignment[i], assignment[j]]))
                            .unwrap_or(false)
                    }
                })
            });
            if ok {
                let tuple: Tuple = (0..arity)
                    .map(|i| t[i] as usize * nb + assignment[i])
                    .collect();
                database.add_tuple(target_sym, tuple).expect("in range");
            }
            // Advance the odometer.
            let mut pos = 0;
            loop {
                if pos == arity {
                    break;
                }
                assignment[pos] += 1;
                if assignment[pos] < nb {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
            if pos == arity {
                break;
            }
        }
    }

    // Colours: C_a^{B'} = {a} × C_a^B.
    for e in a.universe() {
        let name = format!("C_{e}");
        let target_sym = database.vocabulary().id_of(&name).expect("colour exists");
        if let Some(source_sym) = b.vocabulary().id_of(&name) {
            for t in b.relation(source_sym).rows() {
                database
                    .add_tuple(target_sym, vec![e * nb + t[0] as usize])
                    .expect("in range");
            }
        }
    }

    ReducedInstance::new(query, database)
}

// Small helper re-exported for the tests above (kept private to the paper's
// reduction: the Gaifman graph is computed through `cq_graphs`).
#[allow(dead_code)]
fn _unused() {}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::ops::colored_target;
    use cq_structures::{families, homomorphism_exists};

    // Build the (G*, B) instance corresponding to "does the Gaifman graph of
    // A map into H (with all colours allowed)?"
    fn gstar_instance(a: &Structure, h: &Structure) -> (Structure, Structure) {
        let g = cq_graphs::gaifman_graph(a).to_structure();
        let query = star_expansion(&g);
        let database = colored_target(a.universe_size(), h, |_| (0..h.universe_size()).collect());
        (query, database)
    }

    #[test]
    fn binary_structures_roundtrip() {
        // For a graph-shaped A the reduction essentially reproduces the same
        // instance; answers must be preserved.
        for a in [families::cycle(4), families::path(4), families::cycle(5)] {
            for h in [families::cycle(6), families::clique(3), families::path(3)] {
                let (gstar, b) = gstar_instance(&a, &h);
                let expected = homomorphism_exists(&gstar, &b);
                let reduced = gaifman_to_structure_instance(&a, &b);
                assert_eq!(reduced.holds(), expected, "{a} -> {h}");
            }
        }
    }

    #[test]
    fn ternary_structure_reduction() {
        // A with one ternary tuple over three distinct elements: its Gaifman
        // graph is a triangle, so (G*, B) asks for a triangle in B respecting
        // colours; the produced (A*, B') must agree.
        let vocab = cq_structures::Vocabulary::from_pairs([("R", 3)]).unwrap();
        let r = vocab.id_of("R").unwrap();
        let mut builder = cq_structures::StructureBuilder::new(vocab);
        builder.raw_fact(r, vec![0, 1, 2]);
        let a = builder.build().unwrap();

        // Database for the Gaifman instance: a graph with/without triangles.
        for (h, expected) in [(families::clique(3), true), (families::grid(3, 3), false)] {
            let (gstar, b) = gstar_instance(&a, &h);
            assert_eq!(homomorphism_exists(&gstar, &b), expected);
            let reduced = gaifman_to_structure_instance(&a, &b);
            assert_eq!(reduced.holds(), expected, "target {h}");
        }
    }

    #[test]
    fn colours_are_carried_over() {
        let a = families::path(3);
        let h = families::path(4);
        // Pin query vertex i to database vertex i: satisfiable.
        let good = colored_target(3, &h, |e| vec![e]);
        let reduced_good = gaifman_to_structure_instance(&a, &good);
        assert!(reduced_good.holds());
        // Pin all query vertices to the same database vertex: needs a loop.
        let bad = colored_target(3, &h, |_| vec![0]);
        let reduced_bad = gaifman_to_structure_instance(&a, &bad);
        assert!(!reduced_bad.holds());
    }

    #[test]
    fn database_size_is_product() {
        let a = families::cycle(4);
        let h = families::cycle(7);
        let (_, b) = gstar_instance(&a, &h);
        let reduced = gaifman_to_structure_instance(&a, &b);
        assert_eq!(reduced.database.universe_size(), 4 * 7);
        assert_eq!(reduced.query.universe_size(), 4);
    }
}
