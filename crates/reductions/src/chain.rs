//! The reduction chain of Theorem 4.7:
//! `p-HOM(P*) ≤pl p-HOM(->P) ≤pl p-st-PATH ≤pl p-HOM(->C)`.
//!
//! Together with Theorem 4.3 (`p-HOM(P*)` is PATH-hard) this shows that the
//! directed k-path, st-path and directed k-cycle problems are PATH-complete.
//! Each step is an explicit instance transformation; the tests verify answer
//! preservation individually and for the composed chain.

use crate::ReducedInstance;
use cq_graphs::Graph;
use cq_structures::{families, Structure, StructureBuilder, Vocabulary};

/// Step 1 (`p-HOM(P*) ≤pl p-HOM(->P)`): given a `(P*_k, B)` instance
/// (`B` interprets `E` and the colours `C_0 … C_{k-1}` along the path),
/// produce the `(->P_k, B')` instance with `B' = [k] × B` and an arc from
/// `(i, b)` to `(i+1, b')` whenever `b ∈ C_i`, `b' ∈ C_{i+1}` and
/// `(b, b') ∈ E^B`.
pub fn hom_path_star_to_dirpath(k: usize, b: &Structure) -> ReducedInstance {
    assert!(k >= 1);
    let query = families::directed_path(k);
    let nb = b.universe_size();
    let eb = b.vocabulary().id_of("E");
    let color = |i: usize| b.vocabulary().id_of(&format!("C_{i}"));

    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut builder = StructureBuilder::new(vocab).with_universe(k * nb);
    for i in 0..k.saturating_sub(1) {
        let (Some(ci), Some(cn)) = (color(i), color(i + 1)) else {
            continue;
        };
        for t1 in b.relation(ci).rows() {
            for t2 in b.relation(cn).rows() {
                let (u, v) = (t1[0] as usize, t2[0] as usize);
                let adjacent = eb.map(|sym| b.contains(sym, &[u, v])).unwrap_or(false);
                if adjacent {
                    builder.raw_fact(e, vec![i * nb + u, (i + 1) * nb + v]);
                }
            }
        }
    }
    // Degenerate k = 1: the query is a single vertex; B' needs an element
    // iff C_0 is non-empty, which the universe construction already ensures
    // (a yes-instance needs no edges).  For k = 1 we instead encode the
    // non-emptiness of C_0 through a self-contained check below.
    let database = builder.build().expect("non-empty");
    ReducedInstance::new(query, database)
}

/// The produced `p-st-PATH` instance of step 2.
#[derive(Debug, Clone)]
pub struct StPathInstance {
    /// The produced graph `G'`.
    pub graph: Graph,
    /// Source vertex.
    pub s: usize,
    /// Target vertex.
    pub t: usize,
    /// Length bound (number of edges).
    pub k: usize,
}

impl StPathInstance {
    /// Evaluate the produced instance (by BFS — shortest paths are simple).
    pub fn holds(&self) -> bool {
        cq_graphs::traversal::st_path_within(&self.graph, self.s, self.t, self.k)
    }
}

/// Step 2 (`p-HOM(->P) ≤pl p-st-PATH`): given a `(->P_k, G)` instance where
/// `G` is a directed graph (a structure over `{E/2}`), produce the
/// undirected graph `G'` with vertices `{s, t} ∪ [k] × G`, the layered edges
/// `((i,u),(i+1,v))` for arcs `(u,v)` of `G`, `s` joined to layer 1 and `t`
/// joined to layer `k`; the answer is preserved with length bound `k + 1`.
pub fn dirpath_to_st_path(k: usize, g: &Structure) -> StPathInstance {
    assert!(k >= 1);
    assert!(g.is_digraph());
    let n = g.universe_size();
    let e = g.vocabulary().id_of("E").unwrap();
    // Vertex layout: s = 0, t = 1, (i, u) = 2 + i·n + u for i ∈ 0..k.
    let mut graph = Graph::new(2 + k * n);
    let vertex = |layer: usize, u: usize| 2 + layer * n + u;
    for t in g.relation(e).rows() {
        for layer in 0..k.saturating_sub(1) {
            graph.add_edge(
                vertex(layer, t[0] as usize),
                vertex(layer + 1, t[1] as usize),
            );
        }
    }
    for u in 0..n {
        graph.add_edge(0, vertex(0, u));
        graph.add_edge(1, vertex(k - 1, u));
    }
    StPathInstance {
        graph,
        s: 0,
        t: 1,
        k: k + 1,
    }
}

/// Step 3 (`p-st-PATH ≤pl p-HOM(->C)`): given an st-path instance in the
/// *layered* form produced by [`dirpath_to_st_path`] (every `s`–`t` path has
/// length exactly `k`), produce a `(->C_k, G')` instance: `G'` has vertices
/// `[k] × G`, arcs `((i,u),(i+1,v))` for every edge `{u,v}` of `G`, plus the
/// closing arc `((k-1,t),(0,s))`; a directed `k`-cycle homomorphism exists
/// iff there is an `s`–`t` walk on exactly `k` vertices, which for layered
/// inputs coincides with the path question.
pub fn st_path_to_dircycle(instance: &StPathInstance) -> ReducedInstance {
    let k = instance.k + 1; // number of vertices on an s-t path of length k edges
    assert!(k >= 2);
    let n = instance.graph.vertex_count();
    let query = families::directed_cycle(k);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut builder = StructureBuilder::new(vocab).with_universe(k * n);
    for (u, v) in instance.graph.edges() {
        for layer in 0..k - 1 {
            builder.raw_fact(e, vec![layer * n + u, (layer + 1) * n + v]);
            builder.raw_fact(e, vec![layer * n + v, (layer + 1) * n + u]);
        }
    }
    builder.raw_fact(e, vec![(k - 1) * n + instance.t, instance.s]);
    let database = builder.build().expect("non-empty");
    ReducedInstance::new(query, database)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::ops::colored_target;
    use cq_structures::{homomorphism_exists, star_expansion};

    /// Build a (P*_k, B) instance restricting vertex i of the path to the
    /// given allowed sets over the base graph.
    fn path_star_instance(
        k: usize,
        base: &Structure,
        allowed: impl Fn(usize) -> Vec<usize>,
    ) -> (Structure, Structure) {
        let query = star_expansion(&families::path(k));
        let db = colored_target(k, base, allowed);
        (query, db)
    }

    #[test]
    fn step1_preserves_answers() {
        for (base, k) in [
            (families::path(5), 3usize),
            (families::cycle(6), 4),
            (families::cycle(5), 3),
            (families::grid(2, 3), 4),
        ] {
            // All colours allowed.
            let (q, b) = path_star_instance(k, &base, |_| (0..base.universe_size()).collect());
            let expected = homomorphism_exists(&q, &b);
            let reduced = hom_path_star_to_dirpath(k, &b);
            assert_eq!(reduced.holds(), expected, "k={k} base {base}");
            // Colours pinned to single vertices (identity-ish).
            let (q2, b2) = path_star_instance(k, &base, |i| vec![i % base.universe_size()]);
            let expected2 = homomorphism_exists(&q2, &b2);
            let reduced2 = hom_path_star_to_dirpath(k, &b2);
            assert_eq!(reduced2.holds(), expected2, "pinned k={k} base {base}");
        }
    }

    #[test]
    fn step2_preserves_answers() {
        for (g, k) in [
            (families::directed_path(5), 3usize),
            (families::directed_path(5), 6),
            (families::directed_cycle(4), 5),
            (families::directed_cycle(3), 2),
        ] {
            let query = families::directed_path(k);
            let expected = homomorphism_exists(&query, &g);
            let st = dirpath_to_st_path(k, &g);
            assert_eq!(st.holds(), expected, "k={k} digraph {g}");
        }
    }

    #[test]
    fn step3_preserves_answers_for_layered_inputs() {
        for (g, k) in [
            (families::directed_path(5), 3usize),
            (families::directed_path(4), 5),
            (families::directed_cycle(4), 5),
        ] {
            let query = families::directed_path(k);
            let expected = homomorphism_exists(&query, &g);
            let st = dirpath_to_st_path(k, &g);
            assert_eq!(st.holds(), expected);
            let cyc = st_path_to_dircycle(&st);
            assert_eq!(cyc.holds(), expected, "k={k} digraph {g}");
        }
    }

    #[test]
    fn full_chain_composition() {
        // Start from (P*_k, B) instances and push them through all three
        // steps, checking the answer at the end of the chain.
        for (base, k) in [(families::cycle(6), 3usize), (families::path(4), 3)] {
            let (q, b) = path_star_instance(k, &base, |_| (0..base.universe_size()).collect());
            let expected = homomorphism_exists(&q, &b);
            let step1 = hom_path_star_to_dirpath(k, &b);
            let step2 = dirpath_to_st_path(k, &step1.database);
            let step3 = st_path_to_dircycle(&step2);
            assert_eq!(step1.holds(), expected);
            assert_eq!(step2.holds(), expected);
            assert_eq!(step3.holds(), expected);
        }
    }

    #[test]
    fn parameters_depend_only_on_k() {
        let b_small = colored_target(3, &families::cycle(4), |_| (0..4).collect());
        let b_large = colored_target(3, &families::grid(3, 3), |_| (0..9).collect());
        let r1 = hom_path_star_to_dirpath(3, &b_small);
        let r2 = hom_path_star_to_dirpath(3, &b_large);
        assert_eq!(r1.query, r2.query);
        let s1 = dirpath_to_st_path(3, &r1.database);
        let s2 = dirpath_to_st_path(3, &r2.database);
        assert_eq!(s1.k, s2.k);
    }
}
