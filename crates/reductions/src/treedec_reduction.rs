//! Lemma 3.4: `p-HOM(A) ≤pl p-HOM(R*)` when every structure of `A` has a
//! width-`w` tree decomposition whose tree lies in `R`.
//!
//! Given an instance `(A, B)` and a tree decomposition `(T, (X_t))` of `A`,
//! the reduction outputs `(T*, B')` where the elements of `B'` are the
//! partial homomorphisms from `A` to `B` with domain a bag, two partial
//! homomorphisms are adjacent when they are compatible, and the colour `C_t`
//! holds the partial homomorphisms with domain exactly `X_t`.  Remark 3.5:
//! the map `h ↦ (t ↦ h↾X_t)` is a *bijection* between the homomorphisms from
//! `A` to `B` and those from `T*` to `B'` — so the reduction is parsimonious
//! and reusable for the counting classification (Theorem 6.1).

use crate::ReducedInstance;
use cq_decomp::TreeDecomposition;
use cq_graphs::gaifman_graph;
use cq_structures::ops::colored_target;
use cq_structures::{star_expansion, Element, PartialHom, Structure, StructureBuilder, Vocabulary};
use std::collections::BTreeSet;

/// Enumerate the partial homomorphisms from `a` to `b` whose domain is
/// exactly the given bag.
fn bag_partial_homs(a: &Structure, b: &Structure, bag: &BTreeSet<Element>) -> Vec<PartialHom> {
    let elems: Vec<Element> = bag.iter().copied().collect();
    let mut out = Vec::new();
    fn rec(
        a: &Structure,
        b: &Structure,
        elems: &[Element],
        current: &mut Vec<Element>,
        out: &mut Vec<PartialHom>,
    ) {
        if current.len() == elems.len() {
            let h = PartialHom::from_pairs(elems.iter().copied().zip(current.iter().copied()));
            if cq_structures::is_partial_homomorphism(a, b, &h) {
                out.push(h);
            }
            return;
        }
        for candidate in b.universe() {
            current.push(candidate);
            rec(a, b, elems, current, out);
            current.pop();
        }
    }
    rec(a, b, &elems, &mut Vec::new(), &mut out);
    out
}

/// Apply the Lemma 3.4 reduction to `(a, b)` using the given tree
/// decomposition of (the Gaifman graph of) `a`.
///
/// Returns the produced `(T*, B')` instance; `T` is the decomposition tree
/// realized as a graph structure over `{E/2}` and then `*`-expanded.
pub fn to_tree_star_instance(
    a: &Structure,
    b: &Structure,
    td: &TreeDecomposition,
) -> ReducedInstance {
    debug_assert!(td.is_valid_for(&gaifman_graph(a)));
    // The query: T*, where T is the decomposition tree.
    let t_structure = td.tree.to_structure();
    let query = star_expansion(&t_structure);

    // The database B': elements are (bag index, partial hom with that bag as
    // domain); this indexes exactly the union over t of C_t while keeping the
    // construction finite.  Edges connect compatible partial homomorphisms of
    // adjacent... — the paper connects *all* compatible pairs; since the tree
    // query only ever asks about adjacent bags, restricting edges to pairs
    // whose bags are adjacent in T preserves the homomorphisms (and the
    // bijection of Remark 3.5).
    let mut elements: Vec<(usize, PartialHom)> = Vec::new();
    let mut per_bag: Vec<Vec<usize>> = Vec::with_capacity(td.bags.len());
    for (t, bag) in td.bags.iter().enumerate() {
        let homs = bag_partial_homs(a, b, bag);
        let mut indices = Vec::with_capacity(homs.len());
        for h in homs {
            indices.push(elements.len());
            elements.push((t, h));
        }
        per_bag.push(indices);
    }
    // Guard against an empty universe (no partial homomorphism at all): keep
    // one dummy element so the structure stays well-formed; no colour will
    // allow it, so the produced instance is a no-instance as required.
    let universe = elements.len().max(1);

    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut builder = StructureBuilder::new(vocab).with_universe(universe);
    for (t1, t2) in td.tree.edges() {
        for &i in &per_bag[t1] {
            for &j in &per_bag[t2] {
                if elements[i].1.compatible(&elements[j].1) {
                    builder.raw_fact(e, vec![i, j]);
                    builder.raw_fact(e, vec![j, i]);
                }
            }
        }
    }
    let base = builder.build().expect("non-empty by construction");
    let database = colored_target(td.bags.len(), &base, |t| per_bag[t].clone());

    ReducedInstance::new(query, database)
}

/// Convenience: compute an optimal tree decomposition of `a` and reduce.
pub fn to_tree_star_instance_auto(a: &Structure, b: &Structure) -> ReducedInstance {
    let (_, td) = cq_decomp::treewidth::treewidth_of_structure(a);
    to_tree_star_instance(a, b, &td)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{count_homomorphisms_bruteforce, families, homomorphism_exists};

    fn check_preserves(a: &Structure, b: &Structure) {
        let reduced = to_tree_star_instance_auto(a, b);
        assert_eq!(
            reduced.holds(),
            homomorphism_exists(a, b),
            "answer changed for {a} -> {b}"
        );
    }

    #[test]
    fn preserves_answers_on_small_instances() {
        let queries = [
            families::path(4),
            families::cycle(3),
            families::cycle(4),
            families::cycle(5),
            families::star(3),
            families::grid(2, 2),
            families::directed_path(3),
        ];
        let targets = [
            families::path(4),
            families::cycle(5),
            families::cycle(6),
            families::clique(3),
            families::grid(2, 3),
            families::directed_cycle(4),
        ];
        for a in &queries {
            for b in &targets {
                if a.vocabulary().same_symbols(b.vocabulary()) {
                    check_preserves(a, b);
                }
            }
        }
    }

    #[test]
    fn remark_3_5_bijection_preserves_counts() {
        // The number of homomorphisms is preserved exactly (parsimonious).
        let cases = [
            (families::path(3), families::clique(3)),
            (families::cycle(4), families::cycle(6)),
            (families::star(2), families::path(3)),
            (families::cycle(3), families::clique(4)),
        ];
        for (a, b) in cases {
            let reduced = to_tree_star_instance_auto(&a, &b);
            assert_eq!(
                count_homomorphisms_bruteforce(&reduced.query, &reduced.database),
                count_homomorphisms_bruteforce(&a, &b),
                "count changed for {a} -> {b}"
            );
        }
    }

    #[test]
    fn parameter_depends_only_on_query() {
        // The produced query is T*, whose size depends only on the input
        // query's decomposition, not on |B|.
        let a = families::cycle(5);
        let r1 = to_tree_star_instance_auto(&a, &families::cycle(7));
        let r2 = to_tree_star_instance_auto(&a, &families::grid(3, 3));
        assert_eq!(r1.new_parameter, r2.new_parameter);
        assert!(r1.database_size <= r2.database_size);
    }

    #[test]
    fn unsatisfiable_instance_stays_unsatisfiable() {
        let reduced = to_tree_star_instance_auto(&families::cycle(3), &families::path(2));
        assert!(!reduced.holds());
    }

    #[test]
    fn database_is_polynomial_in_target() {
        // |B'| is at most (number of bags) · |B|^{w+1} partial maps; for a
        // width-1 query it is quadratic.
        let a = families::path(5);
        let b = families::path(10);
        let reduced = to_tree_star_instance_auto(&a, &b);
        assert!(reduced.database.universe_size() <= 5 * 10 * 10);
    }
}
