//! Lemma 3.7: `p-HOM(M*) ≤pl p-HOM(G*)` when every `M ∈ M` is a minor of
//! some `G ∈ G`.
//!
//! Given an instance `(M*, B)` and a minor map `μ` from `M` into `G`, the
//! reduction produces `(G*, B')` with
//! `B' = (M × B) ∪ {⊥}`, an edge between `(m₁,b₁)` and `(m₂,b₂)` iff
//! (`m₁ = m₂ ⇒ b₁ = b₂`) and (`(m₁,m₂) ∈ E^M ⇒ (b₁,b₂) ∈ E^B`), `⊥`
//! adjacent to everything, colour `C_v = {(m, b) | b ∈ C_m^B}` for
//! `v ∈ μ(m)` and `C_v = {⊥}` for `v` outside the image of `μ`.

use crate::ReducedInstance;
use cq_graphs::{Graph, MinorMap};
use cq_structures::ops::colored_target;
use cq_structures::{star_expansion, Structure, StructureBuilder, Vocabulary};

/// Apply the Lemma 3.7 reduction.
///
/// * `minor` — the graph `M` (the Gaifman skeleton of the query `M*`);
/// * `b` — the database of the `(M*, B)` instance: it must interpret `E` and
///   the colours `C_m` for every vertex `m` of `M` (as produced by
///   `star_expansion` / `colored_target`);
/// * `host` — the graph `G`;
/// * `mu` — a minor map witnessing `M ≼ G`.
pub fn minor_to_host_instance(
    minor: &Graph,
    b: &Structure,
    host: &Graph,
    mu: &MinorMap,
) -> ReducedInstance {
    assert!(mu.verify(minor, host), "invalid minor map");
    let query = star_expansion(&host.to_structure());

    let nb = b.universe_size();
    let m_count = minor.vertex_count();
    // Element encoding: (m, b) ↦ m·|B| + b, and ⊥ ↦ m_count·|B|.
    let bottom = m_count * nb;
    let universe = bottom + 1;
    let be = b.vocabulary().id_of("E");

    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut builder = StructureBuilder::new(vocab).with_universe(universe);
    for m1 in 0..m_count {
        for b1 in 0..nb {
            for m2 in 0..m_count {
                for b2 in 0..nb {
                    let same_ok = m1 != m2 || b1 == b2;
                    let edge_ok = !minor.has_edge(m1, m2)
                        || be.map(|sym| b.contains(sym, &[b1, b2])).unwrap_or(false);
                    if same_ok && edge_ok {
                        builder.raw_fact(e, vec![m1 * nb + b1, m2 * nb + b2]);
                    }
                }
            }
        }
    }
    for v in 0..universe {
        if v != bottom {
            builder.raw_fact(e, vec![bottom, v]);
            builder.raw_fact(e, vec![v, bottom]);
        }
    }
    builder.raw_fact(e, vec![bottom, bottom]);
    let base = builder.build().expect("non-empty");

    // Colour of host vertex v: the pairs (m, b) with v ∈ μ(m) and b ∈ C_m^B,
    // or {⊥} when v lies outside every branch set.
    let database = colored_target(host.vertex_count(), &base, |v| {
        for m in 0..m_count {
            if mu.branch_set(m).contains(&v) {
                let color = b.vocabulary().id_of(&format!("C_{m}"));
                return match color {
                    Some(sym) => b
                        .relation(sym)
                        .rows()
                        .map(|t| m * nb + t[0] as usize)
                        .collect(),
                    None => Vec::new(),
                };
            }
        }
        vec![bottom]
    });

    ReducedInstance::new(query, database)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::{families as gf, find_minor_map};
    use cq_structures::ops::colored_target;
    use cq_structures::{families, homomorphism_exists, star_expansion};

    /// Build an `(M*, B)` instance from a plain graph homomorphism question
    /// "does M map into the graph H?" by allowing every colour everywhere.
    fn mstar_instance(m: &Graph, h: &Structure) -> (Structure, Structure) {
        let query = star_expansion(&m.to_structure());
        let database = colored_target(m.vertex_count(), h, |_| (0..h.universe_size()).collect());
        (query, database)
    }

    #[test]
    fn path_minor_inside_grid_preserves_answers() {
        // M = P_4 is a minor of G = the 2x3 grid; reduce (P_4*, B) instances.
        let minor = gf::path_graph(4);
        let host = gf::grid_graph(2, 3);
        let mu = find_minor_map(&minor, &host).expect("P4 is a minor of the grid");
        for target in [families::cycle(5), families::cycle(4), families::path(2)] {
            let (mstar, b) = mstar_instance(&minor, &target);
            let expected = homomorphism_exists(&mstar, &b);
            let reduced = minor_to_host_instance(&minor, &b, &host, &mu);
            assert_eq!(reduced.holds(), expected, "target {target}");
        }
    }

    #[test]
    fn triangle_minor_inside_k4_preserves_answers() {
        let minor = gf::cycle_graph(3);
        let host = gf::complete_graph(4);
        let mu = find_minor_map(&minor, &host).unwrap();
        // Triangle* into C_5: yes (odd cycle into odd cycle of length >= 3?
        // C_3 -> C_5 actually has NO homomorphism).  Use both a yes and a no
        // target to make sure both answers survive.
        let yes_target = families::clique(3);
        let no_target = families::cycle(5);
        for (target, expected) in [(yes_target, true), (no_target, false)] {
            let (mstar, b) = mstar_instance(&minor, &target);
            assert_eq!(homomorphism_exists(&mstar, &b), expected);
            let reduced = minor_to_host_instance(&minor, &b, &host, &mu);
            assert_eq!(reduced.holds(), expected);
        }
    }

    #[test]
    fn colour_restrictions_survive_the_reduction() {
        // Pin each vertex of the minor path to a single target vertex; only
        // one assignment remains, and it is a homomorphism iff consecutive
        // pins are adjacent.
        let minor = gf::path_graph(3);
        let host = gf::path_graph(5);
        let mu = find_minor_map(&minor, &host).unwrap();
        let target = families::path(4);
        let good = colored_target(3, &target, |e| vec![e]);
        let bad = colored_target(3, &target, |e| vec![(2 * e) % 4]);
        let query = star_expansion(&minor.to_structure());
        assert!(homomorphism_exists(&query, &good));
        assert!(!homomorphism_exists(&query, &bad));
        assert!(minor_to_host_instance(&minor, &good, &host, &mu).holds());
        assert!(!minor_to_host_instance(&minor, &bad, &host, &mu).holds());
    }

    #[test]
    fn parameter_is_host_sized() {
        let minor = gf::path_graph(3);
        let host = gf::grid_graph(2, 3);
        let mu = find_minor_map(&minor, &host).unwrap();
        let (_, b) = mstar_instance(&minor, &families::cycle(6));
        let reduced = minor_to_host_instance(&minor, &b, &host, &mu);
        assert_eq!(reduced.query.universe_size(), host.vertex_count());
    }

    #[test]
    #[should_panic]
    fn invalid_minor_map_rejected() {
        let minor = gf::cycle_graph(3);
        let host = gf::path_graph(4);
        let bogus = MinorMap::new(vec![
            [0].into_iter().collect(),
            [1].into_iter().collect(),
            [2].into_iter().collect(),
        ]);
        let (_, b) = mstar_instance(&minor, &families::clique(3));
        let _ = minor_to_host_instance(&minor, &b, &host, &bogus);
    }
}
