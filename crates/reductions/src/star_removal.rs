//! Lemma 3.9 / Corollary 3.10: `p-HOM(core(A)*) ≤pl p-HOM(core(A))` — and
//! in fact the produced homomorphisms are embeddings.
//!
//! Given an instance `(D*, B)` with `D` a core, the reduction restricts `B`
//! to the vocabulary of `D` (call it `B₀`), forms the direct product
//! `D × B₀`, and keeps only the elements `(d, b)` with `b ∈ C_d^B`:
//!
//! `B' = ⟨{(d, b) ∈ D × B | b ∈ C_d^B}⟩_{D×B₀}`.
//!
//! There is a homomorphism `D* → B` iff there is one `D → B'`; the proof
//! uses the core property of `D` to "straighten" a homomorphism `g : D → B'`
//! into one whose first projection is the identity.

use crate::ReducedInstance;
use cq_structures::ops::{direct_product, product_pair};
use cq_structures::{core_of, is_core, Structure};
use std::collections::BTreeSet;

/// Apply the Lemma 3.9 reduction.  `d` must be a core (checked in debug
/// builds); `b` is the database of the `(D*, B)` instance — it interprets
/// the vocabulary of `d` plus the colours `C_d`.
pub fn remove_star_colors(d: &Structure, b: &Structure) -> ReducedInstance {
    debug_assert!(is_core(d), "Lemma 3.9 requires the query to be a core");
    // Restrict B to the vocabulary of D.
    let b0 = b
        .restrict_to(d.vocabulary())
        .expect("database must interpret the query vocabulary");
    let product = direct_product(d, &b0).expect("same vocabulary by construction");

    // Keep the elements (d, b) with b ∈ C_d^B.
    let nb = b0.universe_size();
    let mut keep: BTreeSet<usize> = BTreeSet::new();
    for elem in d.universe() {
        if let Some(sym) = b.vocabulary().id_of(&format!("C_{elem}")) {
            for t in b.relation(sym).rows() {
                keep.insert(product_pair(elem, t[0] as usize, nb));
            }
        }
    }
    let database = if keep.is_empty() {
        // No allowed pair at all: produce a trivially unsatisfiable instance
        // over the right vocabulary (a single element with empty relations
        // only works when D has some tuple; to be safe, keep one product
        // element that is in no relation and additionally strip relations by
        // using an empty-relation structure).
        Structure::new(d.vocabulary().clone(), 1).expect("non-empty")
    } else {
        product.induced_substructure(&keep).expect("non-empty").0
    };

    ReducedInstance::new(d.clone(), database)
}

/// Convenience for tests: take an arbitrary query, compute its core, and
/// reduce the `(core*, B)` instance.
pub fn remove_star_colors_of_core(a: &Structure, b: &Structure) -> ReducedInstance {
    let core = core_of(a).core;
    remove_star_colors(&core, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::ops::colored_target;
    use cq_structures::{families, find_homomorphism, homomorphism_exists, star_expansion};

    fn check(d: &Structure, b_base: &Structure, allowed: impl Fn(usize) -> Vec<usize>) {
        let dstar = star_expansion(d);
        let b = colored_target(d.universe_size(), b_base, allowed);
        let expected = homomorphism_exists(&dstar, &b);
        let reduced = remove_star_colors(d, &b);
        assert_eq!(reduced.holds(), expected);
        // Corollary 3.10: when satisfiable, there is even an embedding of D
        // into B' (the constructed homomorphism d ↦ (d, h(d)) is injective).
        if expected {
            let h = find_homomorphism(&reduced.query, &reduced.database).unwrap();
            let _ = h;
            assert!(cq_structures::embedding_exists(
                &reduced.query,
                &reduced.database
            ));
        }
    }

    #[test]
    fn odd_cycles_with_various_colorings() {
        let c5 = families::cycle(5);
        assert!(is_core(&c5));
        // All colours allowed: equivalent to C_5 -> C_5 (yes).
        check(&c5, &families::cycle(5), |_| (0..5).collect());
        // Colours pinned to the identity: yes.
        check(&c5, &families::cycle(5), |e| vec![e]);
        // Colours pinned to a single vertex: needs a loop, no.
        check(&c5, &families::cycle(5), |_| vec![0]);
        // Target is a long even cycle: no homomorphism from an odd cycle.
        check(&c5, &families::cycle(6), |_| (0..6).collect());
    }

    #[test]
    fn directed_paths_as_cores() {
        let p3 = families::directed_path(3);
        check(&p3, &families::directed_path(5), |_| (0..5).collect());
        check(&p3, &families::directed_path(5), |e| vec![e]);
        check(&p3, &families::directed_path(2), |_| (0..2).collect());
        check(&p3, &families::directed_cycle(4), |_| (0..4).collect());
    }

    #[test]
    fn cliques_as_cores() {
        let k3 = families::clique(3);
        check(&k3, &families::clique(4), |_| (0..4).collect());
        check(&k3, &families::grid(2, 3), |_| (0..6).collect());
    }

    #[test]
    fn empty_colors_give_no_instance() {
        let c3 = families::cycle(3);
        let reduced = remove_star_colors(&c3, &colored_target(3, &families::clique(3), |_| vec![]));
        assert!(!reduced.holds());
    }

    #[test]
    fn convenience_core_wrapper() {
        // An even cycle's core is an edge; the reduction then runs on K_2.
        let c6 = families::cycle(6);
        let b = colored_target(2, &families::cycle(4), |_| (0..4).collect());
        let reduced = remove_star_colors_of_core(&c6, &b);
        assert_eq!(reduced.query.universe_size(), 2);
        assert!(reduced.holds());
    }

    #[test]
    fn parameter_is_query_sized() {
        let c5 = families::cycle(5);
        let b = colored_target(5, &families::cycle(15), |_| (0..15).collect());
        let reduced = remove_star_colors(&c5, &b);
        assert_eq!(reduced.query.universe_size(), 5);
        assert!(reduced.database.universe_size() <= 5 * 15);
    }
}
