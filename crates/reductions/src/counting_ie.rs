//! Lemma 6.2 (last step): the pl-Turing reduction
//! `p-#HOM(A*) ≤ᵀ_pl p-#HOM(A)` by inclusion–exclusion.
//!
//! Given a counting instance `(A*, B)`, the reduction queries the oracle for
//! the number of homomorphisms from `A` into the structures `B_S`
//! (`S ⊆ A` non-empty), where `B_S` is the substructure of `A × B₀` induced
//! by `{(a, b) | a ∈ S, b ∈ C_a^B}`.  Writing `N_{⊆S}` for the oracle
//! answers, inclusion–exclusion gives
//! `N_{=A} = Σ_S (−1)^{|A|−|S|} N_{⊆S}` — the number of homomorphisms
//! `h : A → B_A` whose first projection is surjective — and dividing by the
//! number of bijective homomorphisms of `A` (automorphism-like maps) yields
//! the number of homomorphisms from `A*` to `B`.

use cq_structures::ops::{direct_product, product_pair};
use cq_structures::{homomorphisms_iter, Structure};
use std::collections::BTreeSet;

/// Count homomorphisms from `A*` to `B` using only an oracle for counting
/// homomorphisms from `A` (Lemma 6.2).  The `oracle` is called on pairs
/// `(A, B_S)`; all queries have left-hand side exactly `a`, so the oracle's
/// parameter is bounded by the input parameter, as required of a pl-Turing
/// reduction.
///
/// The oracle answers `Some(count)` or `None` when its count exceeds
/// `u64::MAX`.  Inclusion–exclusion **subtracts** oracle answers, so a
/// single overflowed term poisons the whole signed sum: this function then
/// returns `None` rather than a confidently wrong difference (the bug the
/// old saturating arithmetic had).
///
/// Exponential in `|A|` (the number of subsets `S`), which is permitted —
/// the paper's reduction likewise spends `2^{|A|}` oracle calls.
pub fn count_star_via_oracle(
    a: &Structure,
    b: &Structure,
    oracle: &mut dyn FnMut(&Structure, &Structure) -> Option<u64>,
) -> Option<u64> {
    let n = a.universe_size();
    let b0 = b
        .restrict_to(a.vocabulary())
        .expect("database must interpret the query vocabulary");
    let nb = b0.universe_size();
    let product = direct_product(a, &b0).expect("same vocabulary");

    // Allowed pairs (a, b) with b ∈ C_a^B.
    let allowed_for = |elem: usize| -> Vec<usize> {
        match b.vocabulary().id_of(&format!("C_{elem}")) {
            Some(sym) => b.relation(sym).rows().map(|t| t[0] as usize).collect(),
            None => Vec::new(),
        }
    };

    // Σ_S (-1)^{|A| - |S|} · #hom(A, B_S), over non-empty S ⊆ A.  The
    // signed accumulation in i128 is exact for finite terms (each is
    // < 2^64 and there are < 2^64 of them); only an oracle overflow
    // invalidates it.
    let mut signed_total: i128 = 0;
    for mask in 1u64..(1u64 << n) {
        let s: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        let mut keep: BTreeSet<usize> = BTreeSet::new();
        for &elem in &s {
            for img in allowed_for(elem) {
                keep.insert(product_pair(elem, img, nb));
            }
        }
        let count = if keep.is_empty() {
            0
        } else {
            let (b_s, _) = product.induced_substructure(&keep).expect("non-empty");
            oracle(a, &b_s)?
        };
        let sign = if (n - s.len()).is_multiple_of(2) {
            1
        } else {
            -1
        };
        signed_total += sign as i128 * count as i128;
    }
    if signed_total <= 0 {
        return Some(0);
    }

    // Number of bijective homomorphisms from A to A (the divisor `S`).
    let bijective = homomorphisms_iter(a, a)
        .into_iter()
        .filter(|h| {
            let mut seen = BTreeSet::new();
            h.iter().all(|&x| seen.insert(x))
        })
        .count() as i128;
    debug_assert!(bijective >= 1);
    debug_assert_eq!(
        signed_total % bijective,
        0,
        "inclusion–exclusion must divide evenly"
    );
    Some((signed_total / bijective) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::ops::colored_target;
    use cq_structures::{count_homomorphisms_bruteforce, families, star_expansion};

    fn check(a: &Structure, base: &Structure, allowed: impl Fn(usize) -> Vec<usize>) {
        let astar = star_expansion(a);
        let b = colored_target(a.universe_size(), base, allowed);
        let expected = count_homomorphisms_bruteforce(&astar, &b);
        let mut oracle_calls = 0u64;
        let mut oracle = |q: &Structure, db: &Structure| -> Option<u64> {
            oracle_calls += 1;
            Some(count_homomorphisms_bruteforce(q, db))
        };
        let got = count_star_via_oracle(a, &b, &mut oracle).expect("finite oracle");
        assert_eq!(got, expected, "query {a}");
        assert!(oracle_calls <= (1 << a.universe_size()));
    }

    #[test]
    fn counts_colored_path_instances() {
        let p3 = families::path(3);
        check(&p3, &families::path(4), |_| (0..4).collect());
        check(&p3, &families::cycle(5), |e| vec![e, e + 1]);
        check(&p3, &families::clique(3), |_| (0..3).collect());
    }

    #[test]
    fn counts_colored_cycle_instances() {
        let c4 = families::cycle(4);
        check(&c4, &families::cycle(4), |_| (0..4).collect());
        check(&c4, &families::clique(3), |_| (0..3).collect());
        let c3 = families::cycle(3);
        check(&c3, &families::clique(4), |_| (0..4).collect());
        // Unsatisfiable colours give zero.
        check(&c3, &families::clique(4), |_| vec![]);
    }

    #[test]
    fn counts_with_symmetric_queries() {
        // The divisor (number of bijective self-homomorphisms) is non-trivial
        // here: the 4-cycle has 8, the star K_{1,2} has 2.
        let star2 = families::star(2);
        check(&star2, &families::clique(3), |_| (0..3).collect());
        check(&star2, &families::path(4), |e| vec![e, 3 - e]);
    }

    #[test]
    fn an_overflowing_oracle_answer_poisons_the_whole_reduction() {
        // Inclusion–exclusion subtracts oracle answers, so no finite value
        // can be salvaged once one term overflows: the reduction must
        // answer "overflow", and may stop at the first poisoned term.
        let p3 = families::path(3);
        let b = colored_target(3, &families::clique(3), |_| (0..3).collect());
        let mut calls = 0u64;
        let mut oracle = |_: &Structure, _: &Structure| -> Option<u64> {
            calls += 1;
            None
        };
        assert_eq!(count_star_via_oracle(&p3, &b, &mut oracle), None);
        assert_eq!(calls, 1, "short-circuits on the first overflowed term");
    }

    #[test]
    fn directed_queries() {
        let p3 = families::directed_path(3);
        check(&p3, &families::directed_cycle(5), |_| (0..5).collect());
        check(&p3, &families::directed_path(4), |e| vec![e]);
    }
}
