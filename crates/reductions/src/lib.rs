//! # cq-reductions
//!
//! Every parameterized logspace (pl-) reduction of the paper as an
//! executable instance transformation, with blow-up accounting.
//!
//! | paper result | function |
//! |---|---|
//! | Lemma 3.4 (tree-decomposition reduction `p-HOM(A) ≤ p-HOM(R*)`, with the hom-set bijection of Remark 3.5) | [`treedec_reduction::to_tree_star_instance`] |
//! | Lemma 3.7 (minor reduction `p-HOM(M*) ≤ p-HOM(G*)`) | [`minor_reduction::minor_to_host_instance`] |
//! | Lemma 3.8 (Gaifman reduction `p-HOM(G*) ≤ p-HOM(A*)`) | [`gaifman_reduction::gaifman_to_structure_instance`] |
//! | Lemma 3.9 / Corollary 3.10 (`p-HOM(core(A)*) ≤ p-HOM(core(A))`, producing embeddings) | [`star_removal::remove_star_colors`] |
//! | Lemma 3.15 (`p-EMB(A) ≤ p-HOM(A*)` for connected `A`, via the hash family of Lemma 3.14) | [`emb_reduction::embedding_to_hom_star`] |
//! | Theorem 4.7 chain (`p-HOM(P*) ≤ p-HOM(->P) ≤ p-st-PATH ≤ p-HOM(->C)`) | [`chain`] |
//! | Lemma 6.2 (counting Turing reduction `p-#HOM(A*) ≤ᵀ p-#HOM(A)`) | [`counting_ie::count_star_via_oracle`] |
//!
//! The machine-to-homomorphism compilations of Theorem 4.3 and Theorem 5.5
//! live in `cq-machine::compile` (they need the machine substrate).
//!
//! All reductions are tested for answer preservation against the reference
//! solvers, and each returns enough bookkeeping for the blow-up experiment
//! (E7): the parameter of the produced instance depends only on the
//! parameter of the input instance, and the database grows polynomially.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod counting_ie;
pub mod emb_reduction;
pub mod gaifman_reduction;
pub mod minor_reduction;
pub mod star_removal;
pub mod treedec_reduction;

pub use chain::{dirpath_to_st_path, hom_path_star_to_dirpath, st_path_to_dircycle};
pub use counting_ie::count_star_via_oracle;
pub use emb_reduction::embedding_to_hom_star;
pub use gaifman_reduction::gaifman_to_structure_instance;
pub use minor_reduction::minor_to_host_instance;
pub use star_removal::remove_star_colors;
pub use treedec_reduction::to_tree_star_instance;

/// A produced homomorphism instance `(A', B')` together with blow-up data.
#[derive(Debug, Clone)]
pub struct ReducedInstance {
    /// The left-hand (query) structure of the produced instance.
    pub query: cq_structures::Structure,
    /// The right-hand (database) structure of the produced instance.
    pub database: cq_structures::Structure,
    /// `|A'|` — must be effectively bounded in the input parameter.
    pub new_parameter: usize,
    /// `|B'|` (paper size) — must be polynomial in the input size.
    pub database_size: usize,
}

impl ReducedInstance {
    pub(crate) fn new(query: cq_structures::Structure, database: cq_structures::Structure) -> Self {
        let new_parameter = query.paper_size();
        let database_size = database.paper_size();
        ReducedInstance {
            query,
            database,
            new_parameter,
            database_size,
        }
    }

    /// Does the produced instance have a homomorphism?  (Convenience for
    /// tests and experiments; uses the reference backtracking solver.)
    pub fn holds(&self) -> bool {
        cq_structures::homomorphism_exists(&self.query, &self.database)
    }
}
