//! Lemma 3.15: `p-EMB(A) ≤pl p-HOM(A*)` for classes of *connected*
//! structures, via the hash family of Lemma 3.14.
//!
//! The reduction maps `(A, B)` to `(A*, B^)` where `B^` is the disjoint
//! union, over functions `f` in a colouring family `F ⊆ B → A`, of the
//! expansion `B_f` of `B` interpreting `C_a` by `f⁻¹(a)`.  Because the
//! colour classes inside one copy are disjoint, every homomorphism
//! `A* → B_f` is injective, i.e. an embedding of `A` into `B`; conversely,
//! if an embedding exists, Lemma 3.14 supplies `(p, q)` such that `h_{p,q}`
//! is injective on its image and hence some `f = g ∘ h_{p,q}` in the
//! canonical family certifies it.  Connectivity of `A` guarantees a
//! homomorphism into the disjoint union lands inside a single copy.
//!
//! The canonical family `F = {g ∘ h_{p,q}}` has size `|A|^{|A|²}·O(|A|²log|B|)`
//! — fine for a nondeterministic machine that guesses `f`, but enormous for
//! a deterministic reducer.  We therefore expose the construction with a
//! caller-supplied family ([`embedding_to_hom_star_with_family`]) and
//! provide the canonical family only for very small queries
//! ([`canonical_family`], used by the tests); the practical embedding
//! *solver* uses colour coding directly (`cq_solver::colour_coding`).

use crate::ReducedInstance;
use cq_graphs::{gaifman_graph, traversal};
use cq_solver::colour_coding::is_prime;
use cq_structures::{disjoint_union, star_expansion, Element, Structure};

/// A colouring of the database elements by query elements.
pub type Colouring = Vec<Element>;

/// Build the `(A*, B^)` instance from a caller-supplied family of
/// colourings `F` (each of length `|B|`, with values `< |A|`).
pub fn embedding_to_hom_star_with_family(
    a: &Structure,
    b: &Structure,
    family: &[Colouring],
) -> ReducedInstance {
    assert!(
        traversal::is_connected(&gaifman_graph(a)),
        "Lemma 3.15 requires a connected query"
    );
    let query = star_expansion(a);

    // Each copy B_f: expand B with the colours C_a interpreted by f^{-1}(a).
    let mut copies = Vec::with_capacity(family.len().max(1));
    for f in family {
        assert_eq!(f.len(), b.universe_size());
        let colored = cq_structures::ops::colored_target(a.universe_size(), b, |elem| {
            f.iter()
                .enumerate()
                .filter(|(_, &img)| img == elem)
                .map(|(bi, _)| bi)
                .collect()
        });
        copies.push(colored);
    }
    let database = if copies.is_empty() {
        // Empty family: trivially unsatisfiable coloured database.
        cq_structures::ops::colored_target(a.universe_size(), b, |_| Vec::new())
    } else {
        let refs: Vec<&Structure> = copies.iter().collect();
        disjoint_union(&refs).expect("same vocabulary").0
    };
    ReducedInstance::new(query, database)
}

/// The canonical family of Lemma 3.15: all `g ∘ h_{p,q}` with `q < p <
/// |A|²·log₂|B|`, `p` prime, and `g : {0,…,|A|²−1} → A`.
///
/// Exponential in `|A|²` — only usable for very small queries (the tests use
/// `|A| ≤ 3`); the point of providing it is to execute the lemma literally.
pub fn canonical_family(a_size: usize, b_size: usize) -> Vec<Colouring> {
    let k = a_size;
    let k2 = k * k;
    let log_n = (usize::BITS - b_size.max(2).leading_zeros()) as usize;
    let bound = (k2 * log_n).max(3);
    let mut family = Vec::new();
    // Enumerate g : {0..k²-1} -> A as base-k numbers.
    let g_count = k
        .checked_pow(k2 as u32)
        .expect("canonical family too large");
    for p in 2..bound {
        if !is_prime(p) {
            continue;
        }
        for q in 1..p {
            let hash: Vec<usize> = (0..b_size).map(|m| (q * (m + 1) % p) % k2).collect();
            for g_code in 0..g_count {
                let mut g = vec![0usize; k2];
                let mut code = g_code;
                for slot in g.iter_mut() {
                    *slot = code % k;
                    code /= k;
                }
                family.push(hash.iter().map(|&h| g[h]).collect());
            }
        }
    }
    family
}

/// The full Lemma 3.15 reduction with the canonical family (tiny queries
/// only).
pub fn embedding_to_hom_star(a: &Structure, b: &Structure) -> ReducedInstance {
    let family = canonical_family(a.universe_size(), b.universe_size());
    embedding_to_hom_star_with_family(a, b, &family)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{embedding_exists, families};

    #[test]
    fn canonical_family_reduction_on_tiny_queries() {
        // |A| = 2: the canonical family is small enough to enumerate.
        let a = families::path(2);
        for (b, expected) in [
            (families::path(3), true),
            (families::cycle(4), true),
            (
                cq_structures::Structure::new(cq_structures::Vocabulary::graph(), 2).unwrap(),
                false,
            ),
        ] {
            assert_eq!(embedding_exists(&a, &b), expected);
            let reduced = embedding_to_hom_star(&a, &b);
            assert_eq!(reduced.holds(), expected, "target {b}");
        }
    }

    #[test]
    fn supplied_family_soundness() {
        // With an arbitrary family, a homomorphism of the produced instance
        // always yields a genuine embedding (soundness), even if the family
        // is too small to be complete.
        let a = families::path(3);
        let b = families::cycle(6);
        // A family with a single colouring that assigns colours round-robin.
        let family = vec![(0..6).map(|i| i % 3).collect::<Colouring>()];
        let reduced = embedding_to_hom_star_with_family(&a, &b, &family);
        if reduced.holds() {
            assert!(embedding_exists(&a, &b));
        }
        // And with the right colouring the instance is satisfiable.
        let aligned = vec![vec![0, 1, 2, 0, 1, 2]];
        let reduced2 = embedding_to_hom_star_with_family(&a, &b, &aligned);
        assert!(reduced2.holds());
    }

    #[test]
    fn no_embedding_means_no_family_works() {
        // P_4 does not embed into the star K_{1,3}; no colouring family can
        // make the produced instance satisfiable (completeness direction is
        // about existence of a good f; soundness says no f works here).
        let a = families::path(4);
        let b = families::star(3);
        assert!(!embedding_exists(&a, &b));
        let family: Vec<Colouring> = (0..8)
            .map(|s| (0..4).map(|i| (i + s) % 4).collect())
            .collect();
        let reduced = embedding_to_hom_star_with_family(&a, &b, &family);
        assert!(!reduced.holds());
    }

    #[test]
    fn empty_family_is_unsatisfiable() {
        let a = families::path(2);
        let b = families::path(4);
        let reduced = embedding_to_hom_star_with_family(&a, &b, &[]);
        assert!(!reduced.holds());
    }

    #[test]
    #[should_panic]
    fn disconnected_query_rejected() {
        let (a, _) =
            cq_structures::disjoint_union(&[&families::path(2), &families::path(2)]).unwrap();
        let b = families::path(5);
        let _ = embedding_to_hom_star_with_family(&a, &b, &[]);
    }
}
