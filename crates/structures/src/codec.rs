//! The hand-rolled, versioned, length-prefixed binary codec behind the
//! persistent plan store (`cq_core::persist`).
//!
//! The container builds offline — no serde, no crates.io — so persistence is
//! built on two tiny traits, [`Encode`] and [`Decode`], implemented across
//! the workspace for every artifact a [`crate::Structure`]-level plan
//! carries.  Design rules, chosen so that a corrupted byte stream can cost a
//! failed decode but never a panic, a hang, or a silently wrong value:
//!
//! * every integer is a fixed-width **little-endian** word (`u64` for
//!   lengths and counts), every byte sequence is length-prefixed;
//! * decoders **validate while reading**: length prefixes are checked
//!   against the bytes actually remaining before any allocation, enum tags
//!   outside their range are a [`DecodeError::BadTag`], and structural
//!   invariants (tuple arities, element ranges, parent-map acyclicity,
//!   UTF-8) are re-established through the same checked constructors the
//!   rest of the workspace uses;
//! * decoding is **total**: [`Decode::decode`] returns `Result`, and no
//!   implementation in the workspace panics or recurses unboundedly on
//!   untrusted input (recursive formats carry an explicit depth cap).
//!
//! The file-level container (magic, format version, per-record and
//! whole-file [`fnv1a64`] checksums) lives in `cq_core::persist`; this
//! module provides the value codec and the error type both layers share.

use crate::error::StructureError;
use crate::structure::{Structure, Tuple};
use crate::vocabulary::Vocabulary;
use std::collections::BTreeSet;
use std::fmt;

/// Errors produced by [`Decode`] implementations and the plan-store
/// container format.
///
/// Every variant is a *clean* failure: the decoder detected the problem
/// before constructing a value, so callers can treat any error as "this
/// record does not exist" and fall back to recomputing (a cold prepare).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the announced value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The leading magic bytes are not the plan-store magic.
    BadMagic,
    /// The file declares a format version this build does not read.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
        /// The (single) version this build supports.
        supported: u32,
    },
    /// A checksum did not match the bytes it covers.
    BadChecksum {
        /// Which checksum failed (`"file"` or `"record"`).
        what: &'static str,
    },
    /// An enum tag byte outside the valid range for its type.
    BadTag {
        /// The type whose tag was invalid.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length or count prefix that cannot be satisfied by the remaining
    /// input (or exceeds an implementation limit).
    LengthOutOfRange {
        /// What was being decoded.
        what: &'static str,
        /// The offending length.
        len: u64,
    },
    /// A structural invariant of the decoded type failed (arity mismatch,
    /// element out of range, non-canonical ordering, cyclic parent map, …).
    Invalid {
        /// A short description of the violated invariant.
        what: &'static str,
    },
    /// The input was longer than the encoded value.
    TrailingBytes {
        /// Unconsumed bytes after a complete decode.
        count: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, available } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {available} available"
                )
            }
            DecodeError::BadMagic => write!(f, "bad magic bytes (not a plan store)"),
            DecodeError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads version {supported})"
                )
            }
            DecodeError::BadChecksum { what } => write!(f, "{what} checksum mismatch"),
            DecodeError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            DecodeError::LengthOutOfRange { what, len } => {
                write!(f, "length {len} out of range for {what}")
            }
            DecodeError::Invalid { what } => write!(f, "invalid encoding: {what}"),
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A [`DecodeError`] together with the byte offset the [`Reader`] had
/// reached when the decode failed.
///
/// The reader always tracked [`Reader::position`], but plain
/// [`decode_from_slice`] dropped it — so a rejected network frame or plan
/// record was undiagnosable ("bad tag 250", but *where*?).  The offset is
/// the position after the last successful read: for a bad tag or length it
/// points just past the offending bytes; for an EOF it is the end of the
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeErrorAt {
    /// What went wrong.
    pub error: DecodeError,
    /// Reader position (bytes consumed) when the error was produced.
    pub offset: usize,
}

impl fmt::Display for DecodeErrorAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte offset {}", self.error, self.offset)
    }
}

impl std::error::Error for DecodeErrorAt {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<DecodeErrorAt> for DecodeError {
    fn from(e: DecodeErrorAt) -> DecodeError {
        e.error
    }
}

/// A bounds-checked cursor over a byte slice, the input of every
/// [`Decode`] implementation.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The current read position (bytes consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consume one byte.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Consume a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Consume a `u64` that must fit a `usize` and — as a cheap sanity bound
    /// for count prefixes — must not exceed the remaining input length
    /// (every encoded element occupies at least one byte, so a count beyond
    /// `remaining()` is corrupt by construction and is rejected **before**
    /// any allocation).
    pub fn read_count(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let raw = self.read_u64()?;
        let count: usize = raw
            .try_into()
            .map_err(|_| DecodeError::LengthOutOfRange { what, len: raw })?;
        if count > self.remaining() {
            return Err(DecodeError::LengthOutOfRange { what, len: raw });
        }
        Ok(count)
    }
}

/// Serialize a value into a byte stream (appending to `out`).
///
/// Encodings are **deterministic**: the same value always produces the same
/// bytes (all workspace collections are encoded in their canonical sorted /
/// insertion order), so checked-in golden fixtures are stable across runs
/// and platforms.
pub trait Encode {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Deserialize a value from a [`Reader`], validating every invariant the
/// in-memory type maintains by construction.
pub trait Decode: Sized {
    /// Read one value, consuming exactly its encoding.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encode a value into a fresh byte vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decode a value that must span the whole slice (trailing bytes are an
/// error — a length-prefixed container that leaves residue is corrupt).
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    decode_from_slice_at(bytes).map_err(DecodeError::from)
}

/// Like [`decode_from_slice`], but a failure carries the byte offset the
/// reader had reached — the diagnostic a server needs to log (and echo back
/// to the client) when it rejects a frame.
pub fn decode_from_slice_at<T: Decode>(bytes: &[u8]) -> Result<T, DecodeErrorAt> {
    let mut r = Reader::new(bytes);
    let value = match T::decode(&mut r) {
        Ok(v) => v,
        Err(error) => {
            return Err(DecodeErrorAt {
                error,
                offset: r.position(),
            })
        }
    };
    if !r.is_empty() {
        return Err(DecodeErrorAt {
            error: DecodeError::TrailingBytes {
                count: r.remaining(),
            },
            offset: r.position(),
        });
    }
    Ok(value)
}

/// Encode an `Option<&T>` with the same wire format as `Option<T>` — for
/// lazily materialized fields read out of a `OnceLock` without cloning.
pub fn encode_option_ref<T: Encode>(value: Option<&T>, out: &mut Vec<u8>) {
    match value {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            v.encode(out);
        }
    }
}

/// FNV-1a over a byte slice — the checksum of the plan-store container.
/// Deterministic across runs and platforms (unlike `DefaultHasher`, whose
/// algorithm is unspecified).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn invalid(what: &'static str) -> DecodeError {
    DecodeError::Invalid { what }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.read_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.read_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.read_u64()
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = r.read_u64()?;
        raw.try_into().map_err(|_| DecodeError::LengthOutOfRange {
            what: "usize",
            len: raw,
        })
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.read_count("string length")?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| invalid("string is not UTF-8"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.read_count("vector length")?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Sets of universe elements / graph vertices (decomposition bags).  The
/// decoder re-checks the strictly-increasing canonical order, so a
/// hand-mangled record cannot smuggle in duplicates.
impl Encode for BTreeSet<usize> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for &e in self {
            e.encode(out);
        }
    }
}

impl Decode for BTreeSet<usize> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.read_count("set length")?;
        let mut out = BTreeSet::new();
        let mut prev: Option<usize> = None;
        for _ in 0..count {
            let e = usize::decode(r)?;
            if prev.is_some_and(|p| p >= e) {
                return Err(invalid("set elements not strictly increasing"));
            }
            prev = Some(e);
            out.insert(e);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Vocabulary and Structure
// ---------------------------------------------------------------------------

impl Encode for Vocabulary {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for (_, sym) in self.iter() {
            sym.name.encode(out);
            sym.arity.encode(out);
        }
    }
}

impl Decode for Vocabulary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.read_count("vocabulary size")?;
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let name = String::decode(r)?;
            let arity = usize::decode(r)?;
            pairs.push((name, arity));
        }
        // `from_pairs` collapses duplicates, which would silently change the
        // symbol count; a canonical encoding never contains them.
        let vocab =
            Vocabulary::from_pairs(pairs).map_err(|_| invalid("conflicting vocabulary symbols"))?;
        if vocab.len() != count {
            return Err(invalid("duplicate vocabulary symbols"));
        }
        Ok(vocab)
    }
}

impl Encode for Structure {
    fn encode(&self, out: &mut Vec<u8>) {
        self.vocabulary().encode(out);
        self.universe_size().encode(out);
        for id in self.vocabulary().ids() {
            let rel = self.relation(id);
            (rel.len() as u64).encode(out);
            for t in rel.rows() {
                // Arity is fixed by the symbol: no per-tuple length prefix.
                // Elements widen back to usize so the wire format is
                // byte-identical to the pre-interning encoding.
                for &e in t {
                    (e as usize).encode(out);
                }
            }
        }
        self.encode_labels(out);
    }
}

impl Structure {
    fn encode_labels(&self, out: &mut Vec<u8>) {
        let labels: Option<Vec<String>> = self.labels_vec();
        labels.encode(out);
    }

    fn labels_vec(&self) -> Option<Vec<String>> {
        self.label(0)?;
        Some(
            (0..self.universe_size())
                .map(|e| self.label(e).unwrap_or_default().to_string())
                .collect(),
        )
    }
}

impl Decode for Structure {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let vocab = Vocabulary::decode(r)?;
        let universe = usize::decode(r)?;
        if universe == 0 || universe as u64 > u64::from(u32::MAX) {
            return Err(DecodeError::LengthOutOfRange {
                what: "universe size",
                len: universe as u64,
            });
        }
        let mut s =
            Structure::new(vocab.clone(), universe).map_err(|_| invalid("empty universe"))?;
        for id in vocab.ids() {
            let arity = vocab.arity(id);
            let tuple_count = r.read_count("relation tuple count")?;
            // The arity comes from the decoded vocabulary and is untrusted:
            // a single tuple of this arity occupies `arity * 8` bytes, so an
            // arity no remaining input could satisfy is corrupt — reject it
            // *before* sizing any buffer by it.
            if tuple_count > 0
                && arity
                    .checked_mul(8)
                    .is_none_or(|bytes| bytes > r.remaining())
            {
                return Err(DecodeError::LengthOutOfRange {
                    what: "tuple arity",
                    len: arity as u64,
                });
            }
            for _ in 0..tuple_count {
                let mut t: Tuple = Vec::with_capacity(arity);
                for _ in 0..arity {
                    t.push(usize::decode(r)?);
                }
                // `add_tuple` re-validates arity and element range, so a
                // corrupt tuple is a clean error, never an inconsistent
                // structure.
                s.add_tuple(id, t).map_err(|e| match e {
                    StructureError::ElementOutOfRange { .. } => {
                        invalid("tuple element outside the universe")
                    }
                    _ => invalid("malformed tuple"),
                })?;
            }
        }
        let labels = Option::<Vec<String>>::decode(r)?;
        if let Some(labels) = labels {
            if labels.len() != universe {
                return Err(invalid("label count differs from universe size"));
            }
            s = s.with_labels(labels);
        }
        Ok(s)
    }
}

// ---------------------------------------------------------------------------
// Conjunctive queries
// ---------------------------------------------------------------------------

/// Sentinel that introduces the *versioned* query encoding.  The legacy
/// (boolean-only) encoding starts with the variable count of a
/// length-prefixed string list, and [`Reader::read_count`] rejects any count
/// larger than the remaining input — so `u64::MAX` can never open a legacy
/// value and is free to act as a format escape.
const CQ_VERSIONED_MARKER: u64 = u64::MAX;

/// Version of the extended query encoding behind [`CQ_VERSIONED_MARKER`].
/// Version 2 appends the ordered free-variable list; bump on the next layout
/// change.
const CQ_CODEC_VERSION: u8 = 2;

impl Encode for crate::cq::ConjunctiveQuery {
    /// Queries without free variables keep the legacy layout byte for byte
    /// (old decoders keep working, golden fixtures stay stable); queries with
    /// free variables use the marker + version header and append the free
    /// list.
    fn encode(&self, out: &mut Vec<u8>) {
        let versioned = !self.free_variables().is_empty();
        if versioned {
            CQ_VERSIONED_MARKER.encode(out);
            CQ_CODEC_VERSION.encode(out);
        }
        self.variables().to_vec().encode(out);
        (self.atoms().len() as u64).encode(out);
        for atom in self.atoms() {
            atom.relation.encode(out);
            atom.variables.encode(out);
        }
        if versioned {
            self.free_variables().to_vec().encode(out);
        }
    }
}

impl Decode for crate::cq::ConjunctiveQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Peek the leading word: the versioned marker, or the variable count
        // of a legacy value (validated exactly as `read_count` would).
        let first = r.read_u64()?;
        let versioned = first == CQ_VERSIONED_MARKER;
        if versioned {
            let version = r.read_u8()?;
            if version != CQ_CODEC_VERSION {
                return Err(DecodeError::UnsupportedVersion {
                    found: u32::from(version),
                    supported: u32::from(CQ_CODEC_VERSION),
                });
            }
        }
        let variables = if versioned {
            Vec::<String>::decode(r)?
        } else {
            let count: usize = first
                .try_into()
                .map_err(|_| DecodeError::LengthOutOfRange {
                    what: "variable count",
                    len: first,
                })?;
            if count > r.remaining() {
                return Err(DecodeError::LengthOutOfRange {
                    what: "variable count",
                    len: first,
                });
            }
            let mut vars = Vec::with_capacity(count);
            for _ in 0..count {
                vars.push(String::decode(r)?);
            }
            vars
        };
        let atom_count = r.read_count("atom count")?;
        let mut q = crate::cq::ConjunctiveQuery::new();
        for v in &variables {
            q.declare_variable(v.clone());
        }
        for _ in 0..atom_count {
            let relation = String::decode(r)?;
            let vars = Vec::<String>::decode(r)?;
            q.atom(&relation, &vars);
        }
        if q.variables() != variables {
            return Err(invalid("atom variables not declared up front"));
        }
        if versioned {
            let free = Vec::<String>::decode(r)?;
            if free.is_empty() {
                return Err(invalid("versioned query with empty free list"));
            }
            for v in &free {
                // `mark_free` re-establishes the free-list invariants
                // (declared, duplicate-free) through the same checked
                // constructor the rest of the workspace uses.
                q.mark_free(v)
                    .map_err(|_| invalid("free list not a duplicate-free subset of variables"))?;
            }
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = encode_to_vec(value);
        let back: T = decode_from_slice(&bytes).expect("roundtrip decode");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u8);
        roundtrip(&u8::MAX);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&usize::MAX);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&String::from("héllo ∃∧"));
        roundtrip(&String::new());
        roundtrip(&Some(7u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1usize, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&(3usize, String::from("x")));
        roundtrip(&[1usize, 5, 9].into_iter().collect::<BTreeSet<usize>>());
    }

    #[test]
    fn structure_roundtrips() {
        for s in [
            families::star(4),
            families::cycle(5),
            families::directed_path(3),
            families::grid(2, 3),
            crate::star_expansion(&families::path(4)),
            families::clique(4).with_labels((0..4).map(|i| format!("v{i}")).collect()),
        ] {
            roundtrip(&s);
        }
    }

    #[test]
    fn vocabulary_roundtrips() {
        roundtrip(&Vocabulary::graph());
        roundtrip(&Vocabulary::from_pairs([("E", 2), ("C0", 1), ("R", 3)]).unwrap());
        roundtrip(&Vocabulary::new());
    }

    #[test]
    fn conjunctive_query_roundtrips() {
        let mut q = crate::cq::ConjunctiveQuery::new();
        q.declare_variable("x");
        q.atom("E", &["x", "y"]);
        q.atom("E", &["y", "z"]);
        roundtrip(&q);
        roundtrip(&crate::cq::ConjunctiveQuery::new());
    }

    #[test]
    fn conjunctive_query_free_list_roundtrips() {
        let mut q = crate::cq::ConjunctiveQuery::new();
        q.atom("E", &["x", "y"]);
        q.atom("E", &["y", "z"]);
        q.mark_free("z").unwrap();
        q.mark_free("x").unwrap();
        roundtrip(&q);
        // The versioned encoding opens with the marker word.
        let bytes = encode_to_vec(&q);
        assert_eq!(&bytes[..8], &u64::MAX.to_le_bytes());
    }

    #[test]
    fn conjunctive_query_boolean_encoding_is_unchanged() {
        // A query without free variables must keep the legacy layout so old
        // bytes decode and new boolean encodings decode under old readers:
        // leading word is the variable count, not the marker.
        let mut q = crate::cq::ConjunctiveQuery::new();
        q.atom("E", &["x", "y"]);
        let bytes = encode_to_vec(&q);
        assert_eq!(&bytes[..8], &2u64.to_le_bytes());
        let back: crate::cq::ConjunctiveQuery = decode_from_slice(&bytes).unwrap();
        assert!(back.free_variables().is_empty());
    }

    #[test]
    fn conjunctive_query_unknown_codec_version_rejected() {
        let mut q = crate::cq::ConjunctiveQuery::new();
        q.atom("E", &["x", "y"]);
        q.mark_free("x").unwrap();
        let mut bytes = encode_to_vec(&q);
        // Byte 8 is the version byte behind the marker.
        bytes[8] = 99;
        match decode_from_slice::<crate::cq::ConjunctiveQuery>(&bytes) {
            Err(DecodeError::UnsupportedVersion { found: 99, .. }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn conjunctive_query_hostile_free_list_rejected() {
        let mut q = crate::cq::ConjunctiveQuery::new();
        q.atom("E", &["x", "y"]);
        q.mark_free("x").unwrap();
        let base = encode_to_vec(&q);
        // Splice in a free list naming an undeclared variable.
        let mut evil = base[..base.len() - encode_to_vec(&vec!["x".to_string()]).len()].to_vec();
        encode_to_vec(&vec!["w".to_string()])
            .iter()
            .for_each(|b| evil.push(*b));
        match decode_from_slice::<crate::cq::ConjunctiveQuery>(&evil) {
            Err(DecodeError::Invalid { .. }) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
        // And one with a duplicate.
        let mut dup = base[..base.len() - encode_to_vec(&vec!["x".to_string()]).len()].to_vec();
        encode_to_vec(&vec!["x".to_string(), "x".to_string()])
            .iter()
            .for_each(|b| dup.push(*b));
        match decode_from_slice::<crate::cq::ConjunctiveQuery>(&dup) {
            Err(DecodeError::Invalid { .. }) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_a_clean_eof() {
        let bytes = encode_to_vec(&families::cycle(5));
        for len in 0..bytes.len() {
            let err = decode_from_slice::<Structure>(&bytes[..len])
                .expect_err("truncated input must not decode");
            // Any clean DecodeError is acceptable; the point is no panic and
            // no success.
            let _ = err.to_string();
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&families::star(3));
        bytes.push(0);
        assert!(matches!(
            decode_from_slice::<Structure>(&bytes),
            Err(DecodeError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn hostile_lengths_rejected_before_allocation() {
        // A vector claiming u64::MAX elements with 0 bytes of payload.
        let mut bytes = Vec::new();
        u64::MAX.encode(&mut bytes);
        assert!(matches!(
            decode_from_slice::<Vec<u64>>(&bytes),
            Err(DecodeError::LengthOutOfRange { .. })
        ));
        // A string claiming more bytes than remain.
        let mut bytes = Vec::new();
        1000u64.encode(&mut bytes);
        bytes.extend_from_slice(b"short");
        assert!(decode_from_slice::<String>(&bytes).is_err());
    }

    #[test]
    fn invalid_values_rejected() {
        // Tuple element outside the universe.
        let mut bytes = Vec::new();
        Vocabulary::graph().encode(&mut bytes);
        2usize.encode(&mut bytes); // universe
        1u64.encode(&mut bytes); // one tuple in E
        0usize.encode(&mut bytes);
        9usize.encode(&mut bytes); // out of range
        Option::<Vec<String>>::None.encode(&mut bytes);
        assert_eq!(
            decode_from_slice::<Structure>(&bytes),
            Err(DecodeError::Invalid {
                what: "tuple element outside the universe"
            })
        );
        // Zero universe.
        let mut bytes = Vec::new();
        Vocabulary::graph().encode(&mut bytes);
        0usize.encode(&mut bytes);
        assert!(decode_from_slice::<Structure>(&bytes).is_err());
        // Non-canonical set order.
        let mut bytes = Vec::new();
        2u64.encode(&mut bytes);
        5usize.encode(&mut bytes);
        5usize.encode(&mut bytes);
        assert!(decode_from_slice::<BTreeSet<usize>>(&bytes).is_err());
        // Bad bool / Option tags.
        assert!(matches!(
            decode_from_slice::<bool>(&[7]),
            Err(DecodeError::BadTag {
                what: "bool",
                tag: 7
            })
        ));
        assert!(matches!(
            decode_from_slice::<Option<u8>>(&[9]),
            Err(DecodeError::BadTag {
                what: "Option",
                tag: 9
            })
        ));
    }

    #[test]
    fn fnv_checksum_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"plan"), fnv1a64(b"plna"));
    }

    #[test]
    fn structure_encoding_is_deterministic() {
        let s = crate::star_expansion(&families::tree_t(2));
        assert_eq!(encode_to_vec(&s), encode_to_vec(&s.clone()));
    }

    #[test]
    fn decode_errors_carry_the_byte_offset() {
        // A bad bool tag after two good u64s: the offset points past the
        // offending byte (17 = 8 + 8 + 1).
        let mut bytes = Vec::new();
        1u64.encode(&mut bytes);
        2u64.encode(&mut bytes);
        bytes.push(7); // invalid bool tag
        let err = decode_from_slice_at::<(u64, (u64, bool))>(&bytes).unwrap_err();
        assert_eq!(
            err.error,
            DecodeError::BadTag {
                what: "bool",
                tag: 7
            }
        );
        assert_eq!(err.offset, 17);
        assert!(err.to_string().contains("at byte offset 17"));

        // Truncated input: the offset is wherever the reader stalled, never
        // past the end of the slice.
        let full = encode_to_vec(&families::cycle(4));
        for len in 0..full.len() {
            let err = decode_from_slice_at::<Structure>(&full[..len]).unwrap_err();
            assert!(
                err.offset <= len,
                "offset {} beyond input {len}",
                err.offset
            );
        }

        // Trailing bytes: offset is the end of the decoded value.
        let mut bytes = encode_to_vec(&5u64);
        bytes.extend_from_slice(&[0, 0]);
        let err = decode_from_slice_at::<u64>(&bytes).unwrap_err();
        assert_eq!(err.error, DecodeError::TrailingBytes { count: 2 });
        assert_eq!(err.offset, 8);
    }
}
