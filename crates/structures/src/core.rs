//! Cores of relational structures (Section 2.1).
//!
//! A structure `A` is a *core* when every homomorphism from `A` to itself is
//! an embedding.  Every structure maps homomorphically onto a weak
//! substructure that is a core; this substructure is unique up to isomorphism
//! and is called *the core of* `A`.
//!
//! The classification of Theorem 3.1 is stated in terms of the cores of the
//! class `A`: it is the treewidth / pathwidth / tree depth *of the cores*
//! that determines the degree.  This module provides an exact core
//! computation suitable for parameter-sized structures (the left-hand side of
//! a `p-HOM` instance), by repeatedly retracting onto proper induced
//! substructures.

use crate::homomorphism::{find_homomorphism, homomorphism_exists};
use crate::structure::{Element, Structure};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static CORE_COMPUTATIONS: Cell<u64> = const { Cell::new(0) };
}

static GLOBAL_CORE_COMPUTATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of [`core_of`] computations performed on the current thread.
///
/// Core computation is the other exponential per-query cost besides the
/// width DPs; the prepared-query engine must run it at most once per query.
/// This thread-local counter lets tests assert that (thread-locality makes
/// it race-free under the multi-threaded test harness).  Work fanned out to
/// worker threads is invisible here — use
/// [`global_core_computation_count`] or the engine's per-engine aggregation
/// for cross-thread totals.
pub fn core_computation_count() -> u64 {
    CORE_COMPUTATIONS.with(Cell::get)
}

/// Number of [`core_of`] computations performed process-wide, across all
/// threads.  Monotonically non-decreasing; callers measure work by diffing
/// two snapshots.
pub fn global_core_computation_count() -> u64 {
    GLOBAL_CORE_COMPUTATIONS.load(Ordering::Relaxed)
}

fn record_core_computation() {
    CORE_COMPUTATIONS.with(|c| c.set(c.get() + 1));
    GLOBAL_CORE_COMPUTATIONS.fetch_add(1, Ordering::Relaxed);
}

/// The result of a core computation: the core itself plus bookkeeping that
/// tests and the classification engine use.
#[derive(Debug, Clone)]
pub struct CoreComputation {
    /// The core structure (elements renumbered `0..m`).
    pub core: Structure,
    /// For every element of the original structure, the element of the core
    /// it is retracted onto, expressed in *original* element numbering.
    pub retraction: Vec<Element>,
    /// The elements of the original structure that survive into the core, in
    /// increasing order (the `i`-th entry is the original element that became
    /// core element `i`).
    pub survivors: Vec<Element>,
    /// Number of retraction rounds performed.
    pub rounds: usize,
}

impl CoreComputation {
    /// Size of the core's universe.
    pub fn core_size(&self) -> usize {
        self.core.universe_size()
    }
}

/// Is the structure a core, i.e. is every self-homomorphism injective?
///
/// Exhaustive check, exponential in `|A|` — intended for parameter-sized
/// structures.
pub fn is_core(a: &Structure) -> bool {
    // A is a core iff it does not retract onto a proper induced substructure,
    // iff there is no non-injective homomorphism A -> A.  We check the
    // equivalent condition: for every element x there is no homomorphism from
    // A into A - {x}.  (If some self-homomorphism were non-injective its image
    // would miss some element x and restricting the codomain gives such a
    // homomorphism; conversely such a homomorphism is a non-injective
    // self-homomorphism whenever |A| > 1.)
    if a.universe_size() == 1 {
        return true;
    }
    for x in a.universe() {
        let rest: BTreeSet<Element> = a.universe().filter(|&e| e != x).collect();
        let (sub, old_to_new) = a
            .induced_substructure(&rest)
            .expect("non-empty since |A| > 1");
        if let Some(h) = find_homomorphism(a, &sub) {
            // h maps A into A - {x}; composing with the inclusion gives a
            // non-injective self-homomorphism.
            let _ = (h, old_to_new);
            return false;
        }
    }
    true
}

/// Compute the core of a structure by iterated retraction.
///
/// Strategy: repeatedly look for an element `x` such that `A` maps
/// homomorphically into the induced substructure on `A \ {x}`; replace `A` by
/// the *image* of such a homomorphism (an induced substructure, possibly much
/// smaller than `A \ {x}`), and repeat until no element can be dropped.  The
/// final structure is a core and is homomorphically equivalent to the input.
pub fn core_of(a: &Structure) -> CoreComputation {
    record_core_computation();
    let n = a.universe_size();
    // survivors[i] = original element currently representing position i.
    let mut survivors: Vec<Element> = a.universe().collect();
    // retraction in original numbering, built up by composition.
    let mut retraction: Vec<Element> = a.universe().collect();
    let mut current = a.clone();
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        let mut shrunk = false;
        if current.universe_size() > 1 {
            for x in current.universe() {
                let rest: BTreeSet<Element> = current.universe().filter(|&e| e != x).collect();
                let (sub, old_to_new) = current.induced_substructure(&rest).expect("non-empty");
                if let Some(h) = find_homomorphism(&current, &sub) {
                    // Compose the global retraction with h (mapping current
                    // elements to sub elements, then back to original labels).
                    let new_to_old: Vec<Element> = rest.iter().copied().collect();
                    // Update retraction: every original element now goes to
                    // the original label of its (possibly new) image.
                    for r in retraction.iter_mut() {
                        // r is an original element label; find its current
                        // position, apply h, translate back to original label.
                        let cur_pos = survivors
                            .iter()
                            .position(|&s| s == *r)
                            .expect("retraction targets survive");
                        let img_in_sub = h[cur_pos];
                        let img_in_current = new_to_old[img_in_sub];
                        *r = survivors[img_in_current];
                    }
                    // Shrink current to the *image* of h for faster progress.
                    let image: BTreeSet<Element> = h.iter().copied().collect();
                    let image_in_current: BTreeSet<Element> =
                        image.iter().map(|&e| new_to_old[e]).collect();
                    let (smaller, _) = current
                        .induced_substructure(&image_in_current)
                        .expect("image non-empty");
                    survivors = image_in_current.iter().map(|&e| survivors[e]).collect();
                    current = smaller;
                    let _ = old_to_new;
                    shrunk = true;
                    break;
                }
            }
        }
        if !shrunk {
            break;
        }
    }

    debug_assert!(is_core(&current), "core_of must return a core");
    debug_assert!(
        homomorphism_exists(a, &current) && {
            // current is an induced substructure of a on `survivors`, so the
            // inclusion provides the converse homomorphism.
            true
        },
        "core must be homomorphically equivalent to the input"
    );
    debug_assert_eq!(retraction.len(), n);

    CoreComputation {
        core: current,
        retraction,
        survivors,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::homomorphism::{homomorphically_equivalent, homomorphism_exists};
    use crate::ops::star_expansion;

    #[test]
    fn single_vertex_is_core() {
        let one = Structure::new(crate::vocabulary::Vocabulary::graph(), 1).unwrap();
        assert!(is_core(&one));
        assert_eq!(core_of(&one).core_size(), 1);
    }

    #[test]
    fn trees_have_single_edge_core() {
        // Example 2.1: trees with at least two vertices have a single edge as
        // core (universe of size 2).
        for k in [2usize, 3, 5] {
            let t = families::tree_t(if k == 2 { 1 } else { k / 2 });
            let c = core_of(&t);
            assert_eq!(c.core_size(), 2, "tree of height {k}");
            assert!(is_core(&c.core));
        }
        let p6 = families::path(6);
        assert_eq!(core_of(&p6).core_size(), 2);
    }

    #[test]
    fn even_cycles_have_single_edge_core() {
        for k in [4usize, 6, 8] {
            let c = families::cycle(k);
            let cc = core_of(&c);
            assert_eq!(cc.core_size(), 2, "even cycle C_{k}");
        }
    }

    #[test]
    fn odd_cycles_are_cores() {
        for k in [3usize, 5, 7] {
            let c = families::cycle(k);
            assert!(is_core(&c), "odd cycle C_{k} must be a core");
            assert_eq!(core_of(&c).core_size(), k);
        }
    }

    #[test]
    fn directed_paths_are_cores() {
        // Example 2.1: directed paths are cores.
        for k in [2usize, 3, 5] {
            let p = families::directed_path(k);
            assert!(is_core(&p), "->P_{k} must be a core");
            assert_eq!(core_of(&p).core_size(), k);
        }
    }

    #[test]
    fn star_expansions_are_cores() {
        // Example 2.1: structures of the form A* are cores.
        let g = families::grid(2, 3);
        let gs = star_expansion(&g);
        assert!(is_core(&gs));
        let p4 = star_expansion(&families::path(4));
        assert!(is_core(&p4));
    }

    #[test]
    fn cliques_are_cores() {
        for k in 1..=4 {
            assert!(is_core(&families::clique(k)));
        }
    }

    #[test]
    fn core_is_homomorphically_equivalent_to_input() {
        let inputs = vec![
            families::path(5),
            families::cycle(6),
            families::cycle(5),
            families::grid(2, 3),
            families::star(4),
            families::caterpillar(3, 2),
        ];
        for a in inputs {
            let c = core_of(&a);
            assert!(homomorphically_equivalent(&a, &c.core));
            assert!(is_core(&c.core));
        }
    }

    #[test]
    fn retraction_is_a_homomorphism_onto_survivors() {
        let a = families::cycle(6);
        let c = core_of(&a);
        // The retraction maps every original element to a surviving original
        // element, and the induced map is a homomorphism from A to A.
        for &img in &c.retraction {
            assert!(c.survivors.contains(&img));
        }
        assert!(crate::homomorphism::is_homomorphism(&a, &a, &c.retraction));
        // Survivors induce exactly the core.
        assert_eq!(c.survivors.len(), c.core_size());
    }

    #[test]
    fn core_of_core_is_same_size() {
        let a = families::caterpillar(4, 1);
        let c1 = core_of(&a);
        let c2 = core_of(&c1.core);
        assert_eq!(c1.core_size(), c2.core_size());
    }

    #[test]
    fn grid_core_is_single_edge() {
        // Grids are bipartite with at least one edge, so their core is K_2.
        let g = families::grid(3, 3);
        assert_eq!(core_of(&g).core_size(), 2);
    }

    #[test]
    fn odd_cycle_with_pendant_path_retracts_to_cycle() {
        // A triangle with a pendant path attached retracts onto the triangle.
        use crate::builder::StructureBuilder;
        let mut b = StructureBuilder::graph();
        b.edge_named("a", "b");
        b.edge_named("b", "c");
        b.edge_named("c", "a");
        b.edge_named("c", "d");
        b.edge_named("d", "e");
        let s = b.build().unwrap();
        let c = core_of(&s);
        assert_eq!(c.core_size(), 3);
        assert!(homomorphism_exists(&families::cycle(3), &c.core));
    }
}
