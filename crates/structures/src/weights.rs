//! Per-tuple weight side tables for weighted semiring evaluation.
//!
//! A [`TupleWeights`] assigns a `u64` weight to every tuple of a target
//! structure, aligned with the structure's row storage: the weight of the
//! tuple at row `i` of `R^B` lives at index `i` of the symbol's weight
//! vector, and [`crate::StructureIndex::row_of`] recovers that row id from
//! a flat tuple in O(1).  The kernel's weighted semirings (min-cost,
//! max-weight) read weights through this table at evaluation time, so one
//! compiled program serves every weighting of the same database.

use crate::structure::Structure;
use crate::vocabulary::SymbolId;

/// A per-tuple `u64` weight table aligned with a structure's relations.
///
/// Immutable once built; share by reference (or clone — it is a flat pair
/// of nested `Vec`s) alongside the structure it annotates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleWeights {
    /// `per_symbol[sym.index()][row]` is the weight of the tuple at `row`.
    per_symbol: Vec<Vec<u64>>,
}

impl TupleWeights {
    /// Every tuple of `s` gets the same weight `w`.
    pub fn uniform(s: &Structure, w: u64) -> TupleWeights {
        TupleWeights {
            per_symbol: s
                .vocabulary()
                .ids()
                .map(|sym| vec![w; s.relation(sym).len()])
                .collect(),
        }
    }

    /// Weights computed per tuple: `f(sym, row_id, tuple)` for every row of
    /// every relation, in row order.
    pub fn from_fn(
        s: &Structure,
        mut f: impl FnMut(SymbolId, usize, &[u32]) -> u64,
    ) -> TupleWeights {
        TupleWeights {
            per_symbol: s
                .vocabulary()
                .ids()
                .map(|sym| {
                    s.relation(sym)
                        .rows()
                        .enumerate()
                        .map(|(i, row)| f(sym, i, row))
                        .collect()
                })
                .collect(),
        }
    }

    /// The weight of the tuple at `row` of `sym`'s relation.
    ///
    /// # Panics
    /// When `sym`/`row` do not name a tuple of the structure this table was
    /// built for — weight tables are only meaningful next to their
    /// structure.
    #[inline]
    pub fn get(&self, sym: SymbolId, row: u32) -> u64 {
        self.per_symbol[sym.index()][row as usize]
    }

    /// Whether this table is aligned with `s` (same relation count, same
    /// row counts) — the cheap shape check callers run before pairing a
    /// deserialized or externally built table with a database.
    pub fn matches(&self, s: &Structure) -> bool {
        self.per_symbol.len() == s.vocabulary().len()
            && s.vocabulary()
                .ids()
                .all(|sym| self.per_symbol[sym.index()].len() == s.relation(sym).len())
    }

    /// Total weight of all tuples (saturating) — a cheap invariant for
    /// tests and reports.
    pub fn total(&self) -> u64 {
        self.per_symbol
            .iter()
            .flatten()
            .fold(0u64, |a, &w| a.saturating_add(w))
    }

    /// Keep the table aligned with a structure that an
    /// [`crate::delta::AppliedDelta`] was applied to: deletions swap-remove
    /// the weight at the recorded row id (the then-last row's weight takes
    /// over that slot, mirroring the structure's row move), insertions
    /// append `weight_of(sym, row)`.  Run this next to every
    /// [`crate::Structure::apply_applied`] so aggregates never read a stale
    /// or misaligned weight.
    pub fn apply_delta(
        &mut self,
        applied: &crate::delta::AppliedDelta,
        mut weight_of: impl FnMut(SymbolId, &[u32]) -> u64,
    ) {
        for (sym, id, _) in applied.deletions() {
            self.per_symbol[sym.index()].swap_remove(*id as usize);
        }
        for (sym, row) in applied.insertions() {
            self.per_symbol[sym.index()].push(weight_of(*sym, row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::index::StructureIndex;

    #[test]
    fn uniform_and_from_fn_align_with_rows() {
        let s = families::cycle(5);
        let u = TupleWeights::uniform(&s, 7);
        assert!(u.matches(&s));
        let f = TupleWeights::from_fn(&s, |_, i, _| i as u64);
        let index = StructureIndex::new(&s);
        for sym in s.vocabulary().ids() {
            for (i, row) in s.relation(sym).rows().enumerate() {
                assert_eq!(u.get(sym, i as u32), 7);
                assert_eq!(f.get(sym, i as u32), i as u64);
                assert_eq!(index.row_of(sym, row), Some(i as u32));
            }
        }
        assert!(!u.matches(&families::cycle(6)));
    }

    #[test]
    fn row_of_rejects_absent_tuples_and_wrong_arity() {
        let s = families::path(4);
        let index = StructureIndex::new(&s);
        let sym = s.vocabulary().ids().next().unwrap();
        assert_eq!(index.row_of(sym, &[0, 3]), None, "no such edge");
        assert_eq!(index.row_of(sym, &[0]), None, "wrong arity");
    }
}
