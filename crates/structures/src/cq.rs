//! Boolean conjunctive queries and the Chandra–Merlin correspondence.
//!
//! A boolean conjunctive query is a sentence `∃x_1 … ∃x_m (α_1 ∧ … ∧ α_ℓ)`
//! where each `α_i` is an atomic formula `R x_{i_1} … x_{i_r}`.  Chandra and
//! Merlin observed that each such query `φ` corresponds to a relational
//! structure `A_φ` (the *canonical structure*, with the variables as
//! elements and the atoms as tuples) such that `φ` is true on a structure `B`
//! iff there is a homomorphism from `A_φ` to `B` (Section 1 / 2 of the
//! paper).  The problems `EVAL(Φ)` and `HOM(A)` are equivalent through this
//! correspondence, which is what the paper — and this crate — exploits to
//! phrase everything in terms of structures.
//!
//! Queries may additionally mark an ordered subset of their variables as
//! *free* ([`ConjunctiveQuery::mark_free`]).  The answers of such a query on
//! a database `B` are exactly the projections of the homomorphisms
//! `A_φ → B` onto the free coordinates — the setting classified by the
//! answer-counting line of work (Chen–Mengel; Dell–Roth).  A query with an
//! empty free list is the boolean case above.

use crate::error::StructureError;
use crate::structure::Structure;
use crate::vocabulary::Vocabulary;
use std::collections::HashMap;
use std::fmt;

/// An atom `R(x_1, …, x_r)` of a conjunctive query, with variables referred
/// to by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation symbol name.
    pub relation: String,
    /// The variable names, in argument order (repetitions allowed).
    pub variables: Vec<String>,
}

impl Atom {
    /// Create an atom.
    pub fn new(relation: impl Into<String>, variables: Vec<String>) -> Self {
        Atom {
            relation: relation.into(),
            variables,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.variables.join(","))
    }
}

/// A conjunctive query: the body is a conjunction of atoms, every variable
/// not on the free list is existentially quantified, and the free list (empty
/// for the boolean case) fixes the shape and order of answer rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConjunctiveQuery {
    atoms: Vec<Atom>,
    /// Variables in first-occurrence order (also contains variables declared
    /// explicitly without occurring in an atom).
    variables: Vec<String>,
    /// Free variables in the order they were marked; a subset of
    /// `variables`, duplicate-free.  Answer rows are tuples aligned with
    /// this order.
    free: Vec<String>,
}

impl ConjunctiveQuery {
    /// The empty (trivially true) query.
    pub fn new() -> Self {
        ConjunctiveQuery::default()
    }

    /// Declare a variable explicitly (useful for queries with isolated
    /// variables, which correspond to isolated elements of the canonical
    /// structure).
    pub fn declare_variable(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if !self.variables.contains(&name) {
            self.variables.push(name);
        }
        self
    }

    /// Add an atom `relation(vars…)`.
    pub fn atom<S: AsRef<str>>(&mut self, relation: &str, vars: &[S]) -> &mut Self {
        let vars: Vec<String> = vars.iter().map(|v| v.as_ref().to_string()).collect();
        for v in &vars {
            if !self.variables.contains(v) {
                self.variables.push(v.clone());
            }
        }
        self.atoms.push(Atom::new(relation, vars));
        self
    }

    /// The atoms of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The variables of the query, in first-occurrence order.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Number of variables.
    pub fn variable_count(&self) -> usize {
        self.variables.len()
    }

    /// Mark a declared variable as free.  The free list is ordered: answer
    /// rows list images in the order variables were marked.  Fails when the
    /// variable was never declared ([`StructureError::UnknownVariable`]) or
    /// is already free ([`StructureError::DuplicateFreeVariable`]).
    pub fn mark_free(&mut self, name: impl AsRef<str>) -> Result<&mut Self, StructureError> {
        let name = name.as_ref();
        if !self.variables.iter().any(|v| v == name) {
            return Err(StructureError::UnknownVariable(name.to_string()));
        }
        if self.free.iter().any(|v| v == name) {
            return Err(StructureError::DuplicateFreeVariable(name.to_string()));
        }
        self.free.push(name.to_string());
        Ok(self)
    }

    /// The free variables, in the order they were marked.
    pub fn free_variables(&self) -> &[String] {
        &self.free
    }

    /// The positions of the free variables (in marked order) within the
    /// declared variable list — equivalently, the elements of the canonical
    /// structure that answers project onto.
    pub fn free_element_indices(&self) -> Vec<usize> {
        self.free
            .iter()
            .map(|f| {
                self.variables
                    .iter()
                    .position(|v| v == f)
                    .expect("free list is a subset of the declared variables")
            })
            .collect()
    }

    /// The vocabulary used by the query (relation names with the arities they
    /// are used at).  Fails when a relation is used with two different
    /// arities.
    pub fn vocabulary(&self) -> Result<Vocabulary, StructureError> {
        let mut v = Vocabulary::new();
        for a in &self.atoms {
            v.add(a.relation.clone(), a.variables.len())?;
        }
        Ok(v)
    }

    /// The canonical structure `A_φ` of the query (Chandra–Merlin): elements
    /// are the variables, and for every atom `R(x̄)` the tuple of the
    /// corresponding elements is in `R^{A_φ}`.
    ///
    /// The query is true on a structure `B` iff `A_φ` maps homomorphically to
    /// `B` (tested in this module and used pervasively by `cq-core`).
    pub fn canonical_structure(&self) -> Result<Structure, StructureError> {
        if self.variables.is_empty() {
            // The empty query is true everywhere; its canonical structure is
            // a single isolated element over the empty vocabulary, which maps
            // into every structure.
            return Structure::new(self.vocabulary()?, 1);
        }
        let vocab = self.vocabulary()?;
        let index: HashMap<&str, usize> = self
            .variables
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();
        let mut s = Structure::new(vocab.clone(), self.variables.len())?;
        for a in &self.atoms {
            let sym = vocab
                .id_of(&a.relation)
                .expect("vocabulary built from atoms");
            let tuple = a
                .variables
                .iter()
                .map(|v| index[v.as_str()])
                .collect::<Vec<_>>();
            s.add_tuple(sym, tuple)?;
        }
        Ok(s.with_labels(self.variables.clone()))
    }

    /// Reconstruct a conjunctive query from a structure (the inverse of the
    /// Chandra–Merlin correspondence): one variable `x_e` per element, one
    /// atom per tuple.
    pub fn from_structure(a: &Structure) -> Self {
        let mut q = ConjunctiveQuery::new();
        let var_name = |e: usize| match a.label(e) {
            Some(l) => format!("x_{l}"),
            None => format!("x{e}"),
        };
        for e in a.universe() {
            q.declare_variable(var_name(e));
        }
        for (sym, t) in a.all_tuples() {
            let vars: Vec<String> = t.iter().map(|&e| var_name(e as usize)).collect();
            q.atom(a.vocabulary().name(sym), &vars);
        }
        q
    }

    /// Evaluate the boolean query on a database `B` by reduction to the
    /// homomorphism problem (the `EVAL(Φ) ≡ HOM(A)` equivalence of the
    /// introduction).
    pub fn evaluate(&self, db: &Structure) -> Result<bool, StructureError> {
        let a = self.canonical_structure()?;
        Ok(crate::homomorphism::homomorphism_exists(&a, db))
    }
}

impl fmt::Display for ConjunctiveQuery {
    /// Writes the query in the usual logical notation: free variables (if
    /// any) as an answer head, then the existential block, then the body.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.free.is_empty() {
            write!(f, "∃ {} . ", self.variables.join(" "))?;
        } else {
            write!(f, "({}) ← ", self.free.join(","))?;
            let existential: Vec<&str> = self
                .variables
                .iter()
                .filter(|v| !self.free.contains(v))
                .map(String::as_str)
                .collect();
            if !existential.is_empty() {
                write!(f, "∃ {} . ", existential.join(" "))?;
            }
        }
        if self.atoms.is_empty() {
            write!(f, "⊤")?;
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::homomorphism::homomorphism_exists;

    /// The 3-variable chain query ∃xyz E(x,y) ∧ E(y,z).
    fn chain_query() -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::new();
        q.atom("E", &["x", "y"]).atom("E", &["y", "z"]);
        q
    }

    #[test]
    fn canonical_structure_of_chain() {
        let q = chain_query();
        assert_eq!(q.variable_count(), 3);
        let a = q.canonical_structure().unwrap();
        assert_eq!(a.universe_size(), 3);
        assert_eq!(a.relation_named("E").len(), 2);
        // It is isomorphic to the directed path ->P_3.
        let p3 = families::directed_path(3);
        assert!(homomorphism_exists(&a, &p3));
        assert!(homomorphism_exists(&p3, &a));
    }

    #[test]
    fn evaluate_chain_on_directed_structures() {
        let q = chain_query();
        // True on a directed path with 3 vertices, false on a single arc.
        assert!(q.evaluate(&families::directed_path(3)).unwrap());
        assert!(!q.evaluate(&families::directed_path(2)).unwrap());
        // True on a directed cycle of any length ≥ 2 (can walk around).
        assert!(q.evaluate(&families::directed_cycle(2)).unwrap());
    }

    #[test]
    fn repeated_variables_create_loops() {
        let mut q = ConjunctiveQuery::new();
        q.atom("E", &["x", "x"]);
        let a = q.canonical_structure().unwrap();
        assert_eq!(a.universe_size(), 1);
        let e = a.vocabulary().id_of("E").unwrap();
        assert!(a.contains(e, &[0, 0]));
        // Such a query asks for a self-loop in the database.
        assert!(!q.evaluate(&families::directed_path(3)).unwrap());
    }

    #[test]
    fn empty_query_is_trivially_true() {
        let q = ConjunctiveQuery::new();
        assert!(q.evaluate(&families::path(2)).unwrap());
        let a = q.canonical_structure().unwrap();
        assert_eq!(a.universe_size(), 1);
    }

    #[test]
    fn isolated_variable_requires_nothing() {
        let mut q = ConjunctiveQuery::new();
        q.declare_variable("lonely");
        q.atom("E", &["x", "y"]);
        let a = q.canonical_structure().unwrap();
        assert_eq!(a.universe_size(), 3);
        assert!(q.evaluate(&families::directed_path(2)).unwrap());
    }

    #[test]
    fn conflicting_arities_rejected() {
        let mut q = ConjunctiveQuery::new();
        q.atom("R", &["x", "y"]).atom("R", &["x", "y", "z"]);
        assert!(q.vocabulary().is_err());
        assert!(q.canonical_structure().is_err());
    }

    #[test]
    fn from_structure_roundtrip_semantics() {
        // Converting a structure to a query and back preserves evaluation.
        let original = families::cycle(5);
        let q = ConjunctiveQuery::from_structure(&original);
        let back = q.canonical_structure().unwrap();
        for target in [families::cycle(5), families::cycle(3), families::path(4)] {
            assert_eq!(
                homomorphism_exists(&original, &target),
                homomorphism_exists(&back, &target),
            );
        }
    }

    #[test]
    fn triangle_query_on_grid_and_clique() {
        let mut q = ConjunctiveQuery::new();
        q.atom("E", &["x", "y"])
            .atom("E", &["y", "z"])
            .atom("E", &["z", "x"])
            .atom("E", &["y", "x"])
            .atom("E", &["z", "y"])
            .atom("E", &["x", "z"]);
        // Grids are triangle-free and bipartite.
        assert!(!q.evaluate(&families::grid(3, 3)).unwrap());
        assert!(q.evaluate(&families::clique(3)).unwrap());
        assert!(q.evaluate(&families::clique(5)).unwrap());
    }

    #[test]
    fn free_list_is_ordered_and_validated() {
        let mut q = chain_query();
        q.mark_free("z").unwrap();
        q.mark_free("x").unwrap();
        assert_eq!(q.free_variables(), &["z".to_string(), "x".to_string()]);
        // Indices follow the marked order, not the declaration order.
        assert_eq!(q.free_element_indices(), vec![2, 0]);
        assert_eq!(
            q.mark_free("w").unwrap_err(),
            StructureError::UnknownVariable("w".into())
        );
        assert_eq!(
            q.mark_free("z").unwrap_err(),
            StructureError::DuplicateFreeVariable("z".into())
        );
    }

    #[test]
    fn free_list_changes_equality_but_not_canonical_structure() {
        let boolean = chain_query();
        let mut with_free = chain_query();
        with_free.mark_free("x").unwrap();
        assert_ne!(boolean, with_free);
        // The canonical structure ignores quantification: same homomorphism
        // instance either way.
        assert_eq!(
            boolean.canonical_structure().unwrap(),
            with_free.canonical_structure().unwrap()
        );
    }

    #[test]
    fn display_with_free_variables() {
        let mut q = chain_query();
        q.mark_free("x").unwrap();
        q.mark_free("z").unwrap();
        let s = q.to_string();
        assert!(s.contains("(x,z) ←"), "got {s}");
        assert!(s.contains("∃ y ."), "got {s}");
        // Fully free query: no existential block at all.
        let mut all_free = ConjunctiveQuery::new();
        all_free.atom("E", &["x", "y"]);
        all_free.mark_free("x").unwrap();
        all_free.mark_free("y").unwrap();
        let s = all_free.to_string();
        assert!(s.contains("(x,y) ←"), "got {s}");
        assert!(!s.contains('∃'), "got {s}");
    }

    #[test]
    fn display_contains_atoms() {
        let q = chain_query();
        let s = q.to_string();
        assert!(s.contains("E(x,y)"));
        assert!(s.contains('∧'));
        let empty = ConjunctiveQuery::new().to_string();
        assert!(empty.contains('⊤'));
        assert_eq!(Atom::new("R", vec!["a".into()]).to_string(), "R(a)");
    }
}
