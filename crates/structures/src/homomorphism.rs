//! Homomorphisms, partial homomorphisms and embeddings between relational
//! structures — reference (backtracking) implementations.
//!
//! A homomorphism from `A` to `B` is a function `h : A → B` such that for
//! every relation symbol `R` and every tuple `ā ∈ R^A` we have `h(ā) ∈ R^B`
//! (Section 2.1).  An *embedding* is an injective homomorphism.
//!
//! The functions in this module are deliberately simple backtracking searches
//! with light pruning.  They serve two purposes:
//!
//! 1. as the ground truth in tests of the cleverer algorithms of `cq-solver`
//!    (tree-decomposition DP, path DP, tree-depth evaluation, colour coding);
//! 2. as the subroutine used by [`crate::core::core_of`], where the left-hand
//!    structure is parameter-sized and a simple search is entirely adequate.

use crate::structure::{Element, Structure, Tuple};
use crate::vocabulary::SymbolId;
use std::collections::BTreeMap;

/// A partial homomorphism represented as a partial map from elements of the
/// source structure to elements of the target structure.
///
/// The paper (Section 2.1) defines a partial homomorphism from `A` to `B` as
/// the empty map or a homomorphism from a substructure of `A` to `B`; this is
/// exactly a partial function that is a homomorphism on its domain.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct PartialHom {
    assignments: BTreeMap<Element, Element>,
}

impl PartialHom {
    /// The empty partial homomorphism.
    pub fn empty() -> Self {
        PartialHom::default()
    }

    /// Build from an iterator of `(source, target)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Element, Element)>>(pairs: I) -> Self {
        PartialHom {
            assignments: pairs.into_iter().collect(),
        }
    }

    /// Build a total map from a vector indexed by source element.
    pub fn from_total(map: &[Element]) -> Self {
        PartialHom {
            assignments: map.iter().copied().enumerate().collect(),
        }
    }

    /// The image of `a`, if defined.
    pub fn get(&self, a: Element) -> Option<Element> {
        self.assignments.get(&a).copied()
    }

    /// Extend the map (overwrites an existing assignment for `a`).
    pub fn insert(&mut self, a: Element, b: Element) {
        self.assignments.insert(a, b);
    }

    /// Remove the assignment for `a`.
    pub fn remove(&mut self, a: Element) {
        self.assignments.remove(&a);
    }

    /// The domain of the partial map, in increasing order.
    pub fn domain(&self) -> impl Iterator<Item = Element> + '_ {
        self.assignments.keys().copied()
    }

    /// Number of assigned elements.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Iterate over `(source, target)` pairs in increasing source order.
    pub fn pairs(&self) -> impl Iterator<Item = (Element, Element)> + '_ {
        self.assignments.iter().map(|(&a, &b)| (a, b))
    }

    /// Two partial maps are *compatible* when they agree on the intersection
    /// of their domains (used by the reduction of Lemma 3.4, where the target
    /// structure's edge relation relates compatible partial homomorphisms).
    pub fn compatible(&self, other: &PartialHom) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .pairs()
            .all(|(a, b)| large.get(a).map(|b2| b2 == b).unwrap_or(true))
    }

    /// The union of two compatible partial maps; `None` when incompatible.
    pub fn union(&self, other: &PartialHom) -> Option<PartialHom> {
        if !self.compatible(other) {
            return None;
        }
        let mut out = self.clone();
        for (a, b) in other.pairs() {
            out.insert(a, b);
        }
        Some(out)
    }

    /// Restrict the map to the given domain subset.
    pub fn restrict(&self, domain: &[Element]) -> PartialHom {
        PartialHom {
            assignments: self
                .assignments
                .iter()
                .filter(|(a, _)| domain.contains(a))
                .map(|(&a, &b)| (a, b))
                .collect(),
        }
    }

    /// Whether the map is injective on its domain.
    pub fn is_injective(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.assignments.values().all(|&b| seen.insert(b))
    }

    /// Convert into a total map over `0..n` (`None` for unassigned sources).
    pub fn to_vec(&self, n: usize) -> Vec<Option<Element>> {
        let mut v = vec![None; n];
        for (a, b) in self.pairs() {
            if a < n {
                v[a] = Some(b);
            }
        }
        v
    }
}

/// Is `h` (a total map given as a vector over the universe of `a`) a
/// homomorphism from `a` to `b`?
pub fn is_homomorphism(a: &Structure, b: &Structure, h: &[Element]) -> bool {
    if h.len() != a.universe_size() {
        return false;
    }
    if h.iter().any(|&img| img >= b.universe_size()) {
        return false;
    }
    for (sym, t) in a.all_tuples() {
        let Some(target_sym) = b.vocabulary().id_of(a.vocabulary().name(sym)) else {
            // The target does not interpret the symbol at all; a non-empty
            // relation can then never be preserved.
            return false;
        };
        let mapped: Tuple = t.iter().map(|&e| h[e as usize]).collect();
        if !b.contains(target_sym, &mapped) {
            return false;
        }
    }
    true
}

/// Is the partial map `h` a partial homomorphism from `a` to `b`?  Only the
/// tuples of `a` entirely inside the domain of `h` are required to be
/// preserved (this is preservation with respect to the *induced substructure*
/// on the domain).
pub fn is_partial_homomorphism(a: &Structure, b: &Structure, h: &PartialHom) -> bool {
    if h.pairs()
        .any(|(x, y)| x >= a.universe_size() || y >= b.universe_size())
    {
        return false;
    }
    // Hoist the name-based symbol translation once per call instead of
    // recomputing it for every tuple.  The stricter `symbol_map` is not
    // usable here: partial-homomorphism semantics only care about symbols
    // whose tuples lie entirely inside the domain of `h`.
    let translation = name_translation(a, b);
    for (sym, t) in a.all_tuples() {
        let mapped: Option<Tuple> = t.iter().map(|&e| h.get(e as usize)).collect();
        if let Some(mapped) = mapped {
            let Some(target_sym) = translation[sym.index()] else {
                return false;
            };
            if !b.contains(target_sym, &mapped) {
                return false;
            }
        }
    }
    true
}

/// Name-based translation table from `a`'s vocabulary ids to `b`'s (`None`
/// where `b` does not interpret the name) — computed once per call site
/// instead of once per tuple.
fn name_translation(a: &Structure, b: &Structure) -> Vec<Option<SymbolId>> {
    a.vocabulary()
        .ids()
        .map(|id| b.vocabulary().id_of(a.vocabulary().name(id)))
        .collect()
}

/// Symbol translation table from `a`'s vocabulary ids to `b`'s, used by the
/// backtracking search so that name lookups happen once.  Stricter than
/// [`name_translation`]: a missing or arity-mismatched target symbol is an
/// error unless `a` never uses it.
fn symbol_map(a: &Structure, b: &Structure) -> Option<Vec<Option<SymbolId>>> {
    let translation = name_translation(a, b);
    for (id, target) in a.vocabulary().ids().zip(&translation) {
        match target {
            Some(t) if b.vocabulary().arity(*t) == a.vocabulary().arity(id) => {}
            Some(_) => return None,
            None => {
                // Missing symbols are only acceptable when A does not use them.
                if !a.relation(id).is_empty() {
                    return None;
                }
            }
        }
    }
    Some(translation)
}

struct Search<'a> {
    a: &'a Structure,
    b: &'a Structure,
    sym_map: Vec<Option<SymbolId>>,
    /// For each source element, the list of (symbol, tuple index) pairs of
    /// tuples containing that element — used for incremental checking.
    incident: Vec<Vec<(SymbolId, usize)>>,
    injective: bool,
}

impl<'a> Search<'a> {
    fn new(a: &'a Structure, b: &'a Structure, injective: bool) -> Option<Self> {
        let sym_map = symbol_map(a, b)?;
        let mut incident = vec![Vec::new(); a.universe_size()];
        for sym in a.vocabulary().ids() {
            for (idx, t) in a.relation(sym).rows().enumerate() {
                for &e in t {
                    if !incident[e as usize].contains(&(sym, idx)) {
                        incident[e as usize].push((sym, idx));
                    }
                }
            }
        }
        Some(Search {
            a,
            b,
            sym_map,
            incident,
            injective,
        })
    }

    /// Check all tuples incident to `element` that are fully assigned under
    /// `assignment`.
    fn consistent(&self, assignment: &[Option<Element>], element: Element) -> bool {
        for &(sym, idx) in &self.incident[element] {
            let t = self.a.relation(sym).row(idx);
            let mapped: Option<Tuple> = t.iter().map(|&e| assignment[e as usize]).collect();
            if let Some(mapped) = mapped {
                let Some(target) = self.sym_map[sym.index()] else {
                    return false;
                };
                if !self.b.contains(target, &mapped) {
                    return false;
                }
            }
        }
        true
    }

    fn run<F: FnMut(&[Option<Element>]) -> bool>(&self, order: &[Element], visit: &mut F) -> bool {
        let mut assignment: Vec<Option<Element>> = vec![None; self.a.universe_size()];
        let mut used = vec![false; self.b.universe_size()];
        self.recurse(order, 0, &mut assignment, &mut used, visit)
    }

    /// Depth-first assignment in the given variable order.  `visit` is called
    /// with each complete homomorphism (every slot `Some`); returning `true`
    /// from `visit` stops the search (used for existence queries), returning
    /// `false` continues enumeration.
    ///
    /// The assignment is passed by reference, so visitors that only count
    /// (the brute-force counting oracle of the registry) run the entire
    /// enumeration without a single per-assignment allocation; visitors that
    /// keep the map collect it themselves.
    fn recurse<F: FnMut(&[Option<Element>]) -> bool>(
        &self,
        order: &[Element],
        depth: usize,
        assignment: &mut Vec<Option<Element>>,
        used: &mut Vec<bool>,
        visit: &mut F,
    ) -> bool {
        if depth == order.len() {
            return visit(assignment);
        }
        let var = order[depth];
        for candidate in 0..self.b.universe_size() {
            if self.injective && used[candidate] {
                continue;
            }
            assignment[var] = Some(candidate);
            if self.consistent(assignment, var) {
                if self.injective {
                    used[candidate] = true;
                }
                if self.recurse(order, depth + 1, assignment, used, visit) {
                    assignment[var] = None;
                    if self.injective {
                        used[candidate] = false;
                    }
                    return true;
                }
                if self.injective {
                    used[candidate] = false;
                }
            }
            assignment[var] = None;
        }
        false
    }
}

/// A variable order that visits elements in decreasing Gaifman degree — a
/// cheap fail-first heuristic for the backtracking search.
fn default_order(a: &Structure) -> Vec<Element> {
    let adj = a.gaifman_adjacency();
    let mut order: Vec<Element> = a.universe().collect();
    order.sort_by_key(|&e| std::cmp::Reverse(adj[e].len()));
    order
}

fn complete(assignment: &[Option<Element>]) -> Vec<Element> {
    assignment
        .iter()
        .map(|x| x.expect("visit sees only complete assignments"))
        .collect()
}

/// Find some homomorphism from `a` to `b`, as a total map, if one exists.
pub fn find_homomorphism(a: &Structure, b: &Structure) -> Option<Vec<Element>> {
    let search = Search::new(a, b, false)?;
    let order = default_order(a);
    let mut found = None;
    search.run(&order, &mut |h| {
        found = Some(complete(h));
        true
    });
    found
}

/// Does a homomorphism from `a` to `b` exist?
pub fn homomorphism_exists(a: &Structure, b: &Structure) -> bool {
    find_homomorphism(a, b).is_some()
}

/// Find some embedding (injective homomorphism) from `a` to `b`.
pub fn find_embedding(a: &Structure, b: &Structure) -> Option<Vec<Element>> {
    if a.universe_size() > b.universe_size() {
        return None;
    }
    let search = Search::new(a, b, true)?;
    let order = default_order(a);
    let mut found = None;
    search.run(&order, &mut |h| {
        found = Some(complete(h));
        true
    });
    found
}

/// Does an embedding from `a` to `b` exist?
pub fn embedding_exists(a: &Structure, b: &Structure) -> bool {
    find_embedding(a, b).is_some()
}

/// Enumerate *all* homomorphisms from `a` to `b` (collected eagerly).
///
/// Exponential in `|A|`; intended for parameter-sized `a` in tests and in the
/// brute-force counting baseline.
pub fn homomorphisms_iter(a: &Structure, b: &Structure) -> Vec<Vec<Element>> {
    let Some(search) = Search::new(a, b, false) else {
        return Vec::new();
    };
    let order = default_order(a);
    let mut all = Vec::new();
    search.run(&order, &mut |h| {
        all.push(complete(h));
        false
    });
    all
}

/// The distinct projections of all homomorphisms `a → b` onto the element
/// positions `free`, sorted lexicographically ascending and deduplicated —
/// the brute-force *answer set* of a conjunctive query with free variables
/// (via Chandra–Merlin, where `free` are the canonical-structure elements of
/// the free variables in declared order).
///
/// Exponential in `|A|`; this is the differential-oracle baseline that the
/// tree-decomposition answer kernel and the enumeration cursor are checked
/// against.  The sorted order is deliberately the same order the cursor
/// emits, so oracles can compare whole pages positionally.
pub fn answers_bruteforce(a: &Structure, b: &Structure, free: &[usize]) -> Vec<Vec<Element>> {
    let mut seen = std::collections::BTreeSet::new();
    for h in homomorphisms_iter(a, b) {
        seen.insert(free.iter().map(|&i| h[i]).collect::<Vec<Element>>());
    }
    seen.into_iter().collect()
}

/// Count homomorphisms from `a` to `b` by exhaustive enumeration.
pub fn count_homomorphisms_bruteforce(a: &Structure, b: &Structure) -> u64 {
    let Some(search) = Search::new(a, b, false) else {
        return 0;
    };
    let order = default_order(a);
    let mut count = 0u64;
    search.run(&order, &mut |_| {
        count += 1;
        false
    });
    count
}

/// Count embeddings from `a` to `b` by exhaustive enumeration.
pub fn count_embeddings_bruteforce(a: &Structure, b: &Structure) -> u64 {
    if a.universe_size() > b.universe_size() {
        return 0;
    }
    let Some(search) = Search::new(a, b, true) else {
        return 0;
    };
    let order = default_order(a);
    let mut count = 0u64;
    search.run(&order, &mut |_| {
        count += 1;
        false
    });
    count
}

/// Two structures are *homomorphically equivalent* when there are
/// homomorphisms in both directions (Section 2.1).
pub fn homomorphically_equivalent(a: &Structure, b: &Structure) -> bool {
    homomorphism_exists(a, b) && homomorphism_exists(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::vocabulary::Vocabulary;

    fn undirected_path(k: usize) -> Structure {
        families::path(k)
    }

    fn odd_cycle(k: usize) -> Structure {
        families::cycle(k)
    }

    #[test]
    fn partial_hom_basics() {
        let mut h = PartialHom::empty();
        assert!(h.is_empty());
        h.insert(0, 3);
        h.insert(2, 5);
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(0), Some(3));
        assert_eq!(h.get(1), None);
        assert_eq!(h.domain().collect::<Vec<_>>(), vec![0, 2]);
        assert!(h.is_injective());
        h.insert(4, 3);
        assert!(!h.is_injective());
        h.remove(4);
        assert!(h.is_injective());
        assert_eq!(h.to_vec(3), vec![Some(3), None, Some(5)]);
    }

    #[test]
    fn partial_hom_compatibility_and_union() {
        let h1 = PartialHom::from_pairs([(0, 1), (1, 2)]);
        let h2 = PartialHom::from_pairs([(1, 2), (3, 4)]);
        let h3 = PartialHom::from_pairs([(1, 9)]);
        assert!(h1.compatible(&h2));
        assert!(!h1.compatible(&h3));
        let u = h1.union(&h2).unwrap();
        assert_eq!(u.len(), 3);
        assert!(h1.union(&h3).is_none());
        assert_eq!(h1.restrict(&[1]).len(), 1);
        assert_eq!(h1.restrict(&[7]).len(), 0);
    }

    #[test]
    fn path_maps_into_longer_path() {
        // An undirected path with 3 vertices maps homomorphically into an
        // undirected path with 5 vertices (fold onto an edge or slide along).
        let p3 = undirected_path(3);
        let p5 = undirected_path(5);
        assert!(homomorphism_exists(&p3, &p5));
        let h = find_homomorphism(&p3, &p5).unwrap();
        assert!(is_homomorphism(&p3, &p5, &h));
    }

    #[test]
    fn long_path_embeds_only_when_room() {
        let p4 = undirected_path(4);
        let p3 = undirected_path(3);
        assert!(!embedding_exists(&p4, &p3));
        assert!(embedding_exists(&p3, &p4));
        // But a homomorphism p4 -> p3 exists (fold back).
        assert!(homomorphism_exists(&p4, &p3));
    }

    #[test]
    fn odd_cycle_does_not_map_to_edge() {
        // C_3 (triangle) is 3-chromatic: no homomorphism to a single edge
        // (which is K_2).
        let c3 = odd_cycle(3);
        let k2 = undirected_path(2);
        assert!(!homomorphism_exists(&c3, &k2));
        // but even cycles do
        let c4 = odd_cycle(4);
        assert!(homomorphism_exists(&c4, &k2));
    }

    #[test]
    fn odd_cycle_to_shorter_odd_cycle() {
        // C_5 -> C_3 exists (odd girth argument), C_3 -> C_5 does not.
        let c5 = odd_cycle(5);
        let c3 = odd_cycle(3);
        assert!(homomorphism_exists(&c5, &c3));
        assert!(!homomorphism_exists(&c3, &c5));
    }

    #[test]
    fn directed_path_homomorphisms() {
        // ->P_3 maps into ->P_5 but not into ->P_2.
        let p3 = families::directed_path(3);
        let p5 = families::directed_path(5);
        let p2 = families::directed_path(2);
        assert!(homomorphism_exists(&p3, &p5));
        assert!(!homomorphism_exists(&p3, &p2));
    }

    #[test]
    fn counting_matches_hand_computation() {
        // Homomorphisms from a single directed edge into ->P_k: one per arc,
        // i.e. k - 1 of them.
        let edge = families::directed_path(2);
        for k in 2..6 {
            let pk = families::directed_path(k);
            assert_eq!(count_homomorphisms_bruteforce(&edge, &pk), (k - 1) as u64);
        }
        // Homomorphisms from the 1-element empty-edge structure into anything
        // with n elements: n.
        let single = Structure::new(Vocabulary::graph(), 1).unwrap();
        let p4 = families::path(4);
        assert_eq!(count_homomorphisms_bruteforce(&single, &p4), 4);
    }

    #[test]
    fn count_embeddings_of_edge_into_path() {
        // Embeddings of an undirected edge (2 vertices, both arcs) into P_k:
        // each of the k-1 undirected edges in 2 orientations.
        let e = undirected_path(2);
        let p5 = undirected_path(5);
        assert_eq!(count_embeddings_bruteforce(&e, &p5), 8);
    }

    #[test]
    fn enumerate_all_homs() {
        let e = families::directed_path(2);
        let p3 = families::directed_path(3);
        let all = homomorphisms_iter(&e, &p3);
        assert_eq!(all.len(), 2);
        for h in &all {
            assert!(is_homomorphism(&e, &p3, h));
        }
    }

    #[test]
    fn hom_respects_unary_colors() {
        // A* style colours restrict maps: a coloured vertex can only go to a
        // vertex with the same colour.
        let vocab = Vocabulary::from_pairs([("E", 2), ("C0", 1)]).unwrap();
        let e = vocab.id_of("E").unwrap();
        let c0 = vocab.id_of("C0").unwrap();
        let mut a = Structure::new(vocab.clone(), 2).unwrap();
        a.add_tuple(e, vec![0, 1]).unwrap();
        a.add_tuple(c0, vec![0]).unwrap();
        let mut b = Structure::new(vocab, 3).unwrap();
        b.add_tuple(e, vec![0, 1]).unwrap();
        b.add_tuple(e, vec![1, 2]).unwrap();
        b.add_tuple(c0, vec![1]).unwrap();
        // 0 must map to 1 (the only C0 element of B), and then 1 must map to 2.
        let h = find_homomorphism(&a, &b).unwrap();
        assert_eq!(h, vec![1, 2]);
        assert_eq!(count_homomorphisms_bruteforce(&a, &b), 1);
    }

    #[test]
    fn missing_symbol_in_target() {
        let vocab_a = Vocabulary::from_pairs([("E", 2), ("R", 1)]).unwrap();
        let e = vocab_a.id_of("E").unwrap();
        let r = vocab_a.id_of("R").unwrap();
        let mut a = Structure::new(vocab_a, 1).unwrap();
        a.add_tuple(e, vec![0, 0]).unwrap();
        a.add_tuple(r, vec![0]).unwrap();
        // Target interprets only E — no homomorphism because R is non-empty in A.
        let vocab_b = Vocabulary::graph();
        let eb = vocab_b.id_of("E").unwrap();
        let mut b = Structure::new(vocab_b, 1).unwrap();
        b.add_tuple(eb, vec![0, 0]).unwrap();
        assert!(!homomorphism_exists(&a, &b));
        assert_eq!(count_homomorphisms_bruteforce(&a, &b), 0);
    }

    #[test]
    fn homomorphic_equivalence_of_even_cycle_and_edge() {
        // Example 2.1: cycles of even length have a single edge as core, so
        // C_4 and K_2 are homomorphically equivalent.
        let c4 = odd_cycle(4);
        let k2 = undirected_path(2);
        assert!(homomorphically_equivalent(&c4, &k2));
        let c3 = odd_cycle(3);
        assert!(!homomorphically_equivalent(&c3, &k2));
    }

    #[test]
    fn is_homomorphism_rejects_bad_maps() {
        let p3 = undirected_path(3);
        let p2 = undirected_path(2);
        // wrong length
        assert!(!is_homomorphism(&p3, &p2, &[0, 1]));
        // out of range
        assert!(!is_homomorphism(&p3, &p2, &[0, 1, 7]));
        // non-edge-preserving: 0,1 adjacent in p3 but both map to 0
        assert!(!is_homomorphism(&p3, &p2, &[0, 0, 1]));
        // valid fold
        assert!(is_homomorphism(&p3, &p2, &[0, 1, 0]));
    }

    #[test]
    fn is_partial_homomorphism_checks_only_covered_tuples() {
        let p4 = undirected_path(4);
        let p2 = undirected_path(2);
        let h = PartialHom::from_pairs([(0, 0), (1, 1)]);
        assert!(is_partial_homomorphism(&p4, &p2, &h));
        let bad = PartialHom::from_pairs([(0, 0), (1, 0)]);
        assert!(!is_partial_homomorphism(&p4, &p2, &bad));
        // Out-of-range values are rejected.
        let oob = PartialHom::from_pairs([(0, 9)]);
        assert!(!is_partial_homomorphism(&p4, &p2, &oob));
        let empty = PartialHom::empty();
        assert!(is_partial_homomorphism(&p4, &p2, &empty));
    }
}
