//! Tuple-level update batches and their deterministic replay records.
//!
//! Production databases change; rebuilding a [`StructureIndex`] and
//! re-running every DP from scratch for a handful of tuple edits wastes all
//! the state the engine already holds.  A [`DeltaBatch`] names a set of
//! tuple deletions and insertions; applying it to a [`Structure`] (or, with
//! full access-path maintenance, to a [`StructureIndex`] via
//! [`StructureIndex::apply_delta`]) mutates rows **in place** — deletions
//! swap-remove, insertions append — so row ids stay dense and aligned side
//! tables ([`crate::TupleWeights`]) follow the same moves.
//!
//! Batch semantics, fixed once here and relied on everywhere downstream:
//!
//! * all deletions apply first, in batch order, then all insertions in
//!   batch order;
//! * deleting an absent tuple and inserting a present one are **no-ops**
//!   (deltas are set updates, not multiset updates);
//! * the *effective* operations — with their deletion-time row ids — are
//!   returned as an [`AppliedDelta`], which replays byte-identically onto
//!   any structure in the same content state ([`Structure::apply_applied`]).
//!   That replay determinism is what lets the engine mutate its cached copy
//!   and the caller mutate theirs while both keep the same
//!   [`Structure::content_token`].
//!
//! [`StructureIndex`]: crate::StructureIndex
//! [`StructureIndex::apply_delta`]: crate::StructureIndex::apply_delta

use crate::error::StructureError;
use crate::index::fnv_row;
use crate::structure::{fresh_content_token, Structure};
use crate::vocabulary::SymbolId;
use std::collections::HashMap;

/// A batch of tuple insertions and deletions against one structure.
///
/// Build with [`DeltaBatch::delete`] / [`DeltaBatch::insert`]; rows are
/// interned `u32` tuples, like [`crate::Relation::rows`] hands out.  See the
/// module docs for the application semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    deletes: Vec<(SymbolId, Vec<u32>)>,
    inserts: Vec<(SymbolId, Vec<u32>)>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> DeltaBatch {
        DeltaBatch::default()
    }

    /// Queue the deletion of `row` from `sym`'s relation.
    pub fn delete(&mut self, sym: SymbolId, row: Vec<u32>) -> &mut Self {
        self.deletes.push((sym, row));
        self
    }

    /// Queue the insertion of `row` into `sym`'s relation.
    pub fn insert(&mut self, sym: SymbolId, row: Vec<u32>) -> &mut Self {
        self.inserts.push((sym, row));
        self
    }

    /// The queued deletions, in application order.
    pub fn deletions(&self) -> &[(SymbolId, Vec<u32>)] {
        &self.deletes
    }

    /// The queued insertions, in application order.
    pub fn insertions(&self) -> &[(SymbolId, Vec<u32>)] {
        &self.inserts
    }

    /// Number of queued operations (deletions + insertions).
    pub fn len(&self) -> usize {
        self.deletes.len() + self.inserts.len()
    }

    /// `true` when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty()
    }

    /// Check every queued operation against `s`'s vocabulary and universe:
    /// symbols must belong to the vocabulary, rows must have the symbol's
    /// arity, and all elements must be `< universe_size`.  Application
    /// methods run this first, so a batch either applies whole or not at
    /// all.
    pub fn validate(&self, s: &Structure) -> Result<(), StructureError> {
        for (sym, row) in self.deletes.iter().chain(&self.inserts) {
            if sym.index() >= s.vocabulary().len() {
                return Err(StructureError::UnknownSymbol(format!(
                    "symbol #{} outside vocabulary",
                    sym.index()
                )));
            }
            let arity = s.vocabulary().arity(*sym);
            if row.len() != arity {
                return Err(StructureError::ArityMismatch {
                    symbol: s.vocabulary().name(*sym).to_string(),
                    expected: arity,
                    got: row.len(),
                });
            }
            if let Some(&e) = row.iter().find(|&&e| (e as usize) >= s.universe_size()) {
                return Err(StructureError::ElementOutOfRange {
                    element: e as usize,
                    universe: s.universe_size(),
                });
            }
        }
        Ok(())
    }
}

/// The *effective* operations of one applied [`DeltaBatch`]: what actually
/// changed, with deletion-time row ids, plus the content token and index
/// version after application.  Replays deterministically onto any structure
/// or side table in the pre-delta content state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedDelta {
    /// The [`Structure::content_token`] after application.
    pub(crate) token: u64,
    /// The [`crate::StructureIndex::version`] after application (0 when the
    /// delta was applied to a bare structure, outside any index).
    pub(crate) version: u64,
    /// Effective deletions in application order: `(symbol, row id at
    /// deletion time, row)`.  Each deletion swap-removes, so the relation's
    /// then-last row takes over the recorded id.
    pub(crate) deleted: Vec<(SymbolId, u32, Vec<u32>)>,
    /// Effective insertions in application order; each appends at the
    /// then-current row count.
    pub(crate) inserted: Vec<(SymbolId, Vec<u32>)>,
}

impl AppliedDelta {
    /// The content token shared by every structure this delta was applied
    /// or replayed onto.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The index version after application (0 for structure-only applies).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// `true` when nothing effectively changed (every deletion was absent,
    /// every insertion already present).
    pub fn is_noop(&self) -> bool {
        self.deleted.is_empty() && self.inserted.is_empty()
    }

    /// Effective deletions: `(symbol, row id at deletion time, row)`.
    pub fn deletions(&self) -> &[(SymbolId, u32, Vec<u32>)] {
        &self.deleted
    }

    /// Effective insertions: `(symbol, row)`.
    pub fn insertions(&self) -> &[(SymbolId, Vec<u32>)] {
        &self.inserted
    }

    /// The symbols with at least one effective operation, deduplicated,
    /// ascending.
    pub fn touched_symbols(&self) -> Vec<SymbolId> {
        let mut syms: Vec<SymbolId> = self
            .deleted
            .iter()
            .map(|(s, _, _)| *s)
            .chain(self.inserted.iter().map(|(s, _)| *s))
            .collect();
        syms.sort_unstable_by_key(|s| s.index());
        syms.dedup();
        syms
    }
}

/// Transient membership map for one relation during a structure-side apply:
/// FNV row hash → row ids, confirmed against row storage (collision-safe).
struct RowSet {
    map: HashMap<u64, Vec<u32>>,
}

impl RowSet {
    fn build(s: &Structure, sym: SymbolId) -> RowSet {
        let rel = s.relation(sym);
        let mut map: HashMap<u64, Vec<u32>> = HashMap::with_capacity(rel.len());
        for (i, row) in rel.rows().enumerate() {
            map.entry(fnv_row(row)).or_default().push(i as u32);
        }
        RowSet { map }
    }

    fn find(&self, s: &Structure, sym: SymbolId, row: &[u32]) -> Option<u32> {
        self.map
            .get(&fnv_row(row))?
            .iter()
            .copied()
            .find(|&i| s.relation(sym).row(i as usize) == row)
    }

    fn remove(&mut self, hash: u64, id: u32) {
        if let Some(ids) = self.map.get_mut(&hash) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.map.remove(&hash);
            }
        }
    }

    fn reid(&mut self, hash: u64, old: u32, new: u32) {
        if let Some(ids) = self.map.get_mut(&hash) {
            if let Some(slot) = ids.iter_mut().find(|i| **i == old) {
                *slot = new;
            }
        }
    }

    fn add(&mut self, hash: u64, id: u32) {
        self.map.entry(hash).or_default().push(id);
    }
}

impl Structure {
    /// Apply a [`DeltaBatch`] to a bare structure (no index): deletions
    /// first, then insertions, per the batch semantics in the
    /// [module docs](crate::delta).  Mutates rows in place (swap-remove /
    /// append), draws a fresh [`Structure::content_token`], and returns the
    /// effective [`AppliedDelta`].
    ///
    /// This is the reference implementation the oracle tests compare the
    /// index-maintaining [`crate::StructureIndex::apply_delta`] against;
    /// engine-managed databases go through the index path instead and
    /// replay onto caller copies with [`Structure::apply_applied`].
    pub fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<AppliedDelta, StructureError> {
        batch.validate(self)?;
        let mut sets: HashMap<usize, RowSet> = HashMap::new();
        let mut deleted: Vec<(SymbolId, u32, Vec<u32>)> = Vec::new();
        let mut inserted: Vec<(SymbolId, Vec<u32>)> = Vec::new();
        for (sym, row) in batch.deletions() {
            let (sym, row) = (*sym, &row[..]);
            let set = sets
                .entry(sym.index())
                .or_insert_with(|| RowSet::build(self, sym));
            let Some(id) = set.find(self, sym, row) else {
                continue;
            };
            let last = self.relation(sym).len() as u32 - 1;
            set.remove(fnv_row(row), id);
            if id != last {
                let moved_hash = fnv_row(self.relation(sym).row(last as usize));
                set.reid(moved_hash, last, id);
            }
            self.relation_mut(sym).swap_remove_row(id as usize);
            deleted.push((sym, id, row.to_vec()));
        }
        for (sym, row) in batch.insertions() {
            let (sym, row) = (*sym, &row[..]);
            let set = sets
                .entry(sym.index())
                .or_insert_with(|| RowSet::build(self, sym));
            let hash = fnv_row(row);
            if set.find(self, sym, row).is_some() {
                continue;
            }
            let id = self.relation_mut(sym).push_row(row);
            set.add(hash, id);
            inserted.push((sym, row.to_vec()));
        }
        let token = fresh_content_token();
        self.set_content_token(token);
        Ok(AppliedDelta {
            token,
            version: 0,
            deleted,
            inserted,
        })
    }

    /// Replay an [`AppliedDelta`] onto a structure in the pre-delta content
    /// state: the exact swap-removes and appends the original application
    /// performed, ending in byte-identical row storage and the **same**
    /// content token.  This is how a caller-side copy of an engine-managed
    /// database catches up after [`StructureIndex::apply_delta`] ran on the
    /// engine's copy.
    ///
    /// [`StructureIndex::apply_delta`]: crate::StructureIndex::apply_delta
    pub fn apply_applied(&mut self, applied: &AppliedDelta) {
        for (sym, id, row) in &applied.deleted {
            debug_assert_eq!(
                self.relation(*sym).row(*id as usize),
                &row[..],
                "replay target diverged from the recorded pre-delta state"
            );
            self.relation_mut(*sym).swap_remove_row(*id as usize);
        }
        for (sym, row) in &applied.inserted {
            self.relation_mut(*sym).push_row(row);
        }
        self.set_content_token(applied.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::index::StructureIndex;

    fn edge_sym(s: &Structure) -> SymbolId {
        s.vocabulary().id_of("E").unwrap()
    }

    #[test]
    fn batch_validation_rejects_bad_ops() {
        let s = families::cycle(4);
        let e = edge_sym(&s);
        let mut wrong_arity = DeltaBatch::new();
        wrong_arity.insert(e, vec![0]);
        assert!(matches!(
            wrong_arity.validate(&s),
            Err(StructureError::ArityMismatch { .. })
        ));
        let mut out_of_range = DeltaBatch::new();
        out_of_range.delete(e, vec![0, 9]);
        assert!(matches!(
            out_of_range.validate(&s),
            Err(StructureError::ElementOutOfRange { .. })
        ));
        let mut ok = DeltaBatch::new();
        ok.insert(e, vec![0, 2]).delete(e, vec![0, 1]);
        assert_eq!(ok.len(), 2);
        assert!(!ok.is_empty());
        assert!(ok.validate(&s).is_ok());
    }

    #[test]
    fn structure_apply_delta_inserts_and_deletes() {
        let mut s = families::cycle(4);
        let e = edge_sym(&s);
        let before_token = s.content_token();
        let mut batch = DeltaBatch::new();
        batch.delete(e, vec![0, 1]).insert(e, vec![0, 2]);
        let applied = s.apply_delta(&batch).unwrap();
        assert!(!s.contains(e, &[0, 1]));
        assert!(s.contains(e, &[0, 2]));
        assert_ne!(s.content_token(), before_token);
        assert_eq!(s.content_token(), applied.token());
        assert_eq!(applied.deletions().len(), 1);
        assert_eq!(applied.insertions().len(), 1);
        assert_eq!(applied.touched_symbols(), vec![e]);
    }

    #[test]
    fn absent_delete_and_present_insert_are_noops() {
        let mut s = families::cycle(4);
        let e = edge_sym(&s);
        let copy = s.clone();
        let mut batch = DeltaBatch::new();
        batch.delete(e, vec![0, 2]).insert(e, vec![0, 1]);
        let applied = s.apply_delta(&batch).unwrap();
        assert!(applied.is_noop());
        assert_eq!(s, copy);
    }

    #[test]
    fn replay_matches_the_original_application_exactly() {
        let mut engine_side = families::cycle(6);
        let mut caller_side = engine_side.clone();
        let e = edge_sym(&engine_side);
        let mut batch = DeltaBatch::new();
        batch
            .delete(e, vec![0, 1])
            .delete(e, vec![3, 2])
            .insert(e, vec![0, 3])
            .insert(e, vec![5, 2]);
        let applied = engine_side.apply_delta(&batch).unwrap();
        caller_side.apply_applied(&applied);
        assert_eq!(engine_side, caller_side);
        assert_eq!(engine_side.content_token(), caller_side.content_token());
        // Row storage is byte-identical, not just set-equal.
        let le = caller_side.vocabulary().id_of("E").unwrap();
        let a: Vec<&[u32]> = engine_side.relation(e).rows().collect();
        let b: Vec<&[u32]> = caller_side.relation(le).rows().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn structure_and_index_applies_agree() {
        let s = families::cycle(8);
        let e = edge_sym(&s);
        let mut bare = s.clone();
        let mut idx = StructureIndex::new(&s);
        let mut batch = DeltaBatch::new();
        batch
            .delete(e, vec![0, 1])
            .delete(e, vec![4, 5])
            .insert(e, vec![0, 4])
            .insert(e, vec![2, 6])
            .insert(e, vec![0, 1]); // reinsert a tuple deleted in this batch
        let a = bare.apply_delta(&batch).unwrap();
        let b = idx.apply_delta(&batch).unwrap();
        assert_eq!(a.deletions(), b.deletions());
        assert_eq!(a.insertions(), b.insertions());
        assert_eq!(&bare, idx.structure());
        let rows_a: Vec<&[u32]> = bare.relation(e).rows().collect();
        let rows_b: Vec<&[u32]> = idx.structure().relation(e).rows().collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn insert_then_delete_round_trips_content() {
        let mut s = families::path(5);
        let e = edge_sym(&s);
        let original = s.clone();
        let mut ins = DeltaBatch::new();
        ins.insert(e, vec![0, 4]);
        s.apply_delta(&ins).unwrap();
        assert!(s.contains(e, &[0, 4]));
        assert_ne!(s, original);
        let mut del = DeltaBatch::new();
        del.delete(e, vec![0, 4]);
        s.apply_delta(&del).unwrap();
        // Same tuple set (set equality — storage order may differ).
        assert_eq!(s, original);
    }
}
