//! Structure operations: the `A*` expansion, direct products, disjoint
//! unions, and symmetric closures.
//!
//! The `A*` expansion (Section 2.1) is central to the paper: it adds, for
//! every element `a` of `A`, a fresh unary relation `C_a` interpreted by the
//! singleton `{a}`.  Structures of the form `A*` are always cores
//! (Example 2.1), and the degrees of Theorem 3.1 are represented by
//! `p-HOM(P*)` and `p-HOM(T*)`.

use crate::error::StructureError;
use crate::structure::{Element, Structure, Tuple};
use crate::vocabulary::Vocabulary;

/// The name used for the fresh unary relation symbol `C_a` attached to
/// element `a` by [`star_expansion`].
pub fn color_symbol_name(a: Element) -> String {
    format!("C_{a}")
}

/// The `A*` expansion of a structure: for every element `a ∈ A` a fresh unary
/// relation symbol `C_a` interpreted by `{a}` is added.
///
/// The companion operation on the *target* side of a homomorphism instance is
/// performed by the individual reductions (each reduction decides how the
/// colours of the right-hand structure are populated).
pub fn star_expansion(a: &Structure) -> Structure {
    let mut vocab = a.vocabulary().clone();
    for e in a.universe() {
        vocab
            .add(color_symbol_name(e), 1)
            .expect("fresh colour symbols cannot clash");
    }
    let mut out = Structure::new(vocab, a.universe_size()).expect("non-empty by construction");
    for (sym, t) in a.all_tuples() {
        let new_sym = out
            .vocabulary()
            .id_of(a.vocabulary().name(sym))
            .expect("copied symbol");
        out.add_row_unchecked(new_sym, t);
    }
    for e in a.universe() {
        let c = out
            .vocabulary()
            .id_of(&color_symbol_name(e))
            .expect("just added");
        out.add_tuple_unchecked(c, vec![e]);
    }
    out.finalize();
    out
}

/// Build a "coloured target" for an `A*` instance: given a target `b` over
/// the vocabulary of `a` and, for every element `e` of `a`, the set of
/// elements of `b` allowed as images of `e`, produce the expansion of `b`
/// interpreting `C_e` by that set.
///
/// This is the general form used by Lemmas 3.4, 3.7, 3.8 and Theorems 4.3,
/// 5.5 when they construct the right-hand structure of a `p-HOM(R*)`
/// instance.
pub fn colored_target(
    a_universe: usize,
    b: &Structure,
    allowed: impl Fn(Element) -> Vec<Element>,
) -> Structure {
    let mut vocab = b.vocabulary().clone();
    for e in 0..a_universe {
        vocab
            .add(color_symbol_name(e), 1)
            .expect("fresh colour symbols");
    }
    let mut out = Structure::new(vocab, b.universe_size()).expect("non-empty");
    for (sym, t) in b.all_tuples() {
        let new_sym = out
            .vocabulary()
            .id_of(b.vocabulary().name(sym))
            .expect("copied");
        out.add_row_unchecked(new_sym, t);
    }
    for e in 0..a_universe {
        let c = out
            .vocabulary()
            .id_of(&color_symbol_name(e))
            .expect("just added");
        for img in allowed(e) {
            out.add_tuple_unchecked(c, vec![img]);
        }
    }
    out.finalize();
    out
}

/// The direct product `A × B` of two structures over the same vocabulary
/// (Section 3.1): universe `A × B`, and
/// `R^{A×B} = {((a_1,b_1),…) | ā ∈ R^A, b̄ ∈ R^B}`.
///
/// Pair `(a, b)` is encoded as element `a * |B| + b`; use
/// [`product_pair`] / [`product_unpair`] to convert.
pub fn direct_product(a: &Structure, b: &Structure) -> Result<Structure, StructureError> {
    if !a.vocabulary().same_symbols(b.vocabulary()) {
        return Err(StructureError::VocabularyMismatch {
            detail: "direct product requires identical vocabularies".to_string(),
        });
    }
    let nb = b.universe_size();
    let mut out = Structure::new(a.vocabulary().clone(), a.universe_size() * nb)?;
    for sym in a.vocabulary().ids() {
        let b_sym = b.vocabulary().id_of(a.vocabulary().name(sym)).unwrap();
        for ta in a.relation(sym).rows() {
            for tb in b.relation(b_sym).rows() {
                let combined: Tuple = ta
                    .iter()
                    .zip(tb.iter())
                    .map(|(&x, &y)| (x as Element) * nb + y as Element)
                    .collect();
                out.add_tuple_unchecked(sym, combined);
            }
        }
    }
    out.finalize();
    Ok(out)
}

/// Encode a pair `(a, b)` as a product element.
pub fn product_pair(a: Element, b: Element, b_size: usize) -> Element {
    a * b_size + b
}

/// Decode a product element back into `(a, b)`.
pub fn product_unpair(e: Element, b_size: usize) -> (Element, Element) {
    (e / b_size, e % b_size)
}

/// The disjoint union of a non-empty list of structures over the same
/// vocabulary; elements of the `i`-th structure are shifted by the sum of the
/// sizes of the earlier ones.  Returns the structure and the offsets.
pub fn disjoint_union(parts: &[&Structure]) -> Result<(Structure, Vec<usize>), StructureError> {
    let Some(first) = parts.first() else {
        return Err(StructureError::EmptyUniverse);
    };
    let vocab: Vocabulary = first.vocabulary().clone();
    for p in parts {
        if !p.vocabulary().same_symbols(&vocab) {
            return Err(StructureError::VocabularyMismatch {
                detail: "disjoint union requires identical vocabularies".to_string(),
            });
        }
    }
    let total: usize = parts.iter().map(|p| p.universe_size()).sum();
    let mut out = Structure::new(vocab.clone(), total)?;
    let mut offsets = Vec::with_capacity(parts.len());
    let mut offset = 0usize;
    for p in parts {
        offsets.push(offset);
        for (sym, t) in p.all_tuples() {
            let new_sym = vocab.id_of(p.vocabulary().name(sym)).unwrap();
            out.add_tuple_unchecked(new_sym, t.iter().map(|&e| e as Element + offset).collect());
        }
        offset += p.universe_size();
    }
    out.finalize();
    Ok((out, offsets))
}

/// Replace every binary relation of a structure by its symmetric closure
/// (used to pass from a directed graph to its underlying graph, Section 2.1).
/// Non-binary relations are copied unchanged.
pub fn symmetric_closure(a: &Structure) -> Structure {
    let mut out = Structure::new(a.vocabulary().clone(), a.universe_size()).expect("non-empty");
    for (sym, t) in a.all_tuples() {
        out.add_row_unchecked(sym, t);
        if t.len() == 2 && t[0] != t[1] {
            out.add_row_unchecked(sym, &[t[1], t[0]]);
        }
    }
    out.finalize();
    out
}

/// Relabel the elements of a structure through a permutation
/// (`perm[old] = new`): the result is isomorphic to the input with every
/// tuple rewritten through `perm`.
///
/// Panics when `perm` is not a permutation of `0..a.universe_size()`.  Used
/// to present "the same query built with a different vertex ordering" — the
/// prepared-query engine's plan cache must recognize relabelled queries as
/// cache hits.
pub fn relabeled(a: &Structure, perm: &[Element]) -> Structure {
    let n = a.universe_size();
    assert_eq!(perm.len(), n, "permutation length must match the universe");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "perm must be a permutation of 0..{n}");
        seen[p] = true;
    }
    let mut out = Structure::new(a.vocabulary().clone(), n).expect("non-empty");
    for (sym, t) in a.all_tuples() {
        out.add_tuple_unchecked(sym, t.iter().map(|&e| perm[e as usize]).collect());
    }
    out.finalize();
    out
}

/// The graph underlying a directed graph without loops: the symmetric closure
/// of its edge relation (panics when the input has loops, matching the
/// paper's requirement of irreflexivity).
pub fn underlying_graph(digraph: &Structure) -> Structure {
    assert!(digraph.is_digraph(), "underlying_graph expects a digraph");
    let e = digraph.vocabulary().id_of("E").unwrap();
    assert!(
        digraph.relation(e).rows().all(|t| t[0] != t[1]),
        "underlying graph is only defined for loop-free digraphs"
    );
    symmetric_closure(digraph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::homomorphism::{count_homomorphisms_bruteforce, homomorphism_exists};

    #[test]
    fn star_expansion_adds_singleton_colors() {
        let p3 = families::path(3);
        let p3s = star_expansion(&p3);
        assert_eq!(p3s.vocabulary().len(), 1 + 3);
        for e in 0..3 {
            let c = p3s.vocabulary().id_of(&color_symbol_name(e)).unwrap();
            assert_eq!(p3s.relation(c).len(), 1);
            assert!(p3s.contains(c, &[e]));
        }
        // Original edges preserved.
        assert_eq!(p3s.relation_named("E").len(), 4);
    }

    #[test]
    fn star_expansion_is_rigid() {
        // A* admits exactly one homomorphism to itself (the identity), i.e.
        // it is a core (Example 2.1).  In particular hom-count A* -> A* is 1.
        let c4 = families::cycle(4);
        let c4s = star_expansion(&c4);
        assert_eq!(count_homomorphisms_bruteforce(&c4s, &c4s), 1);
        // whereas the uncoloured even cycle has many self-homomorphisms.
        assert!(count_homomorphisms_bruteforce(&c4, &c4) > 1);
    }

    #[test]
    fn colored_target_restricts_homomorphisms() {
        let p3 = families::path(3);
        let p3s = star_expansion(&p3);
        let b = families::path(5);
        // Allow element i of A to map only to element i of B: exactly the
        // identity-like embedding remains.
        let colored = colored_target(3, &b, |e| vec![e]);
        assert_eq!(count_homomorphisms_bruteforce(&p3s, &colored), 1);
        // Allowing everything recovers all homomorphisms of the uncoloured
        // instance.
        let all = colored_target(3, &b, |_| (0..5).collect());
        assert_eq!(
            count_homomorphisms_bruteforce(&p3s, &all),
            count_homomorphisms_bruteforce(&p3, &b)
        );
    }

    #[test]
    fn direct_product_counts() {
        // hom(A, B × C) ≅ hom(A, B) × hom(A, C), so counts multiply.
        let a = families::directed_path(2);
        let b = families::directed_path(3);
        let c = families::directed_path(4);
        let prod = direct_product(&b, &c).unwrap();
        assert_eq!(
            count_homomorphisms_bruteforce(&a, &prod),
            count_homomorphisms_bruteforce(&a, &b) * count_homomorphisms_bruteforce(&a, &c)
        );
    }

    #[test]
    fn direct_product_pairing_roundtrip() {
        let e = product_pair(3, 2, 5);
        assert_eq!(product_unpair(e, 5), (3, 2));
    }

    #[test]
    fn direct_product_requires_same_vocab() {
        let a = families::path(2);
        let b = families::directed_binary_tree(1);
        assert!(direct_product(&a, &b).is_err());
    }

    #[test]
    fn disjoint_union_offsets() {
        let p2 = families::path(2);
        let p3 = families::path(3);
        let (u, offsets) = disjoint_union(&[&p2, &p3]).unwrap();
        assert_eq!(u.universe_size(), 5);
        assert_eq!(offsets, vec![0, 2]);
        // Edge 0-1 of the second part appears shifted to 2-3.
        let e = u.vocabulary().id_of("E").unwrap();
        assert!(u.contains(e, &[2, 3]));
        assert!(!u.contains(e, &[1, 2]));
    }

    #[test]
    fn disjoint_union_empty_and_mismatched() {
        assert!(disjoint_union(&[]).is_err());
        let p2 = families::path(2);
        let b1 = families::directed_binary_tree(1);
        assert!(disjoint_union(&[&p2, &b1]).is_err());
    }

    #[test]
    fn disjoint_union_preserves_homomorphism_into_either_part() {
        let p3 = families::path(3);
        let c3 = families::cycle(3);
        let c4 = families::cycle(4);
        let (u, _) = disjoint_union(&[&c4, &c3]).unwrap();
        // The triangle maps into the union (into its triangle part).
        assert!(homomorphism_exists(&families::cycle(3), &u));
        // And the path maps in as well.
        assert!(homomorphism_exists(&p3, &u));
    }

    #[test]
    fn symmetric_closure_and_underlying_graph() {
        let dp = families::directed_path(4);
        let ug = underlying_graph(&dp);
        assert!(ug.is_graph());
        assert_eq!(ug.relation_named("E").len(), 6);
        // Symmetric closure leaves already-symmetric edge sets unchanged.
        let p4 = families::path(4);
        let closed = symmetric_closure(&p4);
        assert_eq!(closed.universe_size(), p4.universe_size());
        assert_eq!(closed.relation_named("E"), p4.relation_named("E"));
    }

    #[test]
    #[should_panic]
    fn underlying_graph_rejects_loops() {
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut s = Structure::new(vocab, 1).unwrap();
        s.add_tuple(e, vec![0, 0]).unwrap();
        let _ = underlying_graph(&s);
    }
}
