//! Finite relational structures.
//!
//! A τ-structure `A` (Section 2.1 of the paper) consists of a non-empty
//! finite universe together with an interpretation `R^A ⊆ A^{ar(R)}` of every
//! relation symbol `R ∈ τ`.  We identify the universe with `0..n`; callers
//! that need named elements keep their own labelling (see
//! [`crate::builder::StructureBuilder`]).
//!
//! Relations store their tuples *interned*: one flat `Vec<u32>` of row-major
//! element ids instead of a `Vec<Vec<usize>>`.  Universes are therefore capped
//! at `u32::MAX` elements (enforced in [`Structure::new`]), rows never incur a
//! per-tuple heap allocation, and downstream consumers such as
//! [`crate::StructureIndex`] read rows without converting `usize → u32` per
//! element.  The public API hands out rows as `&[u32]` slices via
//! [`Relation::rows`] and [`Relation::row`].

use crate::error::StructureError;
use crate::vocabulary::{SymbolId, Vocabulary};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide allocator for structure content tokens.  Starts at 1 so 0
/// can serve as an "unknown" sentinel in caller-side maps.
static NEXT_CONTENT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Draw a fresh, process-unique content token.
pub(crate) fn fresh_content_token() -> u64 {
    NEXT_CONTENT_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// An element of a structure's universe.
pub type Element = usize;

/// A tuple of elements, the member of a relation.
pub type Tuple = Vec<Element>;

/// The interpretation of one relation symbol: a set of tuples of the symbol's
/// arity, stored row-major in one flat `u32` buffer.  Bulk-built relations
/// are sorted and deduplicated for deterministic iteration; a relation that
/// has been mutated through a [`crate::delta::DeltaBatch`] keeps its rows in
/// *storage* order (append for inserts, swap-remove for deletes) so that row
/// ids stay stable for aligned side tables — the `sorted` flag records which
/// regime the relation is in, and equality compares tuple **sets** either
/// way.
#[derive(Debug, Clone, Eq, Default)]
pub struct Relation {
    arity: usize,
    /// Row-major tuple storage: row `i` occupies `flat[i*arity..(i+1)*arity]`.
    flat: Vec<u32>,
    /// Number of rows.  Kept explicitly because `flat.len() / arity` is
    /// undefined for arity-0 relations (which hold at most the empty tuple).
    len: usize,
    sorted: bool,
}

impl PartialEq for Relation {
    /// Set equality over the stored tuples.  The fast path compares the flat
    /// buffers directly (identical storage order — always the case for two
    /// canonically built relations, and for a relation and its delta-replayed
    /// twin); only order-divergent representations pay a sort.
    fn eq(&self, other: &Relation) -> bool {
        if self.arity != other.arity || self.len != other.len {
            return false;
        }
        if self.flat[..self.len * self.arity] == other.flat[..other.len * other.arity] {
            return true;
        }
        if self.sorted && other.sorted {
            return false; // both canonical: flat inequality is set inequality
        }
        let canonical = |r: &Relation| -> Vec<u32> {
            let mut order: Vec<usize> = (0..r.len).collect();
            order.sort_unstable_by(|&i, &j| r.raw_row(i).cmp(r.raw_row(j)));
            let mut packed = Vec::with_capacity(r.len * r.arity);
            for i in order {
                packed.extend_from_slice(r.raw_row(i));
            }
            packed
        };
        canonical(self) == canonical(other)
    }
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            flat: Vec::new(),
            len: 0,
            sorted: true,
        }
    }

    /// The arity of this relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn normalize(&mut self) {
        if self.sorted {
            return;
        }
        if self.arity == 0 {
            // A 0-ary relation holds at most the empty tuple.
            self.len = self.len.min(1);
        } else {
            let mut order: Vec<usize> = (0..self.len).collect();
            order.sort_unstable_by(|&i, &j| self.raw_row(i).cmp(self.raw_row(j)));
            order.dedup_by(|&mut i, &mut j| self.raw_row(i) == self.raw_row(j));
            let mut packed = Vec::with_capacity(order.len() * self.arity);
            for i in order {
                packed.extend_from_slice(self.raw_row(i));
            }
            self.len = packed.len() / self.arity;
            self.flat = packed;
        }
        self.sorted = true;
    }

    fn raw_row(&self, i: usize) -> &[u32] {
        &self.flat[i * self.arity..(i + 1) * self.arity]
    }

    /// Insert a tuple; caller guarantees arity and element range.
    fn insert(&mut self, t: &[Element]) {
        debug_assert_eq!(t.len(), self.arity);
        self.flat.extend(t.iter().map(|&e| e as u32));
        self.len += 1;
        self.sorted = false;
    }

    /// Insert an already-interned row; caller guarantees arity and range.
    fn insert_row(&mut self, row: &[u32]) {
        debug_assert_eq!(row.len(), self.arity);
        self.flat.extend_from_slice(row);
        self.len += 1;
        self.sorted = false;
    }

    /// Append an interned row at row id `len` *without* re-sorting — the
    /// delta insert path.  The caller guarantees arity, element range, and
    /// non-membership; the relation leaves the canonical (sorted) regime.
    pub(crate) fn push_row(&mut self, row: &[u32]) -> u32 {
        debug_assert_eq!(row.len(), self.arity);
        let id = self.len as u32;
        self.flat.extend_from_slice(row);
        self.len += 1;
        self.sorted = false;
        id
    }

    /// Remove row `i` by swapping the last row into its place (O(arity)).
    /// Returns `true` when a row actually moved, i.e. `i` was not last.
    /// The relation leaves the canonical (sorted) regime.
    pub(crate) fn swap_remove_row(&mut self, i: usize) -> bool {
        assert!(i < self.len, "row index out of range");
        let last = self.len - 1;
        let moved = i != last;
        if moved && self.arity > 0 {
            let (head, tail) = self.flat.split_at_mut(last * self.arity);
            head[i * self.arity..(i + 1) * self.arity].copy_from_slice(&tail[..self.arity]);
        }
        self.flat.truncate(last * self.arity);
        self.len = last;
        self.sorted = false;
        moved
    }

    /// Whether the relation is in the canonical (sorted, deduplicated)
    /// regime.  Delta-mutated relations report `false`; reads then fall back
    /// to linear scans for membership.
    pub fn is_canonical(&self) -> bool {
        self.sorted
    }

    /// Iterate over the rows (tuples) of the relation, in storage order
    /// (sorted order for canonical relations).
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[u32]> + Clone {
        (0..self.len).map(move |i| self.raw_row(i))
    }

    /// The `i`-th row, in storage order.
    pub fn row(&self, i: usize) -> &[u32] {
        assert!(i < self.len, "row index out of range");
        self.raw_row(i)
    }

    /// Membership test for a tuple of universe elements.
    pub fn contains(&self, t: &[Element]) -> bool {
        if t.len() != self.arity {
            return false;
        }
        if !self.sorted {
            return (0..self.len).any(|i| {
                self.raw_row(i)
                    .iter()
                    .map(|&e| e as usize)
                    .eq(t.iter().copied())
            });
        }
        self.binary_search_by(|row| row.iter().map(|&e| e as usize).cmp(t.iter().copied()))
    }

    /// Membership test for an already-interned row.
    pub fn contains_row(&self, row: &[u32]) -> bool {
        if row.len() != self.arity {
            return false;
        }
        if !self.sorted {
            return (0..self.len).any(|i| self.raw_row(i) == row);
        }
        self.binary_search_by(|probe| probe.cmp(row))
    }

    fn binary_search_by<'a, F>(&'a self, mut cmp: F) -> bool
    where
        F: FnMut(&'a [u32]) -> std::cmp::Ordering,
    {
        if self.arity == 0 {
            return self.len > 0;
        }
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match cmp(self.raw_row(mid)) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Approximate heap usage of the relation's tuple storage, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.flat.capacity() * std::mem::size_of::<u32>()
    }
}

/// A finite relational structure over a [`Vocabulary`].
///
/// Invariants maintained by construction:
/// * the universe is non-empty (`universe_size >= 1`) and fits the `u32`
///   element interning (`universe_size <= u32::MAX`);
/// * every stored tuple has the arity of its symbol and all components are
///   `< universe_size`;
/// * relation tuple lists are sorted and deduplicated when bulk-built;
///   delta-mutated relations keep storage order (see [`Relation`]);
/// * the `token` is process-unique per *content state*: every mutation draws
///   a fresh token, and two structures share a token only when one is a
///   clone or deterministic delta-replay of the other (identical content).
#[derive(Debug, Clone, Eq)]
pub struct Structure {
    vocab: Vocabulary,
    universe_size: usize,
    relations: Vec<Relation>,
    /// Optional element labels, used only for display/debugging.
    labels: Option<Vec<String>>,
    /// Content identity token — see [`Structure::content_token`].
    token: u64,
}

impl PartialEq for Structure {
    /// Content equality: vocabulary, universe, relations (as tuple sets) and
    /// labels.  The identity `token` is deliberately excluded — it tracks
    /// *state generations*, not content, and two independently built equal
    /// structures carry different tokens.
    fn eq(&self, other: &Structure) -> bool {
        self.vocab == other.vocab
            && self.universe_size == other.universe_size
            && self.relations == other.relations
            && self.labels == other.labels
    }
}

impl Structure {
    /// Create a structure with the given vocabulary and universe size and all
    /// relations empty.
    pub fn new(vocab: Vocabulary, universe_size: usize) -> Result<Self, StructureError> {
        if universe_size == 0 {
            return Err(StructureError::EmptyUniverse);
        }
        if universe_size > u32::MAX as usize {
            return Err(StructureError::UniverseTooLarge {
                universe: universe_size,
            });
        }
        let relations = vocab
            .ids()
            .map(|id| Relation::empty(vocab.arity(id)))
            .collect();
        Ok(Structure {
            vocab,
            universe_size,
            relations,
            labels: None,
            token: fresh_content_token(),
        })
    }

    /// Attach display labels to elements (must have length `universe_size`).
    pub fn with_labels(mut self, labels: Vec<String>) -> Self {
        assert_eq!(labels.len(), self.universe_size);
        self.labels = Some(labels);
        self.token = fresh_content_token();
        self
    }

    /// The structure's content identity token.
    ///
    /// Process-unique per content state: every mutation (including
    /// [`Structure::apply_delta`]) replaces it with a fresh value, and the
    /// only way two live structures share a token is cloning or replaying
    /// the same [`crate::delta::AppliedDelta`] — both of which guarantee
    /// identical content.  Caches use it for O(1) repeat lookups: a token
    /// hit implies content equality, a miss proves nothing.
    pub fn content_token(&self) -> u64 {
        self.token
    }

    pub(crate) fn set_content_token(&mut self, token: u64) {
        self.token = token;
    }

    pub(crate) fn relation_mut(&mut self, sym: SymbolId) -> &mut Relation {
        &mut self.relations[sym.index()]
    }

    /// The label of an element, if labels were attached.
    pub fn label(&self, e: Element) -> Option<&str> {
        self.labels.as_ref().map(|l| l[e].as_str())
    }

    /// The vocabulary of the structure.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Size of the universe `|A|`.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Iterator over the universe `0..n`.
    pub fn universe(&self) -> impl Iterator<Item = Element> {
        0..self.universe_size
    }

    /// Insert a tuple into the interpretation of `sym`.
    ///
    /// Prefer [`crate::builder::StructureBuilder`] for bulk construction; this
    /// method re-normalizes the relation after every insertion; it is kept
    /// for incremental edits in tests.
    pub fn add_tuple(&mut self, sym: SymbolId, tuple: Tuple) -> Result<(), StructureError> {
        let arity = self.vocab.arity(sym);
        if tuple.len() != arity {
            return Err(StructureError::ArityMismatch {
                symbol: self.vocab.name(sym).to_string(),
                expected: arity,
                got: tuple.len(),
            });
        }
        if let Some(&e) = tuple.iter().find(|&&e| e >= self.universe_size) {
            return Err(StructureError::ElementOutOfRange {
                element: e,
                universe: self.universe_size,
            });
        }
        self.relations[sym.index()].insert(&tuple);
        self.relations[sym.index()].normalize();
        self.token = fresh_content_token();
        Ok(())
    }

    pub(crate) fn add_tuple_unchecked(&mut self, sym: SymbolId, tuple: Tuple) {
        self.relations[sym.index()].insert(&tuple);
    }

    pub(crate) fn add_row_unchecked(&mut self, sym: SymbolId, row: &[u32]) {
        self.relations[sym.index()].insert_row(row);
    }

    pub(crate) fn finalize(&mut self) {
        for r in &mut self.relations {
            r.normalize();
        }
        self.token = fresh_content_token();
    }

    /// The interpretation of a symbol.
    pub fn relation(&self, sym: SymbolId) -> &Relation {
        &self.relations[sym.index()]
    }

    /// The interpretation of a symbol looked up by name (panics when absent —
    /// use [`Vocabulary::id_of`] for fallible lookup).
    pub fn relation_named(&self, name: &str) -> &Relation {
        let id = self
            .vocab
            .id_of(name)
            .unwrap_or_else(|| panic!("unknown relation symbol {name}"));
        self.relation(id)
    }

    /// Membership test `t ∈ R^A`.
    pub fn contains(&self, sym: SymbolId, t: &[Element]) -> bool {
        self.relations[sym.index()].contains(t)
    }

    /// Total number of tuples over all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// The paper's size measure
    /// `|A| := |τ| + |A| + Σ_{R∈τ} |R^A| · ar(R)` (Section 2.3).
    pub fn paper_size(&self) -> usize {
        self.vocab.len()
            + self.universe_size
            + self
                .relations
                .iter()
                .map(|r| r.len() * r.arity())
                .sum::<usize>()
    }

    /// Approximate heap usage of the structure's tuple storage, in bytes
    /// (flat relation buffers only; vocabulary and labels are excluded).
    pub fn heap_bytes(&self) -> usize {
        self.relations.iter().map(|r| r.heap_bytes()).sum()
    }

    /// Iterate over `(symbol, row)` pairs of all relations.
    pub fn all_tuples(&self) -> impl Iterator<Item = (SymbolId, &[u32])> {
        self.vocab
            .ids()
            .flat_map(move |id| self.relations[id.index()].rows().map(move |t| (id, t)))
    }

    /// The edge set of the Gaifman graph of the structure: all unordered
    /// pairs `{a, a'}` of *distinct* elements that occur together in some
    /// tuple of some relation (Section 2.2).
    pub fn gaifman_edges(&self) -> BTreeSet<(Element, Element)> {
        let mut edges = BTreeSet::new();
        for (_, t) in self.all_tuples() {
            for i in 0..t.len() {
                for j in (i + 1)..t.len() {
                    let (a, b) = (t[i] as Element, t[j] as Element);
                    if a != b {
                        edges.insert((a.min(b), a.max(b)));
                    }
                }
            }
        }
        edges
    }

    /// The neighbourhood lists of the Gaifman graph, indexed by element.
    pub fn gaifman_adjacency(&self) -> Vec<Vec<Element>> {
        let mut adj = vec![BTreeSet::new(); self.universe_size];
        for (a, b) in self.gaifman_edges() {
            adj[a].insert(b);
            adj[b].insert(a);
        }
        adj.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    /// The substructure `⟨X⟩_A` induced by a non-empty subset `X` of the
    /// universe, together with the map from old elements to new elements.
    ///
    /// Elements of the result are renumbered `0..|X|` in increasing order of
    /// the original elements.
    pub fn induced_substructure(
        &self,
        subset: &BTreeSet<Element>,
    ) -> Result<(Structure, Vec<Option<Element>>), StructureError> {
        if subset.is_empty() {
            return Err(StructureError::EmptyUniverse);
        }
        let mut old_to_new: Vec<Option<Element>> = vec![None; self.universe_size];
        for (new, &old) in subset.iter().enumerate() {
            if old >= self.universe_size {
                return Err(StructureError::ElementOutOfRange {
                    element: old,
                    universe: self.universe_size,
                });
            }
            old_to_new[old] = Some(new);
        }
        let mut out = Structure::new(self.vocab.clone(), subset.len())?;
        for (sym, t) in self.all_tuples() {
            if let Some(mapped) = t
                .iter()
                .map(|&e| old_to_new[e as usize])
                .collect::<Option<Vec<Element>>>()
            {
                out.add_tuple_unchecked(sym, mapped);
            }
        }
        out.finalize();
        if let Some(labels) = &self.labels {
            let new_labels = subset.iter().map(|&old| labels[old].clone()).collect();
            out = out.with_labels(new_labels);
        }
        Ok((out, old_to_new))
    }

    /// A *restriction* of the structure: forget the interpretations of all
    /// symbols not present in `keep` (Section 2.1).
    pub fn restrict_to(&self, keep: &Vocabulary) -> Result<Structure, StructureError> {
        if !keep.subset_of(&self.vocab) {
            return Err(StructureError::VocabularyMismatch {
                detail: "restriction vocabulary is not a subset".to_string(),
            });
        }
        let mut out = Structure::new(keep.clone(), self.universe_size)?;
        for id in keep.ids() {
            let own = self.vocab.id_of(keep.name(id)).expect("subset checked");
            for t in self.relation(own).rows() {
                out.add_row_unchecked(id, t);
            }
        }
        out.finalize();
        Ok(out)
    }

    /// An *expansion* of the structure: extend the vocabulary with the
    /// symbols of `extra` (all interpreted as empty relations).  Use
    /// [`Structure::add_tuple`] afterwards to populate them.
    pub fn expand_vocabulary(&self, extra: &Vocabulary) -> Result<Structure, StructureError> {
        let vocab = self.vocab.union(extra)?;
        let mut out = Structure::new(vocab, self.universe_size)?;
        for (sym, t) in self.all_tuples() {
            let new_sym = out.vocab.id_of(self.vocab.name(sym)).expect("union");
            out.add_row_unchecked(new_sym, t);
        }
        out.finalize();
        out.labels = self.labels.clone();
        Ok(out)
    }

    /// Whether the structure is a *directed graph*: vocabulary `{E}` with `E`
    /// binary.
    pub fn is_digraph(&self) -> bool {
        self.vocab.len() == 1
            && self
                .vocab
                .id_of("E")
                .map(|id| self.vocab.arity(id) == 2)
                .unwrap_or(false)
    }

    /// Whether the structure is a *graph* in the paper's sense: a digraph
    /// whose edge relation is irreflexive and symmetric.
    pub fn is_graph(&self) -> bool {
        if !self.is_digraph() {
            return false;
        }
        let e = self.vocab.id_of("E").unwrap();
        let rel = self.relation(e);
        rel.rows().all(|t| {
            let (a, b) = (t[0], t[1]);
            a != b && rel.contains_row(&[b, a])
        })
    }

    /// Check two structures for equality of interpretation under an explicit
    /// element bijection `perm` (maps self-elements to other-elements).  Used
    /// by isomorphism tests.
    pub fn equal_under(&self, other: &Structure, perm: &[Element]) -> bool {
        if self.universe_size != other.universe_size
            || !self.vocab.same_symbols(&other.vocab)
            || perm.len() != self.universe_size
        {
            return false;
        }
        for id in self.vocab.ids() {
            let other_id = other.vocab.id_of(self.vocab.name(id)).unwrap();
            let rel = self.relation(id);
            let other_rel = other.relation(other_id);
            if rel.len() != other_rel.len() {
                return false;
            }
            for t in rel.rows() {
                let mapped: Tuple = t.iter().map(|&e| perm[e as usize]).collect();
                if !other_rel.contains(&mapped) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "structure over {} with {} elements:",
            self.vocab, self.universe_size
        )?;
        for id in self.vocab.ids() {
            write!(f, "  {} = {{", self.vocab.name(id))?;
            for (i, t) in self.relation(id).rows().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "(")?;
                for (j, &e) in t.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    match self.label(e as Element) {
                        Some(l) => write!(f, "{l}")?,
                        None => write!(f, "{e}")?,
                    }
                }
                write!(f, ")")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Structure {
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut s = Structure::new(vocab, 3).unwrap();
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            s.add_tuple(e, vec![a, b]).unwrap();
            s.add_tuple(e, vec![b, a]).unwrap();
        }
        s
    }

    #[test]
    fn empty_universe_rejected() {
        assert_eq!(
            Structure::new(Vocabulary::graph(), 0).unwrap_err(),
            StructureError::EmptyUniverse
        );
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn oversized_universe_rejected() {
        let too_big = u32::MAX as usize + 1;
        assert_eq!(
            Structure::new(Vocabulary::graph(), too_big).unwrap_err(),
            StructureError::UniverseTooLarge { universe: too_big }
        );
        // The boundary itself is fine: elements 0..u32::MAX all fit in u32.
        assert!(Structure::new(Vocabulary::graph(), u32::MAX as usize).is_ok());
    }

    #[test]
    fn arity_and_range_checks() {
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut s = Structure::new(vocab, 2).unwrap();
        assert!(matches!(
            s.add_tuple(e, vec![0]),
            Err(StructureError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.add_tuple(e, vec![0, 5]),
            Err(StructureError::ElementOutOfRange { .. })
        ));
        s.add_tuple(e, vec![0, 1]).unwrap();
        assert!(s.contains(e, &[0, 1]));
        assert!(!s.contains(e, &[1, 0]));
    }

    #[test]
    fn duplicate_tuples_deduplicated() {
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut s = Structure::new(vocab, 2).unwrap();
        s.add_tuple(e, vec![0, 1]).unwrap();
        s.add_tuple(e, vec![0, 1]).unwrap();
        assert_eq!(s.relation(e).len(), 1);
        assert_eq!(s.tuple_count(), 1);
    }

    #[test]
    fn rows_are_sorted_and_flat() {
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut s = Structure::new(vocab, 4).unwrap();
        s.add_tuple(e, vec![3, 0]).unwrap();
        s.add_tuple(e, vec![0, 2]).unwrap();
        s.add_tuple(e, vec![0, 1]).unwrap();
        let rel = s.relation(e);
        let rows: Vec<&[u32]> = rel.rows().collect();
        assert_eq!(rows, vec![&[0u32, 1][..], &[0, 2], &[3, 0]]);
        assert_eq!(rel.row(2), &[3, 0]);
        assert!(rel.contains_row(&[0, 2]));
        assert!(!rel.contains_row(&[2, 0]));
        // Mismatched lengths never match.
        assert!(!rel.contains(&[0]));
        assert!(rel.heap_bytes() >= 6 * std::mem::size_of::<u32>());
    }

    #[test]
    fn paper_size_formula() {
        // |τ| = 1, |A| = 3, |E^A| = 6 tuples of arity 2 ⇒ 1 + 3 + 12 = 16.
        let t = triangle();
        assert_eq!(t.paper_size(), 16);
    }

    #[test]
    fn gaifman_edges_of_triangle() {
        let t = triangle();
        let edges = t.gaifman_edges();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(1, 2)));
        assert!(edges.contains(&(0, 2)));
        let adj = t.gaifman_adjacency();
        assert_eq!(adj[0], vec![1, 2]);
    }

    #[test]
    fn gaifman_ignores_loops_and_higher_arity_works() {
        let vocab = Vocabulary::from_pairs([("R", 3)]).unwrap();
        let r = vocab.id_of("R").unwrap();
        let mut s = Structure::new(vocab, 4).unwrap();
        s.add_tuple(r, vec![0, 0, 1]).unwrap();
        s.add_tuple(r, vec![2, 3, 2]).unwrap();
        let edges = s.gaifman_edges();
        assert_eq!(edges.into_iter().collect::<Vec<_>>(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn induced_substructure_renumbers() {
        let t = triangle();
        let e = t.vocabulary().id_of("E").unwrap();
        let subset: BTreeSet<Element> = [0, 2].into_iter().collect();
        let (sub, map) = t.induced_substructure(&subset).unwrap();
        assert_eq!(sub.universe_size(), 2);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[1], None);
        assert_eq!(map[2], Some(1));
        // Edge 0-2 of the triangle survives as 0-1.
        let es = sub.vocabulary().id_of("E").unwrap();
        assert!(sub.contains(es, &[0, 1]));
        assert!(sub.contains(es, &[1, 0]));
        assert_eq!(sub.relation(es).len(), 2);
        assert!(t.contains(e, &[0, 1]));
    }

    #[test]
    fn induced_substructure_rejects_empty_and_out_of_range() {
        let t = triangle();
        assert!(t.induced_substructure(&BTreeSet::new()).is_err());
        let bad: BTreeSet<Element> = [7].into_iter().collect();
        assert!(t.induced_substructure(&bad).is_err());
    }

    #[test]
    fn restriction_and_expansion() {
        let vocab = Vocabulary::from_pairs([("E", 2), ("C", 1)]).unwrap();
        let e = vocab.id_of("E").unwrap();
        let c = vocab.id_of("C").unwrap();
        let mut s = Structure::new(vocab, 2).unwrap();
        s.add_tuple(e, vec![0, 1]).unwrap();
        s.add_tuple(c, vec![1]).unwrap();

        let only_e = Vocabulary::graph();
        let r = s.restrict_to(&only_e).unwrap();
        assert_eq!(r.vocabulary().len(), 1);
        assert_eq!(r.tuple_count(), 1);

        let extra = Vocabulary::from_pairs([("D", 1)]).unwrap();
        let ex = s.expand_vocabulary(&extra).unwrap();
        assert_eq!(ex.vocabulary().len(), 3);
        assert_eq!(ex.tuple_count(), 2);
        assert!(ex.relation_named("D").is_empty());

        // Restricting to a non-subset vocabulary fails.
        let bad = Vocabulary::from_pairs([("Z", 5)]).unwrap();
        assert!(s.restrict_to(&bad).is_err());
    }

    #[test]
    fn graph_predicates() {
        let t = triangle();
        assert!(t.is_digraph());
        assert!(t.is_graph());

        // A directed edge only in one direction is a digraph but not a graph.
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut d = Structure::new(vocab, 2).unwrap();
        d.add_tuple(e, vec![0, 1]).unwrap();
        assert!(d.is_digraph());
        assert!(!d.is_graph());

        // A loop disqualifies a graph.
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut l = Structure::new(vocab, 1).unwrap();
        l.add_tuple(e, vec![0, 0]).unwrap();
        assert!(!l.is_graph());

        // Non-graph vocabulary.
        let other = Structure::new(Vocabulary::from_pairs([("R", 3)]).unwrap(), 1).unwrap();
        assert!(!other.is_digraph());
    }

    #[test]
    fn equal_under_permutation() {
        let t = triangle();
        // Any rotation of the triangle is an automorphism.
        assert!(t.equal_under(&t, &[1, 2, 0]));
        assert!(t.equal_under(&t, &[0, 1, 2]));
        // A path is not isomorphic to a triangle under any bijection we test.
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut p = Structure::new(vocab, 3).unwrap();
        p.add_tuple(e, vec![0, 1]).unwrap();
        p.add_tuple(e, vec![1, 0]).unwrap();
        p.add_tuple(e, vec![1, 2]).unwrap();
        p.add_tuple(e, vec![2, 1]).unwrap();
        assert!(!t.equal_under(&p, &[0, 1, 2]));
    }

    #[test]
    fn labels_and_display() {
        let t = triangle().with_labels(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(t.label(0), Some("a"));
        let shown = t.to_string();
        assert!(shown.contains("E"));
        assert!(shown.contains("(a,b)"));
    }
}
