//! A convenience builder for relational structures with named elements and
//! bulk tuple insertion.

use crate::error::StructureError;
use crate::structure::{Element, Structure, Tuple};
use crate::vocabulary::{SymbolId, Vocabulary};
use std::collections::HashMap;

/// Builder for [`Structure`] values.
///
/// The builder interns element names on first use, allows tuples to be added
/// by element name or by index, and normalizes relations once at
/// [`StructureBuilder::build`] time (cheaper than per-insert normalization).
///
/// ```
/// use cq_structures::{StructureBuilder, Vocabulary};
///
/// let mut b = StructureBuilder::new(Vocabulary::graph());
/// b.edge_named("u", "v");
/// b.edge_named("v", "w");
/// let s = b.build().unwrap();
/// assert_eq!(s.universe_size(), 3);
/// // `edge_named` inserts both orientations of each undirected edge.
/// assert_eq!(s.relation_named("E").len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct StructureBuilder {
    vocab: Vocabulary,
    names: Vec<String>,
    by_name: HashMap<String, Element>,
    tuples: Vec<(SymbolId, Tuple)>,
    explicit_universe: Option<usize>,
}

impl StructureBuilder {
    /// Start a builder over the given vocabulary.
    pub fn new(vocab: Vocabulary) -> Self {
        StructureBuilder {
            vocab,
            names: Vec::new(),
            by_name: HashMap::new(),
            tuples: Vec::new(),
            explicit_universe: None,
        }
    }

    /// Start a builder over the graph vocabulary `{E/2}`.
    pub fn graph() -> Self {
        StructureBuilder::new(Vocabulary::graph())
    }

    /// Declare that the universe is exactly `0..n` regardless of which
    /// elements appear in tuples (used for structures with isolated
    /// elements).
    pub fn with_universe(mut self, n: usize) -> Self {
        self.explicit_universe = Some(n);
        self
    }

    /// Intern an element name, returning its index.
    pub fn element(&mut self, name: impl Into<String>) -> Element {
        let name = name.into();
        if let Some(&e) = self.by_name.get(&name) {
            return e;
        }
        let e = self.names.len();
        self.by_name.insert(name.clone(), e);
        self.names.push(name);
        e
    }

    /// Number of interned named elements so far.
    pub fn element_count(&self) -> usize {
        self.names.len()
    }

    /// Add a tuple by symbol name and element names.
    pub fn fact<S: AsRef<str>>(
        &mut self,
        symbol: &str,
        elements: &[S],
    ) -> Result<&mut Self, StructureError> {
        let sym = self
            .vocab
            .id_of(symbol)
            .ok_or_else(|| StructureError::UnknownSymbol(symbol.to_string()))?;
        let tuple: Tuple = elements.iter().map(|n| self.element(n.as_ref())).collect();
        self.tuples.push((sym, tuple));
        Ok(self)
    }

    /// Add a tuple by symbol id and raw element indices.
    pub fn raw_fact(&mut self, sym: SymbolId, tuple: Tuple) -> &mut Self {
        for &e in &tuple {
            while self.names.len() <= e {
                let name = format!("_{}", self.names.len());
                self.by_name.insert(name.clone(), self.names.len());
                self.names.push(name);
            }
        }
        self.tuples.push((sym, tuple));
        self
    }

    /// Convenience: add a *directed* edge `E(u, v)` by element names.
    pub fn arc_named(&mut self, u: &str, v: &str) -> &mut Self {
        self.fact("E", &[u, v]).expect("graph vocabulary has E")
    }

    /// Convenience: add an *undirected* edge (both orientations) by names.
    pub fn edge_named(&mut self, u: &str, v: &str) -> &mut Self {
        self.arc_named(u, v);
        self.arc_named(v, u)
    }

    /// Finish building.
    pub fn build(self) -> Result<Structure, StructureError> {
        let n = match self.explicit_universe {
            Some(n) => {
                if self.names.len() > n {
                    return Err(StructureError::ElementOutOfRange {
                        element: self.names.len() - 1,
                        universe: n,
                    });
                }
                n
            }
            None => self.names.len().max(1),
        };
        let mut s = Structure::new(self.vocab.clone(), n)?;
        for (sym, t) in self.tuples {
            let arity = self.vocab.arity(sym);
            if t.len() != arity {
                return Err(StructureError::ArityMismatch {
                    symbol: self.vocab.name(sym).to_string(),
                    expected: arity,
                    got: t.len(),
                });
            }
            s.add_tuple_unchecked(sym, t);
        }
        s.finalize();
        let mut labels = self.names;
        while labels.len() < n {
            labels.push(format!("_{}", labels.len()));
        }
        Ok(s.with_labels(labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_named_graph() {
        let mut b = StructureBuilder::graph();
        b.edge_named("x", "y");
        b.edge_named("y", "z");
        let s = b.build().unwrap();
        assert_eq!(s.universe_size(), 3);
        assert!(s.is_graph());
        assert_eq!(s.label(0), Some("x"));
        assert_eq!(s.relation_named("E").len(), 4);
    }

    #[test]
    fn element_interning_is_stable() {
        let mut b = StructureBuilder::graph();
        let x1 = b.element("x");
        let y = b.element("y");
        let x2 = b.element("x");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        assert_eq!(b.element_count(), 2);
    }

    #[test]
    fn unknown_symbol_rejected() {
        let mut b = StructureBuilder::graph();
        assert!(matches!(
            b.fact("R", &["a", "b"]),
            Err(StructureError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn explicit_universe_with_isolated_elements() {
        let mut b = StructureBuilder::graph().with_universe(5);
        b.edge_named("a", "b");
        let s = b.build().unwrap();
        assert_eq!(s.universe_size(), 5);
        assert_eq!(s.gaifman_edges().len(), 1);
    }

    #[test]
    fn explicit_universe_too_small_rejected() {
        let mut b = StructureBuilder::graph().with_universe(1);
        b.edge_named("a", "b");
        assert!(b.build().is_err());
    }

    #[test]
    fn empty_builder_gives_singleton_universe() {
        let s = StructureBuilder::graph().build().unwrap();
        assert_eq!(s.universe_size(), 1);
        assert_eq!(s.tuple_count(), 0);
    }

    #[test]
    fn raw_fact_extends_universe() {
        let vocab = Vocabulary::from_pairs([("R", 3)]).unwrap();
        let r = vocab.id_of("R").unwrap();
        let mut b = StructureBuilder::new(vocab);
        b.raw_fact(r, vec![0, 2, 1]);
        let s = b.build().unwrap();
        assert_eq!(s.universe_size(), 3);
        assert!(s.contains(r, &[0, 2, 1]));
    }

    #[test]
    fn arity_mismatch_detected_at_build() {
        let vocab = Vocabulary::from_pairs([("R", 2)]).unwrap();
        let r = vocab.id_of("R").unwrap();
        let mut b = StructureBuilder::new(vocab);
        b.raw_fact(r, vec![0, 1, 2]);
        assert!(matches!(
            b.build(),
            Err(StructureError::ArityMismatch { .. })
        ));
    }
}
