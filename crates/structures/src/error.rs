//! Error types for structure construction and manipulation.

use std::fmt;

/// Errors that can arise when building or combining relational structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// A tuple was inserted whose length does not match the declared arity of
    /// the relation symbol.
    ArityMismatch {
        /// Name of the offending relation symbol.
        symbol: String,
        /// Declared arity.
        expected: usize,
        /// Length of the offending tuple.
        got: usize,
    },
    /// A tuple refers to an element outside the universe `0..n`.
    ElementOutOfRange {
        /// The offending element.
        element: usize,
        /// The universe size.
        universe: usize,
    },
    /// A relation symbol was referenced that is not part of the vocabulary.
    UnknownSymbol(String),
    /// A relation symbol was declared twice with different arities.
    DuplicateSymbol(String),
    /// The universe of a structure must be non-empty (the paper only
    /// considers structures with non-empty universes).
    EmptyUniverse,
    /// The universe exceeds the `u32`-interned element representation
    /// (relations store elements as `u32`, so universes are capped at
    /// `u32::MAX` elements).
    UniverseTooLarge {
        /// The requested universe size.
        universe: usize,
    },
    /// Two structures were combined (product, union, …) but their
    /// vocabularies are incompatible.
    VocabularyMismatch {
        /// Description of where the mismatch was found.
        detail: String,
    },
    /// A variable was referenced (e.g. marked free) that the query never
    /// declared.
    UnknownVariable(String),
    /// A variable was marked free more than once; the free list is an
    /// ordered set.
    DuplicateFreeVariable(String),
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::ArityMismatch {
                symbol,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for relation {symbol}: expected {expected}, got {got}"
            ),
            StructureError::ElementOutOfRange { element, universe } => write!(
                f,
                "element {element} out of range for universe of size {universe}"
            ),
            StructureError::UnknownSymbol(s) => write!(f, "unknown relation symbol {s}"),
            StructureError::DuplicateSymbol(s) => {
                write!(f, "relation symbol {s} declared more than once")
            }
            StructureError::EmptyUniverse => write!(f, "structures must have non-empty universe"),
            StructureError::UniverseTooLarge { universe } => write!(
                f,
                "universe of size {universe} exceeds the u32 element representation"
            ),
            StructureError::VocabularyMismatch { detail } => {
                write!(f, "vocabulary mismatch: {detail}")
            }
            StructureError::UnknownVariable(v) => {
                write!(f, "variable {v} is not declared by the query")
            }
            StructureError::DuplicateFreeVariable(v) => {
                write!(f, "variable {v} is already marked free")
            }
        }
    }
}

impl std::error::Error for StructureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_arity_mismatch() {
        let e = StructureError::ArityMismatch {
            symbol: "E".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("arity mismatch"));
        assert!(e.to_string().contains('E'));
    }

    #[test]
    fn display_element_out_of_range() {
        let e = StructureError::ElementOutOfRange {
            element: 7,
            universe: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn display_other_variants() {
        assert!(StructureError::UnknownSymbol("R".into())
            .to_string()
            .contains('R'));
        assert!(StructureError::DuplicateSymbol("R".into())
            .to_string()
            .contains("more than once"));
        assert!(StructureError::EmptyUniverse
            .to_string()
            .contains("non-empty"));
        assert!(StructureError::UniverseTooLarge {
            universe: usize::MAX
        }
        .to_string()
        .contains("u32"));
        assert!(StructureError::VocabularyMismatch {
            detail: "foo".into()
        }
        .to_string()
        .contains("foo"));
        assert!(StructureError::UnknownVariable("z".into())
            .to_string()
            .contains("not declared"));
        assert!(StructureError::DuplicateFreeVariable("z".into())
            .to_string()
            .contains("already marked free"));
    }
}
