//! Indexed access structures over a target structure — the read-optimized
//! form the evaluation kernel (`cq_solver::kernel`) consumes.
//!
//! All homomorphism algorithms ask the target structure `B` the same two
//! questions, millions of times: "is this tuple in `R^B`?" and "which
//! elements of `B` can sit at position `p` of a tuple of `R^B`?".  The
//! [`Structure`] representation answers the first by binary search over a
//! sorted tuple list and cannot answer the second without a scan.  A
//! [`StructureIndex`] is built **once** per target structure (linear time
//! in `|B|`) and answers both in `O(1)`:
//!
//! * a per-symbol **tuple hash set** over flat `u32` rows — constant-time
//!   membership without comparing `Vec<usize>` tuples;
//! * per-(symbol, position, element) **posting lists** — for every element
//!   `e` and argument position `p` of a symbol `R`, the list of tuples of
//!   `R^B` with `e` at position `p`, exposed through candidate iterators
//!   ([`StructureIndex::tuples_with`]) and the deduplicated position
//!   domains ([`StructureIndex::elements_at`]) the kernel's prefilter
//!   intersects.
//!
//! The engine (`cq_core::Engine`) caches one `Arc<StructureIndex>` per
//! registered database instance so that batch fan-out — decision and
//! counting alike — shares a single build.  [`structure_hash`] is the
//! deterministic content hash that cache keys on.

use crate::structure::{Structure, Tuple};
use crate::vocabulary::{SymbolId, Vocabulary};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// The per-symbol part of a [`StructureIndex`].
#[derive(Debug, Clone, Default)]
struct RelationIndex {
    arity: usize,
    /// Tuples of the relation, flattened row-major (`arity` entries per
    /// tuple, original sorted order preserved).
    flat: Vec<u32>,
    /// Hash set over the rows of `flat` for O(1) membership.  Keys are
    /// owned `Vec<u32>` so lookups can borrow a scratch `&[u32]` without
    /// allocating.
    members: HashSet<Vec<u32>>,
    /// `postings[pos][element]`: indices (into the tuple list) of the
    /// tuples holding `element` at argument position `pos`.
    postings: Vec<HashMap<u32, Vec<u32>>>,
    /// `elements_at[pos]`: the sorted, deduplicated elements occurring at
    /// argument position `pos` — the position domain the kernel prefilter
    /// intersects.
    elements_at: Vec<Vec<u32>>,
}

impl RelationIndex {
    fn build(arity: usize, tuples: &[Tuple]) -> RelationIndex {
        let mut flat = Vec::with_capacity(tuples.len() * arity);
        let mut members = HashSet::with_capacity(tuples.len());
        let mut postings: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); arity];
        for (idx, t) in tuples.iter().enumerate() {
            let row: Vec<u32> = t.iter().map(|&e| e as u32).collect();
            for (pos, &e) in row.iter().enumerate() {
                postings[pos].entry(e).or_default().push(idx as u32);
            }
            flat.extend_from_slice(&row);
            members.insert(row);
        }
        let elements_at = postings
            .iter()
            .map(|by_elem| {
                let mut elems: Vec<u32> = by_elem.keys().copied().collect();
                elems.sort_unstable();
                elems
            })
            .collect();
        RelationIndex {
            arity,
            flat,
            members,
            postings,
            elements_at,
        }
    }

    fn tuple(&self, idx: usize) -> &[u32] {
        &self.flat[idx * self.arity..(idx + 1) * self.arity]
    }
}

/// An immutable read index over one target structure: tuple hash sets plus
/// positional posting lists (see the module docs).  Build once with
/// [`StructureIndex::new`], share via `Arc` across evaluations and worker
/// threads.
#[derive(Debug, Clone)]
pub struct StructureIndex {
    universe_size: usize,
    vocab: Vocabulary,
    relations: Vec<RelationIndex>,
}

impl StructureIndex {
    /// Build the index for a target structure (linear in `|B|`).
    pub fn new(b: &Structure) -> StructureIndex {
        assert!(
            b.universe_size() < u32::MAX as usize,
            "StructureIndex represents elements as u32"
        );
        let vocab = b.vocabulary().clone();
        let relations = vocab
            .ids()
            .map(|sym| RelationIndex::build(vocab.arity(sym), b.relation(sym).tuples()))
            .collect();
        StructureIndex {
            universe_size: b.universe_size(),
            vocab,
            relations,
        }
    }

    /// Size of the indexed structure's universe.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The vocabulary of the indexed structure (used to translate query
    /// symbols into index symbols once, at kernel compile time).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of tuples interpreted for `sym`.
    pub fn tuple_count(&self, sym: SymbolId) -> usize {
        let r = &self.relations[sym.index()];
        r.flat.len().checked_div(r.arity).unwrap_or(0)
    }

    /// O(1) membership test `t ∈ R^B` over a flat row.
    #[inline]
    pub fn contains(&self, sym: SymbolId, t: &[u32]) -> bool {
        self.relations[sym.index()].members.contains(t)
    }

    /// Candidate iterator: the tuples of `sym` holding `element` at
    /// argument position `pos`, as flat rows.
    pub fn tuples_with(
        &self,
        sym: SymbolId,
        pos: usize,
        element: u32,
    ) -> impl Iterator<Item = &[u32]> + '_ {
        let r = &self.relations[sym.index()];
        r.postings[pos]
            .get(&element)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&idx| r.tuple(idx as usize))
    }

    /// The sorted, deduplicated elements occurring at argument position
    /// `pos` of `sym` — the position domain intersected by the kernel's
    /// unary/incidence prefilter.
    pub fn elements_at(&self, sym: SymbolId, pos: usize) -> &[u32] {
        &self.relations[sym.index()].elements_at[pos]
    }

    /// How many tuples of `sym` hold `element` at position `pos` (posting
    /// list length; `0` when the element never occurs there).
    pub fn occurrence_count(&self, sym: SymbolId, pos: usize, element: u32) -> usize {
        self.relations[sym.index()].postings[pos]
            .get(&element)
            .map(|v| v.len())
            .unwrap_or(0)
    }
}

/// A deterministic content hash of a structure (universe size, vocabulary,
/// and every relation's tuple list).  Two equal structures hash equal across
/// processes — the engine's instance-index cache keys on this and confirms
/// candidates by full structural equality, so a collision degrades to a
/// rebuild, never to a wrong index.
pub fn structure_hash(s: &Structure) -> u64 {
    // DefaultHasher with default keys is deterministic for a given Rust
    // release; cross-release stability is not required (the cache is
    // in-memory only).
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.universe_size().hash(&mut h);
    s.vocabulary().len().hash(&mut h);
    for sym in s.vocabulary().ids() {
        s.vocabulary().name(sym).hash(&mut h);
        s.vocabulary().arity(sym).hash(&mut h);
        let rel = s.relation(sym);
        rel.len().hash(&mut h);
        for t in rel.tuples() {
            t.hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn membership_matches_the_structure() {
        let b = families::cycle(5);
        let idx = StructureIndex::new(&b);
        let e = b.vocabulary().id_of("E").unwrap();
        for (sym, t) in b.all_tuples() {
            let row: Vec<u32> = t.iter().map(|&x| x as u32).collect();
            assert!(idx.contains(sym, &row));
        }
        assert!(!idx.contains(e, &[0, 2]));
        assert!(!idx.contains(e, &[0, 0]));
        assert_eq!(idx.tuple_count(e), b.relation(e).len());
        assert_eq!(idx.universe_size(), 5);
    }

    #[test]
    fn posting_lists_enumerate_exactly_the_incident_tuples() {
        let b = families::star(3); // centre 0, leaves 1..=3, both arc directions
        let idx = StructureIndex::new(&b);
        let e = b.vocabulary().id_of("E").unwrap();
        let from_center: Vec<Vec<u32>> = idx.tuples_with(e, 0, 0).map(|t| t.to_vec()).collect();
        assert_eq!(from_center.len(), 3);
        assert!(from_center.iter().all(|t| t[0] == 0));
        assert_eq!(idx.occurrence_count(e, 0, 0), 3);
        assert_eq!(idx.occurrence_count(e, 0, 1), 1);
        assert_eq!(idx.occurrence_count(e, 0, 99), 0);
        assert!(idx.tuples_with(e, 1, 99).next().is_none());
    }

    #[test]
    fn elements_at_are_sorted_position_domains() {
        let b = families::directed_path(4); // arcs 0->1->2->3
        let idx = StructureIndex::new(&b);
        let e = b.vocabulary().id_of("E").unwrap();
        assert_eq!(idx.elements_at(e, 0), &[0, 1, 2]);
        assert_eq!(idx.elements_at(e, 1), &[1, 2, 3]);
    }

    #[test]
    fn structure_hash_distinguishes_content_not_representation() {
        let a = families::cycle(6);
        let b = families::cycle(6);
        assert_eq!(structure_hash(&a), structure_hash(&b));
        assert_ne!(structure_hash(&a), structure_hash(&families::cycle(7)));
        assert_ne!(structure_hash(&a), structure_hash(&families::path(6)));
    }

    #[test]
    fn unary_relations_index_cleanly() {
        let b = crate::star_expansion(&families::path(3));
        let idx = StructureIndex::new(&b);
        let c0 = b.vocabulary().id_of("C_0").unwrap();
        assert_eq!(idx.elements_at(c0, 0), &[0]);
        assert!(idx.contains(c0, &[0]));
        assert!(!idx.contains(c0, &[1]));
    }
}
