//! Indexed access structures over a target structure — the read-optimized
//! form the evaluation kernel (`cq_solver::kernel`) consumes.
//!
//! All homomorphism algorithms ask the target structure `B` the same two
//! questions, millions of times: "is this tuple in `R^B`?" and "which
//! elements of `B` can sit at position `p` of a tuple of `R^B`?".  The
//! [`Structure`] representation answers the first by binary search over a
//! sorted tuple list and cannot answer the second without a scan.  A
//! [`StructureIndex`] is built **once** per target structure (linear time
//! in `|B|`) and answers both in `O(1)`:
//!
//! * a per-symbol **row hash table** keyed by a deterministic FNV-1a hash of
//!   the row — buckets store tuple ids, and candidates are confirmed against
//!   the structure's own flat row storage, so membership costs no owned-key
//!   allocations and the rows are never materialised twice;
//! * per-(symbol, position) **CSR posting lists** — for every element `e`
//!   and argument position `p` of a symbol `R`, the list of tuples of `R^B`
//!   with `e` at position `p`, exposed through candidate iterators
//!   ([`StructureIndex::tuples_with`]) and the deduplicated position
//!   domains ([`StructureIndex::elements_at`]) the kernel's prefilter
//!   intersects.
//!
//! The index *shares* the structure it indexes through an [`Arc`] rather
//! than copying its tuples: [`StructureIndex::from_arc`] takes ownership of
//! a shared structure, and the engine (`cq_core::Engine`) caches one
//! `Arc<StructureIndex>` per registered database instance so that batch
//! fan-out — decision and counting alike — shares a single build and a
//! single copy of the tuple data.  Every index carries a process-unique
//! [`StructureIndex::id`], which compiled kernel programs use as a cache
//! key.  [`structure_hash`] is the deterministic content hash the engine's
//! instance cache keys on.

use crate::delta::{AppliedDelta, DeltaBatch};
use crate::error::StructureError;
use crate::structure::{fresh_content_token, Structure};
use crate::vocabulary::{SymbolId, Vocabulary};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique index identities, used to key compiled-program caches.
static NEXT_INDEX_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide count of full index builds (one per
/// [`StructureIndex::from_arc`] sweep).  The incremental path mutates
/// indexes in place, so benches and tests assert this counter does *not*
/// grow while deltas are applied.
static INDEX_BUILDS: AtomicU64 = AtomicU64::new(0);

/// How many full index builds have happened in this process.
pub fn index_build_count() -> u64 {
    INDEX_BUILDS.load(Ordering::Relaxed)
}

/// How many [`AppliedDelta`] records an index retains for consumers that
/// catch up retained DP state by replaying mutations
/// ([`StructureIndex::mutations_since`]).
const MUTATION_LOG_CAP: usize = 32;

/// A membership bucket: the tuple ids whose rows share an FNV hash.  Almost
/// every bucket holds exactly one id, so the one-element case is inlined.
#[derive(Debug, Clone)]
enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

/// The per-symbol part of a [`StructureIndex`].  Tuple *data* lives in the
/// shared [`Structure`]; this holds only derived access paths keyed by
/// tuple id.
#[derive(Debug, Clone, Default)]
struct RelationIndex {
    arity: usize,
    /// Hash table over the relation's rows: FNV-1a row hash → tuple ids.
    /// Lookups confirm candidates against the structure's row storage.
    buckets: HashMap<u64, Bucket>,
    /// CSR posting lists, one per argument position: `offsets[pos]` has
    /// `universe_size + 1` entries and `tuple_ids[pos][offsets[pos][e] ..
    /// offsets[pos][e + 1]]` are the tuples holding `e` at position `pos`.
    offsets: Vec<Vec<u32>>,
    tuple_ids: Vec<Vec<u32>>,
    /// `elements_at[pos]`: the sorted, deduplicated elements occurring at
    /// argument position `pos` — the position domain the kernel prefilter
    /// intersects.
    elements_at: Vec<Vec<u32>>,
    /// Copy-on-write posting overlay for delta-mutated relations: one map
    /// per position holding the posting lists that diverged from the
    /// immutable CSR base.  Empty (no allocation) until the first mutation
    /// touches this relation.
    overlay: Vec<HashMap<u32, Vec<u32>>>,
}

/// Deterministic FNV-1a hash of a flat row (stable across processes).
#[inline]
pub(crate) fn fnv_row(row: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &e in row {
        for b in e.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl RelationIndex {
    fn build(structure: &Structure, sym: SymbolId) -> RelationIndex {
        let rel = structure.relation(sym);
        let arity = rel.arity();
        let len = rel.len();
        debug_assert!(len <= u32::MAX as usize, "tuple ids are u32");
        let n = structure.universe_size();

        let mut buckets: HashMap<u64, Bucket> = HashMap::with_capacity(len);
        for (idx, row) in rel.rows().enumerate() {
            use std::collections::hash_map::Entry;
            match buckets.entry(fnv_row(row)) {
                Entry::Vacant(v) => {
                    v.insert(Bucket::One(idx as u32));
                }
                Entry::Occupied(mut o) => match o.get_mut() {
                    Bucket::One(first) => {
                        let first = *first;
                        o.insert(Bucket::Many(vec![first, idx as u32]));
                    }
                    Bucket::Many(ids) => ids.push(idx as u32),
                },
            }
        }

        let mut offsets = Vec::with_capacity(arity);
        let mut tuple_ids = Vec::with_capacity(arity);
        let mut elements_at = Vec::with_capacity(arity);
        for pos in 0..arity {
            let mut offs = vec![0u32; n + 1];
            for row in rel.rows() {
                offs[row[pos] as usize + 1] += 1;
            }
            for e in 0..n {
                offs[e + 1] += offs[e];
            }
            let mut cursor: Vec<u32> = offs[..n].to_vec();
            let mut ids = vec![0u32; len];
            for (idx, row) in rel.rows().enumerate() {
                let e = row[pos] as usize;
                ids[cursor[e] as usize] = idx as u32;
                cursor[e] += 1;
            }
            let elems: Vec<u32> = (0..n)
                .filter(|&e| offs[e + 1] > offs[e])
                .map(|e| e as u32)
                .collect();
            offsets.push(offs);
            tuple_ids.push(ids);
            elements_at.push(elems);
        }

        RelationIndex {
            arity,
            buckets,
            offsets,
            tuple_ids,
            elements_at,
            overlay: Vec::new(),
        }
    }

    /// The posting-list slice for `element` at `pos` (tuple ids).
    #[inline]
    fn posting(&self, pos: usize, element: u32) -> &[u32] {
        if let Some(ov) = self.overlay.get(pos) {
            if let Some(list) = ov.get(&element) {
                return list;
            }
        }
        self.base_posting(pos, element)
    }

    /// The posting-list slice of the immutable CSR base, ignoring any
    /// overlay entry.
    #[inline]
    fn base_posting(&self, pos: usize, element: u32) -> &[u32] {
        let offs = &self.offsets[pos];
        let e = element as usize;
        if e + 1 >= offs.len() {
            return &[];
        }
        &self.tuple_ids[pos][offs[e] as usize..offs[e + 1] as usize]
    }

    /// The mutable overlay posting list for `(pos, element)`, populated from
    /// the CSR base on first touch.
    fn overlay_posting_mut(&mut self, pos: usize, element: u32) -> &mut Vec<u32> {
        if self.overlay.is_empty() {
            self.overlay = vec![HashMap::new(); self.arity];
        }
        if !self.overlay[pos].contains_key(&element) {
            let base = self.base_posting(pos, element).to_vec();
            self.overlay[pos].insert(element, base);
        }
        self.overlay[pos].get_mut(&element).expect("just inserted")
    }

    fn bucket_insert(&mut self, hash: u64, id: u32) {
        use std::collections::hash_map::Entry;
        match self.buckets.entry(hash) {
            Entry::Vacant(v) => {
                v.insert(Bucket::One(id));
            }
            Entry::Occupied(mut o) => match o.get_mut() {
                Bucket::One(first) => {
                    let first = *first;
                    o.insert(Bucket::Many(vec![first, id]));
                }
                Bucket::Many(ids) => ids.push(id),
            },
        }
    }

    fn bucket_remove(&mut self, hash: u64, id: u32) {
        use std::collections::hash_map::Entry;
        let Entry::Occupied(mut o) = self.buckets.entry(hash) else {
            debug_assert!(false, "bucket for a present row must exist");
            return;
        };
        match o.get_mut() {
            Bucket::One(only) => {
                debug_assert_eq!(*only, id);
                o.remove();
            }
            Bucket::Many(ids) => {
                ids.retain(|&i| i != id);
                if let [only] = ids[..] {
                    o.insert(Bucket::One(only));
                }
            }
        }
    }

    fn bucket_reid(&mut self, hash: u64, old: u32, new: u32) {
        match self.buckets.get_mut(&hash) {
            Some(Bucket::One(only)) if *only == old => *only = new,
            Some(Bucket::Many(ids)) => {
                if let Some(slot) = ids.iter_mut().find(|i| **i == old) {
                    *slot = new;
                }
            }
            _ => debug_assert!(false, "bucket for a moved row must exist"),
        }
    }

    /// Remove element `e` from the sorted position domain at `pos`.
    fn domain_remove(&mut self, pos: usize, e: u32) {
        if let Ok(i) = self.elements_at[pos].binary_search(&e) {
            self.elements_at[pos].remove(i);
        }
    }

    /// Insert element `e` into the sorted position domain at `pos`.
    fn domain_insert(&mut self, pos: usize, e: u32) {
        if let Err(i) = self.elements_at[pos].binary_search(&e) {
            self.elements_at[pos].insert(i, e);
        }
    }

    fn heap_bytes(&self) -> usize {
        let word = std::mem::size_of::<u32>();
        let csr: usize = self
            .offsets
            .iter()
            .chain(self.tuple_ids.iter())
            .chain(self.elements_at.iter())
            .map(|v| v.capacity() * word)
            .sum();
        let bucket_entries =
            self.buckets.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<Bucket>());
        let bucket_spill: usize = self
            .buckets
            .values()
            .map(|b| match b {
                Bucket::One(_) => 0,
                Bucket::Many(v) => v.capacity() * word,
            })
            .sum();
        let overlay: usize = self
            .overlay
            .iter()
            .map(|m| {
                m.capacity() * (word + std::mem::size_of::<Vec<u32>>())
                    + m.values().map(|v| v.capacity() * word).sum::<usize>()
            })
            .sum();
        csr + bucket_entries + bucket_spill + overlay
    }
}

/// An immutable read index over one target structure: row hash tables plus
/// CSR posting lists (see the module docs).  Build once with
/// [`StructureIndex::new`] or [`StructureIndex::from_arc`], share via `Arc`
/// across evaluations and worker threads.
#[derive(Debug, Clone)]
pub struct StructureIndex {
    id: u64,
    structure: Arc<Structure>,
    relations: Vec<RelationIndex>,
    /// Monotone state generation: bumped by every [`StructureIndex::apply_delta`].
    version: u64,
    /// Bumped only when a delta *grows* some position domain (an element's
    /// posting list goes 0 → non-zero).  Compiled programs bake position
    /// domains at compile time; deletions leave baked domains as sound
    /// supersets, so programs stay valid within one epoch and are
    /// recompiled only when the epoch moves.
    domain_epoch: u64,
    /// Recent mutations, newest last, for consumers catching up retained DP
    /// state (bounded by [`MUTATION_LOG_CAP`]).
    log: VecDeque<Arc<AppliedDelta>>,
}

impl StructureIndex {
    /// Build the index for a target structure (linear in `|B|`).  The
    /// structure is copied once into a shared allocation; callers that
    /// already hold an `Arc<Structure>` should use
    /// [`StructureIndex::from_arc`] to avoid the copy.
    pub fn new(b: &Structure) -> StructureIndex {
        StructureIndex::from_arc(Arc::new(b.clone()))
    }

    /// Build the index over an already-shared structure without copying its
    /// tuple data: the index holds the `Arc` and serves rows out of it.
    pub fn from_arc(b: Arc<Structure>) -> StructureIndex {
        INDEX_BUILDS.fetch_add(1, Ordering::Relaxed);
        let relations = b
            .vocabulary()
            .ids()
            .map(|sym| RelationIndex::build(&b, sym))
            .collect();
        StructureIndex {
            id: NEXT_INDEX_ID.fetch_add(1, Ordering::Relaxed),
            structure: b,
            relations,
            version: 0,
            domain_epoch: 0,
            log: VecDeque::new(),
        }
    }

    /// A process-unique identity for this index build.  Compiled kernel
    /// programs are cached keyed by this id; two clones of one index share
    /// the id (and the underlying data), while a rebuild of the same
    /// structure gets a fresh one.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The indexed structure.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The shared allocation of the indexed structure.
    pub fn structure_arc(&self) -> &Arc<Structure> {
        &self.structure
    }

    /// Size of the indexed structure's universe.
    pub fn universe_size(&self) -> usize {
        self.structure.universe_size()
    }

    /// The vocabulary of the indexed structure (used to translate query
    /// symbols into index symbols once, at kernel compile time).
    pub fn vocabulary(&self) -> &Vocabulary {
        self.structure.vocabulary()
    }

    /// Number of tuples interpreted for `sym`.
    pub fn tuple_count(&self, sym: SymbolId) -> usize {
        self.structure.relation(sym).len()
    }

    /// O(1) membership test `t ∈ R^B` over a flat row.
    #[inline]
    pub fn contains(&self, sym: SymbolId, t: &[u32]) -> bool {
        let r = &self.relations[sym.index()];
        if t.len() != r.arity {
            return false;
        }
        let rel = self.structure.relation(sym);
        match r.buckets.get(&fnv_row(t)) {
            None => false,
            Some(Bucket::One(idx)) => rel.row(*idx as usize) == t,
            Some(Bucket::Many(ids)) => ids.iter().any(|&idx| rel.row(idx as usize) == t),
        }
    }

    /// The row id of `t` in `R^B` (`None` when absent).  Row ids are the
    /// positions of [`crate::Relation::rows`], so they key aligned side
    /// tables — per-tuple weights in particular.
    #[inline]
    pub fn row_of(&self, sym: SymbolId, t: &[u32]) -> Option<u32> {
        let r = &self.relations[sym.index()];
        if t.len() != r.arity {
            return None;
        }
        let rel = self.structure.relation(sym);
        match r.buckets.get(&fnv_row(t)) {
            None => None,
            Some(Bucket::One(idx)) => (rel.row(*idx as usize) == t).then_some(*idx),
            Some(Bucket::Many(ids)) => ids.iter().copied().find(|&idx| rel.row(idx as usize) == t),
        }
    }

    /// Candidate iterator: the tuples of `sym` holding `element` at
    /// argument position `pos`, as flat rows.
    pub fn tuples_with(
        &self,
        sym: SymbolId,
        pos: usize,
        element: u32,
    ) -> impl Iterator<Item = &[u32]> + '_ {
        let rel = self.structure.relation(sym);
        self.relations[sym.index()]
            .posting(pos, element)
            .iter()
            .map(move |&idx| rel.row(idx as usize))
    }

    /// The sorted, deduplicated elements occurring at argument position
    /// `pos` of `sym` — the position domain intersected by the kernel's
    /// unary/incidence prefilter.
    pub fn elements_at(&self, sym: SymbolId, pos: usize) -> &[u32] {
        &self.relations[sym.index()].elements_at[pos]
    }

    /// How many tuples of `sym` hold `element` at position `pos` (posting
    /// list length; `0` when the element never occurs there).
    #[inline]
    pub fn occurrence_count(&self, sym: SymbolId, pos: usize, element: u32) -> usize {
        self.relations[sym.index()].posting(pos, element).len()
    }

    /// Approximate heap usage of the index *including* its shared structure,
    /// in bytes.  Because the structure is shared rather than copied, this
    /// is what one cached database actually pins in memory.
    pub fn heap_bytes(&self) -> usize {
        self.structure.heap_bytes() + self.relations.iter().map(|r| r.heap_bytes()).sum::<usize>()
    }

    /// The index's state generation: 0 for a fresh build, +1 per applied
    /// delta batch.  `(id, version)` names one exact content state.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The index's domain epoch: bumped only when a delta grows some
    /// position domain.  Compiled-program caches key on
    /// `(id, domain_epoch)` so programs survive data churn within existing
    /// domains and are recompiled exactly when a baked domain could be
    /// stale.
    pub fn domain_epoch(&self) -> u64 {
        self.domain_epoch
    }

    /// The mutations leading from state `version` to the current state,
    /// oldest first.  `Some(vec![])` when already current; `None` when the
    /// bounded log no longer covers the gap (the consumer must rebuild its
    /// derived state from scratch).
    pub fn mutations_since(&self, version: u64) -> Option<Vec<Arc<AppliedDelta>>> {
        if version > self.version {
            return None;
        }
        let gap = (self.version - version) as usize;
        if gap > self.log.len() {
            return None;
        }
        Some(
            self.log
                .iter()
                .skip(self.log.len() - gap)
                .cloned()
                .collect(),
        )
    }

    /// Apply a batch of tuple mutations **in place**: all deletions first
    /// (in batch order), then all insertions, each maintaining the row hash
    /// table, the posting lists (through a copy-on-write overlay over the
    /// CSR base), and the sorted position domains per row — no rebuild, and
    /// [`index_build_count`] does not move.  Deleting an absent tuple and
    /// inserting a present one are no-ops.  Deletions swap-remove rows, so
    /// the last row of the touched relation takes the deleted row's id; the
    /// returned [`AppliedDelta`] records the effective operations with
    /// their deletion-time row ids and replays deterministically onto any
    /// content-identical structure ([`Structure::apply_applied`]) or
    /// aligned side table ([`crate::TupleWeights::apply_delta`]).
    ///
    /// The indexed structure is mutated through [`Arc::make_mut`]:
    /// concurrent holders of the old `Arc` keep a consistent pre-delta
    /// snapshot.
    pub fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<Arc<AppliedDelta>, StructureError> {
        batch.validate(&self.structure)?;
        let mut deleted: Vec<(SymbolId, u32, Vec<u32>)> = Vec::new();
        let mut inserted: Vec<(SymbolId, Vec<u32>)> = Vec::new();
        let mut domain_grew = false;
        let structure = Arc::make_mut(&mut self.structure);
        for (sym, row) in batch.deletions() {
            let (sym, row) = (*sym, &row[..]);
            let ri = &mut self.relations[sym.index()];
            let Some(id) = find_row(ri, structure.relation(sym), row) else {
                continue;
            };
            let last = structure.relation(sym).len() as u32 - 1;
            ri.bucket_remove(fnv_row(row), id);
            for (pos, &element) in row.iter().enumerate() {
                let list = ri.overlay_posting_mut(pos, element);
                if let Some(i) = list.iter().position(|&t| t == id) {
                    list.swap_remove(i);
                }
                if list.is_empty() {
                    ri.domain_remove(pos, element);
                }
            }
            if id != last {
                let moved: Vec<u32> = structure.relation(sym).row(last as usize).to_vec();
                ri.bucket_reid(fnv_row(&moved), last, id);
                for (pos, &element) in moved.iter().enumerate() {
                    let list = ri.overlay_posting_mut(pos, element);
                    if let Some(slot) = list.iter_mut().find(|t| **t == last) {
                        *slot = id;
                    }
                }
            }
            structure.relation_mut(sym).swap_remove_row(id as usize);
            deleted.push((sym, id, row.to_vec()));
        }
        for (sym, row) in batch.insertions() {
            let (sym, row) = (*sym, &row[..]);
            let ri = &mut self.relations[sym.index()];
            if find_row(ri, structure.relation(sym), row).is_some() {
                continue;
            }
            let id = structure.relation_mut(sym).push_row(row);
            let ri = &mut self.relations[sym.index()];
            ri.bucket_insert(fnv_row(row), id);
            for (pos, &element) in row.iter().enumerate() {
                let was_absent = ri.posting(pos, element).is_empty();
                ri.overlay_posting_mut(pos, element).push(id);
                if was_absent {
                    ri.domain_insert(pos, element);
                    domain_grew = true;
                }
            }
            inserted.push((sym, row.to_vec()));
        }
        let token = fresh_content_token();
        structure.set_content_token(token);
        self.version += 1;
        if domain_grew {
            self.domain_epoch += 1;
        }
        let applied = Arc::new(AppliedDelta {
            token,
            version: self.version,
            deleted,
            inserted,
        });
        self.log.push_back(Arc::clone(&applied));
        if self.log.len() > MUTATION_LOG_CAP {
            self.log.pop_front();
        }
        Ok(applied)
    }
}

/// Row lookup against a relation index's buckets, confirming candidates
/// against the structure's row storage (the free-function form of
/// [`StructureIndex::row_of`], usable while the structure is mutably
/// borrowed alongside).
#[inline]
fn find_row(ri: &RelationIndex, rel: &crate::structure::Relation, t: &[u32]) -> Option<u32> {
    match ri.buckets.get(&fnv_row(t)) {
        None => None,
        Some(Bucket::One(idx)) => (rel.row(*idx as usize) == t).then_some(*idx),
        Some(Bucket::Many(ids)) => ids.iter().copied().find(|&idx| rel.row(idx as usize) == t),
    }
}

/// A deterministic content hash of a structure (universe size, vocabulary,
/// and every relation's tuple list).  Two equal structures hash equal across
/// processes — the engine's instance-index cache keys on this and confirms
/// candidates by full structural equality, so a collision degrades to a
/// rebuild, never to a wrong index.
pub fn structure_hash(s: &Structure) -> u64 {
    // DefaultHasher with default keys is deterministic for a given Rust
    // release; cross-release stability is not required (the cache is
    // in-memory only).
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.universe_size().hash(&mut h);
    s.vocabulary().len().hash(&mut h);
    for sym in s.vocabulary().ids() {
        s.vocabulary().name(sym).hash(&mut h);
        s.vocabulary().arity(sym).hash(&mut h);
        let rel = s.relation(sym);
        rel.len().hash(&mut h);
        for t in rel.rows() {
            t.hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn membership_matches_the_structure() {
        let b = families::cycle(5);
        let idx = StructureIndex::new(&b);
        let e = b.vocabulary().id_of("E").unwrap();
        for (sym, row) in b.all_tuples() {
            assert!(idx.contains(sym, row));
        }
        assert!(!idx.contains(e, &[0, 2]));
        assert!(!idx.contains(e, &[0, 0]));
        assert!(!idx.contains(e, &[0]));
        assert_eq!(idx.tuple_count(e), b.relation(e).len());
        assert_eq!(idx.universe_size(), 5);
        assert_eq!(idx.structure(), &b);
    }

    #[test]
    fn posting_lists_enumerate_exactly_the_incident_tuples() {
        let b = families::star(3); // centre 0, leaves 1..=3, both arc directions
        let idx = StructureIndex::new(&b);
        let e = b.vocabulary().id_of("E").unwrap();
        let from_center: Vec<Vec<u32>> = idx.tuples_with(e, 0, 0).map(|t| t.to_vec()).collect();
        assert_eq!(from_center.len(), 3);
        assert!(from_center.iter().all(|t| t[0] == 0));
        assert_eq!(idx.occurrence_count(e, 0, 0), 3);
        assert_eq!(idx.occurrence_count(e, 0, 1), 1);
        assert_eq!(idx.occurrence_count(e, 0, 99), 0);
        assert!(idx.tuples_with(e, 1, 99).next().is_none());
    }

    #[test]
    fn elements_at_are_sorted_position_domains() {
        let b = families::directed_path(4); // arcs 0->1->2->3
        let idx = StructureIndex::new(&b);
        let e = b.vocabulary().id_of("E").unwrap();
        assert_eq!(idx.elements_at(e, 0), &[0, 1, 2]);
        assert_eq!(idx.elements_at(e, 1), &[1, 2, 3]);
    }

    #[test]
    fn structure_hash_distinguishes_content_not_representation() {
        let a = families::cycle(6);
        let b = families::cycle(6);
        assert_eq!(structure_hash(&a), structure_hash(&b));
        assert_ne!(structure_hash(&a), structure_hash(&families::cycle(7)));
        assert_ne!(structure_hash(&a), structure_hash(&families::path(6)));
    }

    #[test]
    fn unary_relations_index_cleanly() {
        let b = crate::star_expansion(&families::path(3));
        let idx = StructureIndex::new(&b);
        let c0 = b.vocabulary().id_of("C_0").unwrap();
        assert_eq!(idx.elements_at(c0, 0), &[0]);
        assert!(idx.contains(c0, &[0]));
        assert!(!idx.contains(c0, &[1]));
    }

    #[test]
    fn delta_maintains_postings_domains_and_membership() {
        let b = families::directed_path(5); // arcs 0->1->2->3->4
        let e = b.vocabulary().id_of("E").unwrap();
        let mut idx = StructureIndex::new(&b);
        let builds_before = index_build_count();
        let id_before = idx.id();
        assert_eq!(idx.version(), 0);

        let mut batch = crate::DeltaBatch::new();
        batch.delete(e, vec![0, 1]).insert(e, vec![2, 4]);
        let applied = idx.apply_delta(&batch).unwrap();
        assert!(!applied.is_noop());
        assert_eq!(idx.version(), 1);
        assert_eq!(idx.id(), id_before, "id survives mutation");
        assert_eq!(index_build_count(), builds_before, "no rebuild");

        assert!(!idx.contains(e, &[0, 1]));
        assert!(idx.contains(e, &[2, 4]));
        assert_eq!(idx.row_of(e, &[0, 1]), None);
        let new_row = idx.row_of(e, &[2, 4]).unwrap();
        assert_eq!(idx.structure().relation(e).row(new_row as usize), &[2, 4]);
        // Postings reflect the new state: element 2 now starts two arcs.
        assert_eq!(idx.occurrence_count(e, 0, 2), 2);
        assert_eq!(idx.occurrence_count(e, 0, 0), 0);
        let from_two: Vec<Vec<u32>> = idx.tuples_with(e, 0, 2).map(|t| t.to_vec()).collect();
        assert_eq!(from_two.len(), 2);
        assert!(from_two.iter().all(|t| t[0] == 2));
        // Elements 0 (position 0) and 1 (position 1) left their domains —
        // the deleted arc was their only occurrence; domains stay sorted.
        assert_eq!(idx.elements_at(e, 0), &[1, 2, 3]);
        assert_eq!(idx.elements_at(e, 1), &[2, 3, 4]);

        // Every surviving tuple is still found through the index.
        for (sym, row) in idx.structure().clone().all_tuples() {
            assert!(idx.contains(sym, row));
            let id = idx.row_of(sym, row).unwrap();
            assert_eq!(idx.structure().relation(sym).row(id as usize), row);
        }
    }

    #[test]
    fn domain_epoch_moves_only_when_a_domain_grows() {
        // A 4-cycle (both arc directions) plus an isolated element 4: every
        // cycle element occurs twice at each position, so single-arc churn
        // stays within the compiled domains.
        let vocab = Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut b = Structure::new(vocab, 5).unwrap();
        for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_tuple(e, vec![x, y]).unwrap();
            b.add_tuple(e, vec![y, x]).unwrap();
        }
        let mut idx = StructureIndex::new(&b);
        assert_eq!(idx.domain_epoch(), 0);

        // Churn within existing domains: delete 0->1, insert 0->2.  Both 0
        // and 2 still occur at their positions, so the epoch holds.
        let mut churn = crate::DeltaBatch::new();
        churn.delete(e, vec![0, 1]).insert(e, vec![0, 2]);
        idx.apply_delta(&churn).unwrap();
        assert_eq!(idx.domain_epoch(), 0);
        assert_eq!(idx.version(), 1);

        // 4 never occurred anywhere: inserting 4->0 grows the position-0
        // domain.
        let mut grow = crate::DeltaBatch::new();
        grow.insert(e, vec![4, 0]);
        idx.apply_delta(&grow).unwrap();
        assert_eq!(idx.domain_epoch(), 1);
        assert_eq!(idx.elements_at(e, 0), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn mutation_log_replays_and_bounds() {
        let b = families::cycle(6);
        let e = b.vocabulary().id_of("E").unwrap();
        let mut idx = StructureIndex::new(&b);
        assert_eq!(idx.mutations_since(0).unwrap().len(), 0);
        let mut batch = crate::DeltaBatch::new();
        batch.delete(e, vec![0, 1]);
        let first = idx.apply_delta(&batch).unwrap();
        let mut batch2 = crate::DeltaBatch::new();
        batch2.insert(e, vec![0, 1]);
        let second = idx.apply_delta(&batch2).unwrap();
        let both = idx.mutations_since(0).unwrap();
        assert_eq!(both.len(), 2);
        assert_eq!(both[0], first);
        assert_eq!(both[1], second);
        assert_eq!(idx.mutations_since(1).unwrap(), vec![second]);
        assert_eq!(idx.mutations_since(2).unwrap().len(), 0);
        assert!(idx.mutations_since(99).is_none(), "future version");
        for _ in 0..(MUTATION_LOG_CAP + 4) {
            let mut b = crate::DeltaBatch::new();
            b.delete(e, vec![1, 2]).insert(e, vec![1, 2]);
            idx.apply_delta(&b).unwrap();
        }
        assert!(idx.mutations_since(0).is_none(), "log is bounded");
        assert!(idx
            .mutations_since(idx.version() - MUTATION_LOG_CAP as u64)
            .is_some());
    }

    #[test]
    fn indexes_share_the_structure_and_carry_unique_ids() {
        let b = Arc::new(families::cycle(4));
        let idx = StructureIndex::from_arc(Arc::clone(&b));
        // No copy: the index serves rows out of the caller's allocation.
        assert!(Arc::ptr_eq(idx.structure_arc(), &b));
        let again = StructureIndex::from_arc(b);
        assert_ne!(idx.id(), again.id());
        // A clone of an index keeps the id (it shares the same build).
        assert_eq!(idx.clone().id(), idx.id());
        assert!(idx.heap_bytes() > 0);
    }
}
