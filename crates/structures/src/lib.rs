//! # cq-structures
//!
//! Finite relational structures, homomorphisms, cores, and the structure
//! families used throughout Chen & Müller, *"The Fine Classification of
//! Conjunctive Queries and Parameterized Logarithmic Space Complexity"*
//! (PODS 2013).
//!
//! This crate is the foundation of the `cq-fine` workspace.  It provides:
//!
//! * [`Vocabulary`] — finite sets of relation symbols with arities;
//! * [`Structure`] — finite relational structures over a vocabulary, with
//!   elements identified with `0..n`;
//! * homomorphism machinery ([`homomorphism`]) — existence, enumeration,
//!   counting and embedding search by plain backtracking (the *reference*
//!   implementations against which the clever solvers in `cq-solver` are
//!   validated);
//! * `core_of` (in [`core`]) — computation of the core of a structure
//!   (Section 2.1 of the paper);
//! * structure operations ([`ops`]) — induced substructures, restrictions,
//!   expansions, direct products, disjoint unions, and the `A*` expansion
//!   that attaches a fresh unary singleton relation `C_a` to every element;
//! * the concrete families of Section 2.1 ([`families`]) — directed and
//!   undirected paths `->P_k` / `P_k`, cycles `->C_k` / `C_k`, the binary
//!   tree structures `->B_k` / `B_k`, the trees `T_k`, grids, cliques and
//!   stars;
//! * boolean conjunctive queries ([`cq`]) and the Chandra–Merlin
//!   correspondence between queries and structures;
//! * the hand-rolled binary [`codec`] (`Encode` / `Decode`) behind the
//!   persistent plan store of `cq_core::persist`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod codec;
pub mod core;
pub mod cq;
pub mod delta;
pub mod error;
pub mod families;
pub mod homomorphism;
pub mod index;
pub mod ops;
pub mod structure;
pub mod vocabulary;
pub mod weights;

pub use crate::core::{
    core_computation_count, core_of, global_core_computation_count, is_core, CoreComputation,
};
pub use builder::StructureBuilder;
pub use cq::{Atom, ConjunctiveQuery};
pub use delta::{AppliedDelta, DeltaBatch};
pub use error::StructureError;
pub use homomorphism::{
    answers_bruteforce, count_homomorphisms_bruteforce, embedding_exists, find_embedding,
    find_homomorphism, homomorphism_exists, homomorphisms_iter, is_homomorphism,
    is_partial_homomorphism, PartialHom,
};
pub use index::{index_build_count, structure_hash, StructureIndex};
pub use ops::{direct_product, disjoint_union, relabeled, star_expansion, symmetric_closure};
pub use structure::{Element, Relation, Structure, Tuple};
pub use vocabulary::{RelationSymbol, SymbolId, Vocabulary};
pub use weights::TupleWeights;

/// The size measure `|A|` used by the paper for parameterization:
/// `|τ| + |A| + Σ_R |R^A| · ar(R)`.
///
/// This is re-exported at the crate root because it is the parameter of all
/// the parameterized problems `p-HOM(A)`, `p-EMB(A)`, `p-#HOM(A)`.
pub fn structure_size(a: &Structure) -> usize {
    a.paper_size()
}
