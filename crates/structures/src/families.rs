//! The concrete structure families of Section 2.1 of the paper, plus a few
//! standard graph families used by the experiments.
//!
//! * [`directed_path`] — `->P_k`, universe `[k]`, arcs `(i, i+1)`;
//! * [`path`] — `P_k`, the graph underlying `->P_k`;
//! * [`directed_cycle`] — `->C_k`;
//! * [`cycle`] — `C_k`;
//! * [`directed_binary_tree`] — `->B_k`, universe `{0,1}^{≤k}`, relations
//!   `S0`, `S1`;
//! * [`binary_tree_b`] — `B_k`, with `S0`, `S1` replaced by their symmetric
//!   closures;
//! * [`tree_t`] — `T_k`, the graph underlying `({0,1}^{≤k}, S0 ∪ S1)`;
//! * [`grid`], [`clique`], [`star`], [`caterpillar`] — standard graph
//!   families used in the classification experiments (grids are the excluded
//!   minors for bounded treewidth, Theorem 2.3 (1)).
//!
//! All constructors return plain [`Structure`] values over the graph
//! vocabulary `{E/2}` (or `{S0/2, S1/2}` for the `B` families); element `i`
//! corresponds to the paper's element `i+1` where the paper's universes are
//! `[k]`.

use crate::builder::StructureBuilder;
use crate::structure::Structure;
use crate::vocabulary::Vocabulary;

/// The directed path `->P_k` on `k ≥ 1` vertices: arcs `(i, i+1)` for
/// `i ∈ [k-1]` (the paper requires `k ≥ 2`; we also allow the trivial `k = 1`).
pub fn directed_path(k: usize) -> Structure {
    assert!(k >= 1, "paths need at least one vertex");
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut s = StructureBuilder::new(vocab).with_universe(k);
    for i in 0..k.saturating_sub(1) {
        s.raw_fact(e, vec![i, i + 1]);
    }
    s.build().expect("valid path")
}

/// The undirected path `P_k` (graph underlying `->P_k`).
pub fn path(k: usize) -> Structure {
    assert!(k >= 1);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut s = StructureBuilder::new(vocab).with_universe(k);
    for i in 0..k.saturating_sub(1) {
        s.raw_fact(e, vec![i, i + 1]);
        s.raw_fact(e, vec![i + 1, i]);
    }
    s.build().expect("valid path")
}

/// The directed cycle `->C_k` on `k ≥ 2` vertices: the arcs of `->P_k` plus
/// the closing arc `(k, 1)`.
pub fn directed_cycle(k: usize) -> Structure {
    assert!(k >= 2, "cycles need at least two vertices");
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut s = StructureBuilder::new(vocab).with_universe(k);
    for i in 0..k {
        s.raw_fact(e, vec![i, (i + 1) % k]);
    }
    s.build().expect("valid cycle")
}

/// The undirected cycle `C_k`.
pub fn cycle(k: usize) -> Structure {
    assert!(k >= 2);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut s = StructureBuilder::new(vocab).with_universe(k);
    for i in 0..k {
        let j = (i + 1) % k;
        s.raw_fact(e, vec![i, j]);
        s.raw_fact(e, vec![j, i]);
    }
    s.build().expect("valid cycle")
}

/// Number of binary strings of length at most `k`: `2^{k+1} - 1`.
pub fn binary_universe_size(k: usize) -> usize {
    (1usize << (k + 1)) - 1
}

/// Index of a binary string inside the universe `{0,1}^{≤k}` listed in
/// length-lexicographic order starting from the empty string (index 0).
///
/// With this numbering, string `w` has index `i` iff the binary expansion of
/// `i + 1` (without its leading 1) is `w` — the standard heap layout, so the
/// children of index `i` are `2i + 1` and `2i + 2`.
pub fn binary_string_index(bits: &[u8]) -> usize {
    let mut idx = 0usize;
    for &b in bits {
        idx = 2 * idx + 1 + b as usize;
    }
    idx
}

/// The directed binary-tree structure `->B_k`: universe `{0,1}^{≤k}`, binary
/// relations `S0 = {(x, x0)}` and `S1 = {(x, x1)}` for `x ∈ {0,1}^{≤k-1}`.
pub fn directed_binary_tree(k: usize) -> Structure {
    let n = binary_universe_size(k);
    let vocab = Vocabulary::from_pairs([("S0", 2), ("S1", 2)]).unwrap();
    let s0 = vocab.id_of("S0").unwrap();
    let s1 = vocab.id_of("S1").unwrap();
    let mut b = StructureBuilder::new(vocab).with_universe(n);
    if k > 0 {
        let internal = binary_universe_size(k - 1);
        for x in 0..internal {
            b.raw_fact(s0, vec![x, 2 * x + 1]);
            b.raw_fact(s1, vec![x, 2 * x + 2]);
        }
    }
    b.build().expect("valid binary tree")
}

/// The structure `B_k`: like `->B_k` but with `S0`, `S1` interpreted by the
/// symmetric closures of the respective relations.
pub fn binary_tree_b(k: usize) -> Structure {
    let n = binary_universe_size(k);
    let vocab = Vocabulary::from_pairs([("S0", 2), ("S1", 2)]).unwrap();
    let s0 = vocab.id_of("S0").unwrap();
    let s1 = vocab.id_of("S1").unwrap();
    let mut b = StructureBuilder::new(vocab).with_universe(n);
    if k > 0 {
        let internal = binary_universe_size(k - 1);
        for x in 0..internal {
            b.raw_fact(s0, vec![x, 2 * x + 1]);
            b.raw_fact(s0, vec![2 * x + 1, x]);
            b.raw_fact(s1, vec![x, 2 * x + 2]);
            b.raw_fact(s1, vec![2 * x + 2, x]);
        }
    }
    b.build().expect("valid binary tree")
}

/// The tree `T_k`: the graph (vocabulary `{E/2}`) underlying the directed
/// graph `({0,1}^{≤k}, S0 ∪ S1)` — the complete binary tree of height `k`.
pub fn tree_t(k: usize) -> Structure {
    let n = binary_universe_size(k);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut b = StructureBuilder::new(vocab).with_universe(n);
    if k > 0 {
        let internal = binary_universe_size(k - 1);
        for x in 0..internal {
            for child in [2 * x + 1, 2 * x + 2] {
                b.raw_fact(e, vec![x, child]);
                b.raw_fact(e, vec![child, x]);
            }
        }
    }
    b.build().expect("valid tree")
}

/// The `rows × cols` grid graph (vertices `(r, c)` numbered row-major).
/// Grids are the excluded minors characterizing bounded treewidth
/// (Theorem 2.3 (1), the Excluded Grid Theorem).
pub fn grid(rows: usize, cols: usize) -> Structure {
    assert!(rows >= 1 && cols >= 1);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let idx = |r: usize, c: usize| r * cols + c;
    let mut s = StructureBuilder::new(vocab).with_universe(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                s.raw_fact(e, vec![idx(r, c), idx(r, c + 1)]);
                s.raw_fact(e, vec![idx(r, c + 1), idx(r, c)]);
            }
            if r + 1 < rows {
                s.raw_fact(e, vec![idx(r, c), idx(r + 1, c)]);
                s.raw_fact(e, vec![idx(r + 1, c), idx(r, c)]);
            }
        }
    }
    s.build().expect("valid grid")
}

/// The complete graph (clique) `K_k`.
pub fn clique(k: usize) -> Structure {
    assert!(k >= 1);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut s = StructureBuilder::new(vocab).with_universe(k);
    for i in 0..k {
        for j in 0..k {
            if i != j {
                s.raw_fact(e, vec![i, j]);
            }
        }
    }
    s.build().expect("valid clique")
}

/// The star `K_{1,k}`: a centre (element 0) adjacent to `k` leaves.  Stars
/// have tree depth 2 (centre above leaves), so classes of stars stay in the
/// para-L degree of Theorem 3.1 (3).
pub fn star(leaves: usize) -> Structure {
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut s = StructureBuilder::new(vocab).with_universe(leaves + 1);
    for l in 1..=leaves {
        s.raw_fact(e, vec![0, l]);
        s.raw_fact(e, vec![l, 0]);
    }
    s.build().expect("valid star")
}

/// A caterpillar: a spine path with `spine` vertices, each carrying `legs`
/// pendant leaves.  Caterpillars have pathwidth 1 but unbounded tree depth as
/// the spine grows — a natural witness family for the `PATH` degree.
pub fn caterpillar(spine: usize, legs: usize) -> Structure {
    assert!(spine >= 1);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut s = StructureBuilder::new(vocab).with_universe(spine + spine * legs);
    for i in 0..spine.saturating_sub(1) {
        s.raw_fact(e, vec![i, i + 1]);
        s.raw_fact(e, vec![i + 1, i]);
    }
    for i in 0..spine {
        for l in 0..legs {
            let leaf = spine + i * legs + l;
            s.raw_fact(e, vec![i, leaf]);
            s.raw_fact(e, vec![leaf, i]);
        }
    }
    s.build().expect("valid caterpillar")
}

/// The complete bipartite graph `K_{m,n}` — the query shape whose embedding
/// problem the paper mentions as famously open (Section 7).
pub fn complete_bipartite(m: usize, n: usize) -> Structure {
    assert!(m >= 1 && n >= 1);
    let vocab = Vocabulary::graph();
    let e = vocab.id_of("E").unwrap();
    let mut s = StructureBuilder::new(vocab).with_universe(m + n);
    for i in 0..m {
        for j in 0..n {
            s.raw_fact(e, vec![i, m + j]);
            s.raw_fact(e, vec![m + j, i]);
        }
    }
    s.build().expect("valid complete bipartite graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::homomorphism_exists;

    #[test]
    fn directed_path_shape() {
        let p = directed_path(4);
        assert_eq!(p.universe_size(), 4);
        let e = p.vocabulary().id_of("E").unwrap();
        assert_eq!(p.relation(e).len(), 3);
        assert!(p.contains(e, &[0, 1]));
        assert!(!p.contains(e, &[1, 0]));
        assert!(p.is_digraph());
        assert!(!p.is_graph());
    }

    #[test]
    fn undirected_path_is_graph() {
        let p = path(5);
        assert!(p.is_graph());
        assert_eq!(p.gaifman_edges().len(), 4);
    }

    #[test]
    fn cycles_close_up() {
        let c = directed_cycle(3);
        let e = c.vocabulary().id_of("E").unwrap();
        assert!(c.contains(e, &[2, 0]));
        assert_eq!(c.relation(e).len(), 3);
        let uc = cycle(4);
        assert!(uc.is_graph());
        assert_eq!(uc.gaifman_edges().len(), 4);
    }

    #[test]
    fn binary_tree_sizes() {
        assert_eq!(binary_universe_size(0), 1);
        assert_eq!(binary_universe_size(2), 7);
        let b2 = directed_binary_tree(2);
        assert_eq!(b2.universe_size(), 7);
        let s0 = b2.vocabulary().id_of("S0").unwrap();
        let s1 = b2.vocabulary().id_of("S1").unwrap();
        // 3 internal nodes, each with one S0 and one S1 child.
        assert_eq!(b2.relation(s0).len(), 3);
        assert_eq!(b2.relation(s1).len(), 3);
        // B_0 has a single element and no edges.
        let b0 = directed_binary_tree(0);
        assert_eq!(b0.universe_size(), 1);
        assert_eq!(b0.tuple_count(), 0);
    }

    #[test]
    fn binary_string_indexing_matches_heap_layout() {
        assert_eq!(binary_string_index(&[]), 0);
        assert_eq!(binary_string_index(&[0]), 1);
        assert_eq!(binary_string_index(&[1]), 2);
        assert_eq!(binary_string_index(&[0, 0]), 3);
        assert_eq!(binary_string_index(&[1, 1]), 6);
    }

    #[test]
    fn symmetric_b_and_tree_t() {
        let b1 = binary_tree_b(1);
        let s0 = b1.vocabulary().id_of("S0").unwrap();
        assert!(b1.contains(s0, &[0, 1]));
        assert!(b1.contains(s0, &[1, 0]));
        let t2 = tree_t(2);
        assert!(t2.is_graph());
        // A tree on 7 vertices has 6 edges.
        assert_eq!(t2.gaifman_edges().len(), 6);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.universe_size(), 12);
        assert!(g.is_graph());
        // Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
        assert_eq!(g.gaifman_edges().len(), 17);
        let line = grid(1, 5);
        assert_eq!(line.gaifman_edges().len(), 4);
    }

    #[test]
    fn clique_star_caterpillar() {
        let k4 = clique(4);
        assert_eq!(k4.gaifman_edges().len(), 6);
        assert!(k4.is_graph());
        let s = star(5);
        assert_eq!(s.universe_size(), 6);
        assert_eq!(s.gaifman_edges().len(), 5);
        let cat = caterpillar(3, 2);
        assert_eq!(cat.universe_size(), 9);
        assert_eq!(cat.gaifman_edges().len(), 2 + 6);
        let kb = complete_bipartite(2, 3);
        assert_eq!(kb.gaifman_edges().len(), 6);
        assert!(kb.is_graph());
    }

    #[test]
    fn clique_homomorphism_ordering() {
        // K_3 -> K_4 but not K_4 -> K_3.
        assert!(homomorphism_exists(&clique(3), &clique(4)));
        assert!(!homomorphism_exists(&clique(4), &clique(3)));
    }

    #[test]
    fn grid_maps_to_single_edge() {
        // Grids are bipartite: they map homomorphically onto one edge.
        let g = grid(3, 3);
        let k2 = path(2);
        assert!(homomorphism_exists(&g, &k2));
    }

    #[test]
    #[should_panic]
    fn zero_length_path_panics() {
        let _ = path(0);
    }

    #[test]
    #[should_panic]
    fn too_short_cycle_panics() {
        let _ = cycle(1);
    }
}
