//! Vocabularies: finite sets of relation symbols with associated arities.
//!
//! A vocabulary `τ` in the paper is a finite set of relation symbols, each
//! with an arity (Section 2.1).  We intern symbols by name and address them
//! by a dense [`SymbolId`] so that structures can store their relations in a
//! `Vec` parallel to the vocabulary.

use crate::error::StructureError;
use std::collections::HashMap;
use std::fmt;

/// Dense index of a relation symbol within its [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The index as a `usize`, for indexing parallel vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A relation symbol: a name together with an arity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelationSymbol {
    /// Human-readable name (e.g. `"E"`, `"S0"`, `"C_3"`).
    pub name: String,
    /// Number of argument positions.
    pub arity: usize,
}

impl RelationSymbol {
    /// Create a new relation symbol.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        RelationSymbol {
            name: name.into(),
            arity,
        }
    }
}

impl fmt::Display for RelationSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// A finite vocabulary: an ordered list of relation symbols with a name index.
///
/// The order of symbols is significant only in that [`SymbolId`]s are assigned
/// in insertion order; two vocabularies are *compatible* when they contain the
/// same named symbols with the same arities, regardless of order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    symbols: Vec<RelationSymbol>,
    by_name: HashMap<String, SymbolId>,
}

impl Vocabulary {
    /// The empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Build a vocabulary from `(name, arity)` pairs.
    ///
    /// Duplicate names with identical arities are collapsed; duplicate names
    /// with different arities produce an error.
    pub fn from_pairs<I, S>(pairs: I) -> Result<Self, StructureError>
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut v = Vocabulary::new();
        for (name, arity) in pairs {
            v.add(name, arity)?;
        }
        Ok(v)
    }

    /// A vocabulary with a single binary symbol `E` — the vocabulary of
    /// (directed) graphs as used throughout the paper.
    pub fn graph() -> Self {
        Vocabulary::from_pairs([("E", 2)]).expect("static vocabulary")
    }

    /// Add a relation symbol, returning its [`SymbolId`].
    ///
    /// Adding a symbol that already exists with the same arity is a no-op
    /// returning the existing id; a conflicting arity is an error.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        arity: usize,
    ) -> Result<SymbolId, StructureError> {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            if self.symbols[id.index()].arity == arity {
                return Ok(id);
            }
            return Err(StructureError::DuplicateSymbol(name));
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.symbols.push(RelationSymbol { name, arity });
        Ok(id)
    }

    /// Number of relation symbols `|τ|`.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// `true` when the vocabulary has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Look up a symbol id by name.
    pub fn id_of(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol id to the symbol.
    pub fn symbol(&self, id: SymbolId) -> &RelationSymbol {
        &self.symbols[id.index()]
    }

    /// Arity of a symbol.
    pub fn arity(&self, id: SymbolId) -> usize {
        self.symbols[id.index()].arity
    }

    /// Name of a symbol.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.symbols[id.index()].name
    }

    /// Iterate over all `(SymbolId, &RelationSymbol)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &RelationSymbol)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymbolId(i as u32), s))
    }

    /// All symbol ids in order.
    pub fn ids(&self) -> impl Iterator<Item = SymbolId> {
        (0..self.symbols.len() as u32).map(SymbolId)
    }

    /// The maximum arity over all symbols, or 0 for the empty vocabulary.
    ///
    /// Classes of bounded arity (Section 2.1) are classes where this value is
    /// uniformly bounded over all member structures.
    pub fn max_arity(&self) -> usize {
        self.symbols.iter().map(|s| s.arity).max().unwrap_or(0)
    }

    /// Whether `other` interprets exactly the same named symbols with the
    /// same arities (order-insensitive).
    pub fn same_symbols(&self, other: &Vocabulary) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.symbols.iter().all(|s| {
            other
                .id_of(&s.name)
                .map(|id| other.arity(id) == s.arity)
                .unwrap_or(false)
        })
    }

    /// Whether every symbol of `self` appears (same arity) in `other`.
    pub fn subset_of(&self, other: &Vocabulary) -> bool {
        self.symbols.iter().all(|s| {
            other
                .id_of(&s.name)
                .map(|id| other.arity(id) == s.arity)
                .unwrap_or(false)
        })
    }

    /// Construct the union of two vocabularies.  Fails when a name appears in
    /// both with different arities.
    pub fn union(&self, other: &Vocabulary) -> Result<Vocabulary, StructureError> {
        let mut v = self.clone();
        for s in &other.symbols {
            v.add(s.name.clone(), s.arity)?;
        }
        Ok(v)
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut v = Vocabulary::new();
        let e = v.add("E", 2).unwrap();
        let c = v.add("C", 1).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.id_of("E"), Some(e));
        assert_eq!(v.id_of("C"), Some(c));
        assert_eq!(v.arity(e), 2);
        assert_eq!(v.name(c), "C");
        assert_eq!(v.id_of("missing"), None);
    }

    #[test]
    fn duplicate_same_arity_is_noop() {
        let mut v = Vocabulary::new();
        let a = v.add("E", 2).unwrap();
        let b = v.add("E", 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn duplicate_conflicting_arity_errors() {
        let mut v = Vocabulary::new();
        v.add("E", 2).unwrap();
        assert_eq!(
            v.add("E", 3),
            Err(StructureError::DuplicateSymbol("E".into()))
        );
    }

    #[test]
    fn graph_vocabulary() {
        let v = Vocabulary::graph();
        assert_eq!(v.len(), 1);
        assert_eq!(v.arity(v.id_of("E").unwrap()), 2);
        assert_eq!(v.max_arity(), 2);
    }

    #[test]
    fn same_symbols_is_order_insensitive() {
        let a = Vocabulary::from_pairs([("E", 2), ("C", 1)]).unwrap();
        let b = Vocabulary::from_pairs([("C", 1), ("E", 2)]).unwrap();
        assert!(a.same_symbols(&b));
        assert!(b.same_symbols(&a));
        let c = Vocabulary::from_pairs([("C", 2), ("E", 2)]).unwrap();
        assert!(!a.same_symbols(&c));
    }

    #[test]
    fn subset_and_union() {
        let a = Vocabulary::from_pairs([("E", 2)]).unwrap();
        let b = Vocabulary::from_pairs([("E", 2), ("C", 1)]).unwrap();
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        let u = a.union(&b).unwrap();
        assert!(u.same_symbols(&b));
        let conflicting = Vocabulary::from_pairs([("E", 3)]).unwrap();
        assert!(a.union(&conflicting).is_err());
    }

    #[test]
    fn display_formats() {
        let v = Vocabulary::from_pairs([("E", 2), ("C", 1)]).unwrap();
        let s = v.to_string();
        assert!(s.contains("E/2"));
        assert!(s.contains("C/1"));
        assert_eq!(RelationSymbol::new("R", 3).to_string(), "R/3");
    }

    #[test]
    fn max_arity_empty() {
        assert_eq!(Vocabulary::new().max_arity(), 0);
        assert!(Vocabulary::new().is_empty());
    }
}
