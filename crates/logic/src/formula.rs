//! First-order formula AST over a relational vocabulary, with the syntactic
//! measures the paper uses: quantifier rank, size, free variables, and
//! membership in the `{∧,∃}` fragment.

use std::collections::BTreeSet;
use std::fmt;

/// The two quantifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantifierKind {
    /// Existential quantification `∃x`.
    Exists,
    /// Universal quantification `∀x`.
    Forall,
}

/// A first-order formula over relational atoms and equality, with named
/// variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// An atom `R(x_1, …, x_r)`.
    Atom {
        /// Relation symbol name.
        relation: String,
        /// Argument variables.
        vars: Vec<String>,
    },
    /// Equality `x = y`.
    Equal(String, String),
    /// The constant true (empty conjunction).
    True,
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of zero or more formulas.
    And(Vec<Formula>),
    /// Disjunction of zero or more formulas.
    Or(Vec<Formula>),
    /// Quantified formula.
    Quantified {
        /// The quantifier.
        kind: QuantifierKind,
        /// The bound variable.
        var: String,
        /// The body.
        body: Box<Formula>,
    },
}

impl Formula {
    /// Convenience constructor for an atom.
    pub fn atom<S: AsRef<str>>(relation: &str, vars: &[S]) -> Formula {
        Formula::Atom {
            relation: relation.to_string(),
            vars: vars.iter().map(|v| v.as_ref().to_string()).collect(),
        }
    }

    /// Convenience constructor for `∃var. body`.
    pub fn exists(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Quantified {
            kind: QuantifierKind::Exists,
            var: var.into(),
            body: Box::new(body),
        }
    }

    /// Convenience constructor for `∀var. body`.
    pub fn forall(var: impl Into<String>, body: Formula) -> Formula {
        Formula::Quantified {
            kind: QuantifierKind::Forall,
            var: var.into(),
            body: Box::new(body),
        }
    }

    /// Conjunction that flattens trivial cases.
    pub fn and(parts: Vec<Formula>) -> Formula {
        match parts.len() {
            0 => Formula::True,
            1 => parts.into_iter().next().unwrap(),
            _ => Formula::And(parts),
        }
    }

    /// The quantifier rank `qr(φ)` (Section 3.2).
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::Atom { .. } | Formula::Equal(_, _) | Formula::True => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_rank()).max().unwrap_or(0)
            }
            Formula::Quantified { body, .. } => 1 + body.quantifier_rank(),
        }
    }

    /// The number of AST nodes — the `|φ|` of Lemma 3.11 up to a constant.
    pub fn size(&self) -> usize {
        match self {
            Formula::Atom { vars, .. } => 1 + vars.len(),
            Formula::Equal(_, _) => 3,
            Formula::True => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(|f| f.size()).sum::<usize>(),
            Formula::Quantified { body, .. } => 2 + body.size(),
        }
    }

    /// The maximum arity of a relation symbol occurring in the formula
    /// (`ar(φ)` of Lemma 3.11).
    pub fn max_arity(&self) -> usize {
        match self {
            Formula::Atom { vars, .. } => vars.len(),
            Formula::Equal(_, _) | Formula::True => 0,
            Formula::Not(f) => f.max_arity(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.max_arity()).max().unwrap_or(0)
            }
            Formula::Quantified { body, .. } => body.max_arity(),
        }
    }

    /// The free variables of the formula.
    pub fn free_variables(&self) -> BTreeSet<String> {
        match self {
            Formula::Atom { vars, .. } => vars.iter().cloned().collect(),
            Formula::Equal(a, b) => [a.clone(), b.clone()].into_iter().collect(),
            Formula::True => BTreeSet::new(),
            Formula::Not(f) => f.free_variables(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().flat_map(|f| f.free_variables()).collect()
            }
            Formula::Quantified { var, body, .. } => {
                let mut fv = body.free_variables();
                fv.remove(var);
                fv
            }
        }
    }

    /// Is the formula a sentence (no free variables)?
    pub fn is_sentence(&self) -> bool {
        self.free_variables().is_empty()
    }

    /// Is the formula in the `{∧,∃}` fragment (built from atoms, conjunction
    /// and existential quantification only — no equality, negation,
    /// disjunction or universal quantification)?  Section 3.2 calls sentences
    /// of this shape `{∧,∃}`-sentences.
    pub fn is_and_exists(&self) -> bool {
        match self {
            Formula::Atom { .. } | Formula::True => true,
            Formula::Equal(_, _) | Formula::Not(_) | Formula::Or(_) => false,
            Formula::And(fs) => fs.iter().all(|f| f.is_and_exists()),
            Formula::Quantified { kind, body, .. } => {
                *kind == QuantifierKind::Exists && body.is_and_exists()
            }
        }
    }

    /// All atoms occurring in the formula, in syntactic order.
    pub fn atoms(&self) -> Vec<&Formula> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Formula>) {
        match self {
            Formula::Atom { .. } => out.push(self),
            Formula::Equal(_, _) | Formula::True => {}
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
            Formula::Quantified { body, .. } => body.collect_atoms(out),
        }
    }

    /// All variables that are quantified somewhere in the formula, in
    /// quantification order (outermost first, left to right).
    pub fn quantified_variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_quantified(&mut out);
        out
    }

    fn collect_quantified(&self, out: &mut Vec<String>) {
        match self {
            Formula::Atom { .. } | Formula::Equal(_, _) | Formula::True => {}
            Formula::Not(f) => f.collect_quantified(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_quantified(out);
                }
            }
            Formula::Quantified { var, body, .. } => {
                out.push(var.clone());
                body.collect_quantified(out);
            }
        }
    }

    /// Does any variable get quantified twice (used by Theorem 3.12, which
    /// assumes variables are quantified at most once)?
    pub fn has_repeated_quantification(&self) -> bool {
        let qs = self.quantified_variables();
        let set: BTreeSet<&String> = qs.iter().collect();
        set.len() != qs.len()
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom { relation, vars } => write!(f, "{relation}({})", vars.join(",")),
            Formula::Equal(a, b) => write!(f, "{a}={b}"),
            Formula::True => write!(f, "⊤"),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Quantified { kind, var, body } => {
                let q = match kind {
                    QuantifierKind::Exists => "∃",
                    QuantifierKind::Forall => "∀",
                };
                write!(f, "{q}{var}.{body}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Formula {
        // ∃x ∃y ∃z (E(x,y) ∧ E(y,z))
        Formula::exists(
            "x",
            Formula::exists(
                "y",
                Formula::exists(
                    "z",
                    Formula::And(vec![
                        Formula::atom("E", &["x", "y"]),
                        Formula::atom("E", &["y", "z"]),
                    ]),
                ),
            ),
        )
    }

    #[test]
    fn quantifier_rank_and_size() {
        let f = chain();
        assert_eq!(f.quantifier_rank(), 3);
        assert!(f.size() > 5);
        assert_eq!(f.max_arity(), 2);
        assert_eq!(Formula::True.quantifier_rank(), 0);
        let nested = Formula::And(vec![
            Formula::exists("x", Formula::atom("P", &["x"])),
            Formula::exists("y", Formula::exists("z", Formula::atom("E", &["y", "z"]))),
        ]);
        assert_eq!(nested.quantifier_rank(), 2);
    }

    #[test]
    fn free_variables_and_sentences() {
        let open = Formula::atom("E", &["x", "y"]);
        assert_eq!(open.free_variables().len(), 2);
        assert!(!open.is_sentence());
        assert!(chain().is_sentence());
        let partly = Formula::exists("x", Formula::atom("E", &["x", "y"]));
        assert_eq!(
            partly.free_variables().into_iter().collect::<Vec<_>>(),
            vec!["y".to_string()]
        );
        assert!(Formula::True.is_sentence());
        let eq = Formula::Equal("a".into(), "b".into());
        assert_eq!(eq.free_variables().len(), 2);
    }

    #[test]
    fn and_exists_fragment_recognition() {
        assert!(chain().is_and_exists());
        assert!(Formula::True.is_and_exists());
        assert!(!Formula::Not(Box::new(Formula::True)).is_and_exists());
        assert!(!Formula::Or(vec![Formula::True]).is_and_exists());
        assert!(!Formula::forall("x", Formula::atom("P", &["x"])).is_and_exists());
        assert!(!Formula::Equal("x".into(), "x".into()).is_and_exists());
    }

    #[test]
    fn and_flattening() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        let single = Formula::and(vec![Formula::atom("P", &["x"])]);
        assert_eq!(single, Formula::atom("P", &["x"]));
        let double = Formula::and(vec![Formula::True, Formula::True]);
        assert!(matches!(double, Formula::And(_)));
    }

    #[test]
    fn atoms_and_quantified_variables() {
        let f = chain();
        assert_eq!(f.atoms().len(), 2);
        assert_eq!(f.quantified_variables(), vec!["x", "y", "z"]);
        assert!(!f.has_repeated_quantification());
        let rep = Formula::exists("x", Formula::exists("x", Formula::atom("P", &["x"])));
        assert!(rep.has_repeated_quantification());
    }

    #[test]
    fn display_roundtrip_smoke() {
        let f = chain();
        let s = f.to_string();
        assert!(s.contains("∃x"));
        assert!(s.contains("E(x,y)"));
        assert!(s.contains('∧'));
        let o = Formula::Or(vec![Formula::True, Formula::Equal("a".into(), "b".into())]);
        assert!(o.to_string().contains('∨'));
        assert!(Formula::forall("x", Formula::True)
            .to_string()
            .contains('∀'));
        assert!(Formula::Not(Box::new(Formula::True))
            .to_string()
            .contains('¬'));
    }
}
