//! Canonical conjunctions of structures and canonical structures of
//! `{∧,∃}`-sentences (the two directions of the Chandra–Merlin
//! correspondence used in Section 3.2 and Theorem 3.12), plus the
//! isomorphism-invariant [`query_fingerprint`] the prepared-query engine
//! keys its plan cache on.

use crate::formula::Formula;
use cq_graphs::gaifman_graph;
use cq_structures::{Structure, StructureError, Vocabulary};
use std::collections::HashMap;

/// The variable name used for element `a` in canonical conjunctions.
pub fn element_variable(a: usize) -> String {
    format!("x{a}")
}

/// The *canonical conjunction* of a structure `A` (Section 3.2): a
/// quantifier-free conjunction in the variables `x_a`, `a ∈ A`, containing
/// the conjunct `R x_{a_1} … x_{a_r}` for every tuple of every relation.
///
/// It is satisfiable in `B` (by some assignment of the `x_a`) iff there is a
/// homomorphism from `A` to `B`.
pub fn canonical_conjunction(a: &Structure) -> Formula {
    let mut conjuncts = Vec::new();
    for (sym, t) in a.all_tuples() {
        let vars: Vec<String> = t.iter().map(|&e| element_variable(e as usize)).collect();
        conjuncts.push(Formula::atom(a.vocabulary().name(sym), &vars));
    }
    Formula::and(conjuncts)
}

/// The canonical conjunction of the substructure induced by a subset of
/// elements (only tuples entirely inside the subset are kept) — used by the
/// Lemma 3.3 construction, which takes canonical conjunctions of the
/// structures `⟨P_c⟩_{A_0}` induced by root-to-`c` paths.
pub fn canonical_conjunction_of_subset(a: &Structure, subset: &[usize]) -> Formula {
    let inside = |e: usize| subset.contains(&e);
    let mut conjuncts = Vec::new();
    for (sym, t) in a.all_tuples() {
        if t.iter().all(|&e| inside(e as usize)) {
            let vars: Vec<String> = t.iter().map(|&e| element_variable(e as usize)).collect();
            conjuncts.push(Formula::atom(a.vocabulary().name(sym), &vars));
        }
    }
    Formula::and(conjuncts)
}

/// The existential closure of the canonical conjunction: a `{∧,∃}`-sentence
/// that corresponds to `A` (quantifier rank `|A|` — the tree-depth-aware
/// construction of Lemma 3.3 achieves rank `td + 1` instead and lives in
/// [`crate::treedepth_sentence`]).
pub fn naive_sentence(a: &Structure) -> Formula {
    let mut f = canonical_conjunction(a);
    for e in (0..a.universe_size()).rev() {
        f = Formula::exists(element_variable(e), f);
    }
    f
}

/// The canonical structure of a `{∧,∃}`-sentence (Theorem 3.12): prenex the
/// sentence, take one element per quantified variable and one tuple per atom.
///
/// Preconditions checked: the formula must be a `{∧,∃}`-sentence and no
/// variable may be quantified twice (the paper assumes this w.l.o.g. after
/// renaming).  Free occurrences of unquantified variables are rejected.
pub fn canonical_structure_of_sentence(phi: &Formula) -> Result<Structure, StructureError> {
    assert!(
        phi.is_and_exists(),
        "canonical_structure_of_sentence expects a {{∧,∃}}-sentence"
    );
    assert!(
        !phi.has_repeated_quantification(),
        "variables must be quantified at most once (rename first)"
    );
    assert!(phi.is_sentence(), "the formula must be a sentence");
    let variables = phi.quantified_variables();
    let index: HashMap<&str, usize> = variables
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();
    // Vocabulary from the atoms.
    let mut vocab = Vocabulary::new();
    for atom in phi.atoms() {
        if let Formula::Atom { relation, vars } = atom {
            vocab.add(relation.clone(), vars.len())?;
        }
    }
    let universe = variables.len().max(1);
    let mut s = Structure::new(vocab.clone(), universe)?;
    for atom in phi.atoms() {
        if let Formula::Atom { relation, vars } = atom {
            let sym = vocab.id_of(relation).expect("built from atoms");
            let tuple: Vec<usize> = vars
                .iter()
                .map(|v| {
                    *index
                        .get(v.as_str())
                        .expect("sentence: every atom variable is quantified")
                })
                .collect();
            s.add_tuple(sym, tuple)?;
        }
    }
    Ok(s.with_labels(if variables.is_empty() {
        vec!["_".to_string()]
    } else {
        variables
    }))
}

/// FNV-1a, used for all fingerprint hashing: deterministic across runs and
/// platforms (unlike `DefaultHasher`, whose algorithm is unspecified).
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn hash_str(s: &str) -> u64 {
    fnv1a(s.bytes().map(|b| b as u64))
}

/// An isomorphism-invariant fingerprint of a query structure — the key of
/// the prepared-query engine's plan cache.
///
/// Two isomorphic structures (the same query written with different element
/// orderings) always receive the same fingerprint, because the fingerprint
/// is built exclusively from label-free data: the vocabulary signature, the
/// universe size, and the sorted multiset of per-element colours produced by
/// Weisfeiler–Leman-style refinement seeded with each element's relational
/// incidences (relation name, arity, position, multiplicity) and iterated
/// over the Gaifman graph.  Tuple colours — the relation name combined with
/// the refined colours of the tuple's elements in order — enter the final
/// hash as a sorted multiset as well.
///
/// The converse does **not** hold in general (this is a hash, and WL
/// refinement is not a complete isomorphism test), so cache lookups must
/// confirm a candidate entry semantically — the engine verifies homomorphic
/// equivalence, which is exactly the equivalence that preserves `p-HOM`
/// answers — before reusing a plan.  A fingerprint collision therefore
/// costs a cache miss at worst, never a wrong answer.
pub fn query_fingerprint(a: &Structure) -> u64 {
    let n = a.universe_size();
    let g = gaifman_graph(a);

    // Initial colour: the sorted multiset of (relation, arity, position)
    // incidences of each element.
    let mut incidences: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (sym, t) in a.all_tuples() {
        let name = hash_str(a.vocabulary().name(sym));
        for (pos, &e) in t.iter().enumerate() {
            incidences[e as usize].push(fnv1a([name, t.len() as u64, pos as u64]));
        }
    }
    let mut colors: Vec<u64> = incidences
        .into_iter()
        .map(|mut inc| {
            inc.sort_unstable();
            fnv1a(inc)
        })
        .collect();

    // Three refinement rounds over the Gaifman graph: enough to separate the
    // small parameter-sized queries the cache sees in practice, cheap enough
    // to be negligible next to a single backtracking step.
    for _ in 0..3 {
        let mut next = Vec::with_capacity(n);
        for v in 0..n {
            let mut neigh: Vec<u64> = g.neighbors(v).map(|w| colors[w]).collect();
            neigh.sort_unstable();
            neigh.insert(0, colors[v]);
            next.push(fnv1a(neigh));
        }
        colors = next;
    }

    // Tuple colours: relation name + refined element colours in order.
    let mut tuple_colors: Vec<u64> = a
        .all_tuples()
        .map(|(sym, t)| {
            let name = hash_str(a.vocabulary().name(sym));
            fnv1a(std::iter::once(name).chain(t.iter().map(|&e| colors[e as usize])))
        })
        .collect();
    tuple_colors.sort_unstable();

    // Vocabulary signature: sorted (name, arity) pairs.
    let mut vocab_sig: Vec<u64> = a
        .vocabulary()
        .iter()
        .map(|(sym, _)| {
            fnv1a([
                hash_str(a.vocabulary().name(sym)),
                a.vocabulary().arity(sym) as u64,
            ])
        })
        .collect();
    vocab_sig.sort_unstable();

    colors.sort_unstable();
    fnv1a(
        std::iter::once(n as u64)
            .chain(vocab_sig)
            .chain(colors)
            .chain(tuple_colors),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, homomorphism_exists};

    #[test]
    fn canonical_conjunction_of_directed_path() {
        let p3 = families::directed_path(3);
        let f = canonical_conjunction(&p3);
        assert_eq!(f.quantifier_rank(), 0);
        assert_eq!(f.atoms().len(), 2);
        assert!(f.is_and_exists());
        let s = f.to_string();
        assert!(s.contains("E(x0,x1)"));
        assert!(s.contains("E(x1,x2)"));
    }

    #[test]
    fn canonical_conjunction_of_edgeless_structure_is_true() {
        let single = cq_structures::Structure::new(Vocabulary::graph(), 1).unwrap();
        assert_eq!(canonical_conjunction(&single), Formula::True);
    }

    #[test]
    fn subset_conjunction_keeps_only_internal_tuples() {
        let p4 = families::directed_path(4);
        let f = canonical_conjunction_of_subset(&p4, &[0, 1]);
        assert_eq!(f.atoms().len(), 1);
        let g = canonical_conjunction_of_subset(&p4, &[0, 2]);
        assert_eq!(g, Formula::True);
        let all = canonical_conjunction_of_subset(&p4, &[0, 1, 2, 3]);
        assert_eq!(all.atoms().len(), 3);
    }

    #[test]
    fn naive_sentence_has_rank_equal_to_universe() {
        let c4 = families::cycle(4);
        let f = naive_sentence(&c4);
        assert!(f.is_sentence());
        assert!(f.is_and_exists());
        assert_eq!(f.quantifier_rank(), 4);
    }

    #[test]
    fn canonical_structure_roundtrip() {
        // Structure -> sentence -> structure preserves homomorphism behaviour.
        for a in [
            families::directed_path(4),
            families::cycle(5),
            families::grid(2, 2),
        ] {
            let phi = naive_sentence(&a);
            let back = canonical_structure_of_sentence(&phi).unwrap();
            for b in [
                families::directed_path(4),
                families::cycle(5),
                families::cycle(3),
                families::clique(3),
                families::grid(2, 3),
            ] {
                assert_eq!(
                    homomorphism_exists(&a, &b),
                    homomorphism_exists(&back, &b),
                    "mismatch for target {b}"
                );
            }
        }
    }

    #[test]
    fn canonical_structure_of_trivial_sentence() {
        let s = canonical_structure_of_sentence(&Formula::True).unwrap();
        assert_eq!(s.universe_size(), 1);
        assert_eq!(s.tuple_count(), 0);
    }

    #[test]
    #[should_panic]
    fn non_pp_sentence_rejected() {
        let phi = Formula::forall("x", Formula::atom("P", &["x"]));
        let _ = canonical_structure_of_sentence(&phi);
    }

    #[test]
    #[should_panic]
    fn open_formula_rejected() {
        let phi = Formula::atom("P", &["x"]);
        let _ = canonical_structure_of_sentence(&phi);
    }

    #[test]
    fn fingerprint_is_invariant_under_relabelling() {
        let base = [
            families::cycle(7),
            families::directed_path(6),
            star_expansion(&families::path(4)),
            families::grid(2, 3),
        ];
        for a in &base {
            let n = a.universe_size();
            // A fixed scramble plus the reversal, applied to every family.
            let reversal: Vec<usize> = (0..n).rev().collect();
            let scramble: Vec<usize> = (0..n).map(|i| (i * 5 + 3) % n).collect();
            let fp = query_fingerprint(a);
            assert_eq!(fp, query_fingerprint(&relabeled(a, &reversal)), "{a}");
            if scramble
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                == n
            {
                assert_eq!(fp, query_fingerprint(&relabeled(a, &scramble)), "{a}");
            }
        }
    }

    #[test]
    fn fingerprint_separates_distinct_queries() {
        let queries = [
            families::cycle(6),
            families::cycle(7),
            families::path(7),
            families::directed_path(7),
            families::star(6),
            families::clique(4),
            star_expansion(&families::path(4)),
        ];
        let fps: Vec<u64> = queries.iter().map(query_fingerprint).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "{} vs {}", queries[i], queries[j]);
            }
        }
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let a = star_expansion(&families::tree_t(2));
        assert_eq!(query_fingerprint(&a), query_fingerprint(&a.clone()));
    }

    use cq_structures::ops::relabeled;
    use cq_structures::{star_expansion, Vocabulary};
}
