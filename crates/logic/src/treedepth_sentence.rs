//! The Lemma 3.3 compilation: from a structure whose core has tree depth
//! `≤ w` to a corresponding `{∧,∃}`-sentence of quantifier rank `≤ w + 1`.
//!
//! Together with the metered model checker (Lemma 3.11) this gives statement
//! (3) of the Classification Theorem: `p-HOM(A) ∈ para-L` whenever `core(A)`
//! has bounded tree depth.  Theorem 3.12 states the converse — the existence
//! of a corresponding `{∧,∃}`-sentence of quantifier rank `≤ w + 1`
//! characterizes `td(core(A)) ≤ w`; the canonical-structure direction of that
//! theorem is implemented by
//! [`crate::canonical::canonical_structure_of_sentence`].
//!
//! Construction (proof of Lemma 3.3): compute the core `A_0` of `A`; for
//! every connected component `C` of the Gaifman graph of `A_0`, take a rooted
//! tree `T` on `C` of height `td(C)` whose closure contains every edge of
//! `⟨C⟩_{A_0}` (an optimal elimination tree); then define, for `c ∈ T`,
//!
//! * `φ_c` = canonical conjunction of `⟨P_c⟩_{A_0}` when `c` is a leaf
//!   (`P_c` the root-to-`c` path), and
//! * `φ_c = ⋀_d ∃x_d φ_d` over the children `d` of `c` otherwise;
//!
//! finally `φ_A = ⋀_r ∃x_r φ_r` over the roots.

use crate::canonical::{canonical_conjunction_of_subset, element_variable};
use crate::formula::Formula;
use cq_decomp::treedepth::treedepth_exact;
use cq_decomp::EliminationForest;
use cq_graphs::gaifman_graph;
use cq_structures::{core_of, Structure};

/// The result of compiling a structure into a corresponding
/// `{∧,∃}`-sentence.
#[derive(Debug, Clone)]
pub struct TreeDepthSentence {
    /// The sentence; true in `B` iff the original structure maps
    /// homomorphically into `B`.
    pub sentence: Formula,
    /// The core that was compiled (the sentence's variables are indexed by
    /// its elements).
    pub core: Structure,
    /// The exact tree depth of the core's Gaifman graph.
    pub treedepth: usize,
    /// The elimination forest used for the compilation.
    pub forest: EliminationForest,
}

/// Compile a structure `A` into a corresponding `{∧,∃}`-sentence via its
/// core (Lemma 3.3).  Exponential in `|A|` (core computation and exact tree
/// depth); intended for parameter-sized query structures.
pub fn corresponding_sentence(a: &Structure) -> TreeDepthSentence {
    let core = core_of(a).core;
    corresponding_sentence_for_core(&core)
}

/// Compile a structure that is *already a core* (skips the core
/// computation).  Callers must ensure the input is a core, otherwise the
/// quantifier-rank guarantee refers to the input rather than its core.
pub fn corresponding_sentence_for_core(core: &Structure) -> TreeDepthSentence {
    let g = gaifman_graph(core);
    let (depth, forest) = treedepth_exact(&g);
    corresponding_sentence_with_forest(core, &forest, depth)
}

/// Compile a structure into a corresponding `{∧,∃}`-sentence using a
/// **caller-provided** elimination forest of height `depth` — the prepared
/// query path: the engine already holds the forest certificate from its
/// one-shot structural analysis, so no tree-depth computation runs here.
///
/// The forest must be valid for the Gaifman graph of `a` (checked in debug
/// builds); the sentence's quantifier rank is at most `depth + 1`
/// (Lemma 3.3, with the rank guarantee relative to `a` itself — pass the
/// core and its forest to obtain the paper's core-relative bound).
pub fn corresponding_sentence_with_forest(
    a: &Structure,
    provided_forest: &EliminationForest,
    depth: usize,
) -> TreeDepthSentence {
    let core = a;
    let forest = provided_forest.clone();
    debug_assert!(forest.is_valid_for(&gaifman_graph(core)));
    debug_assert_eq!(forest.height(), depth);
    let children = forest.children();

    // Recursive φ_c construction.
    fn phi_of(
        core: &Structure,
        forest: &EliminationForest,
        children: &[Vec<usize>],
        c: usize,
    ) -> Formula {
        if children[c].is_empty() {
            // Leaf: canonical conjunction of the root-to-c path (the
            // ancestors of c including c).
            let mut path = Vec::new();
            let mut cur = Some(c);
            while let Some(v) = cur {
                path.push(v);
                cur = forest.parent[v];
            }
            canonical_conjunction_of_subset(core, &path)
        } else {
            let parts = children[c]
                .iter()
                .map(|&d| Formula::exists(element_variable(d), phi_of(core, forest, children, d)))
                .collect();
            Formula::and(parts)
        }
    }

    let roots = forest.roots();
    let parts = roots
        .iter()
        .map(|&r| Formula::exists(element_variable(r), phi_of(core, &forest, &children, r)))
        .collect();
    let sentence = Formula::and(parts);

    debug_assert!(sentence.is_and_exists());
    debug_assert!(sentence.is_sentence());
    debug_assert!(
        sentence.quantifier_rank() <= depth.max(1),
        "quantifier rank {} exceeds tree depth {}",
        sentence.quantifier_rank(),
        depth
    );

    TreeDepthSentence {
        sentence,
        core: core.clone(),
        treedepth: depth,
        forest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonical_structure_of_sentence;
    use crate::modelcheck::{model_check, model_check_metered};
    use cq_decomp::treedepth::treedepth_of_structure;
    use cq_structures::{families, homomorphism_exists};

    #[test]
    fn star_queries_compile_to_rank_2_sentences() {
        // Stars have tree depth 2 regardless of the number of leaves, so the
        // sentence has quantifier rank 2 even as the star grows — this is the
        // heart of the para-L membership for bounded-tree-depth classes.
        for leaves in [2usize, 4, 8] {
            let s = families::star(leaves);
            let t = corresponding_sentence(&s);
            assert!(t.sentence.quantifier_rank() <= 2);
            assert!(t.sentence.is_and_exists());
        }
    }

    #[test]
    fn path_queries_compile_to_logarithmic_rank() {
        // td(P_k) = ceil(log2(k+1)), so the rank grows only logarithmically
        // in the path length.  (Paths are cores only up to homomorphic
        // equivalence — the core of P_k is a single edge — so compile the
        // path directly as a core-free check via the core-skipping entry
        // point.)
        let p7 = families::path(7);
        let t = corresponding_sentence_for_core(&p7);
        assert_eq!(t.treedepth, 3);
        assert!(t.sentence.quantifier_rank() <= 3);
    }

    #[test]
    fn core_collapses_rank_for_homomorphically_simple_queries() {
        // The core of an even cycle is a single edge, so the corresponding
        // sentence has rank at most 2 even though the cycle is large.
        let c8 = families::cycle(8);
        let t = corresponding_sentence(&c8);
        assert_eq!(t.core.universe_size(), 2);
        assert!(t.sentence.quantifier_rank() <= 2);
    }

    #[test]
    fn sentence_agrees_with_homomorphism_search() {
        let queries = vec![
            families::star(3),
            families::path(5),
            families::cycle(4),
            families::cycle(3),
            families::caterpillar(3, 1),
            families::grid(2, 2),
        ];
        let databases = vec![
            families::path(6),
            families::cycle(6),
            families::cycle(5),
            families::clique(3),
            families::clique(4),
            families::grid(3, 3),
            families::star(5),
        ];
        for q in &queries {
            let t = corresponding_sentence(q);
            for db in &databases {
                assert_eq!(
                    model_check(db, &t.sentence),
                    homomorphism_exists(q, db),
                    "query {q} database {db}"
                );
            }
        }
    }

    #[test]
    fn directed_structures_compile_correctly() {
        let q = families::directed_path(4);
        let t = corresponding_sentence(&q);
        // ->P_4 is a core of tree depth 3.
        assert_eq!(t.core.universe_size(), 4);
        assert_eq!(t.treedepth, 3);
        assert!(model_check(&families::directed_path(6), &t.sentence));
        assert!(!model_check(&families::directed_path(3), &t.sentence));
        assert!(model_check(&families::directed_cycle(5), &t.sentence));
    }

    #[test]
    fn disconnected_query_conjunction_over_components() {
        use cq_structures::disjoint_union;
        let (q, _) = disjoint_union(&[&families::cycle(3), &families::directed_path(2)]).unwrap();
        // Note: the union mixes relation interpretations (both use E), so the
        // query asks for a triangle AND an arc.
        let t = corresponding_sentence(&q);
        assert!(model_check(&families::clique(3), &t.sentence));
        assert!(!model_check(&families::grid(3, 3), &t.sentence));
    }

    #[test]
    fn theorem_3_12_roundtrip_bounds_treedepth() {
        // The canonical structure of the compiled sentence is homomorphically
        // equivalent to the original and its core's tree depth is bounded by
        // the quantifier rank (Theorem 3.12).
        for q in [families::star(4), families::path(7), families::grid(2, 2)] {
            let t = corresponding_sentence(&q);
            let c = canonical_structure_of_sentence(&t.sentence).unwrap();
            assert!(homomorphism_exists(&c, &q) && homomorphism_exists(&q, &c));
            let (td_c, _) = treedepth_of_structure(&cq_structures::core_of(&c).core);
            assert!(td_c <= t.sentence.quantifier_rank());
        }
    }

    #[test]
    fn metered_evaluation_space_is_small_for_bounded_depth() {
        // The whole point of Lemma 3.3: evaluating the sentence uses an
        // assignment of size ≤ td, not ≤ |A|.
        let q = families::star(8);
        let t = corresponding_sentence(&q);
        let db = families::clique(6);
        let (answer, report) = model_check_metered(&db, &t.sentence);
        assert!(answer);
        assert!(report.peak_assignment <= 2);
    }
}
