//! The space-metered first-order model checker of Lemma 3.11.
//!
//! Lemma 3.11 shows that `p-MC(FO)` — given a structure `A` and a sentence
//! `φ`, decide `A ⊨ φ` with parameter `|φ|` — can be decided in space
//! `O(|φ|·log|φ| + (qr(φ) + ar(φ))·log|A|)`.  The algorithm is a depth-first
//! recursion over the formula that stores, at any moment, only the current
//! partial assignment (at most `qr(φ)` variables), one loop counter per open
//! quantifier, and a constant amount of bookkeeping per recursion frame.
//!
//! We implement exactly that recursion and *meter* the space it uses, so that
//! the experiments can verify the `O(f(k) + log n)` bound empirically: the
//! [`SpaceReport`] records the peak number of work-tape bits that a Turing
//! machine implementation of the recursion would need, charged according to
//! the accounting in the proof of Lemma 3.11.

use crate::formula::{Formula, QuantifierKind};
use cq_structures::{Element, Structure};
use std::collections::HashMap;

/// Accounting of the space used by a metered model-checking run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceReport {
    /// Peak number of simultaneously stored assignment entries (bounded by
    /// the quantifier rank for sentences).
    pub peak_assignment: usize,
    /// Peak recursion depth (bounded by the formula size).
    pub peak_depth: usize,
    /// Peak number of work-tape bits: each assignment entry is charged
    /// `⌈log2 |A|⌉` bits, each open recursion frame `⌈log2 |φ|⌉ + 1` bits
    /// (subformula position + result bit), each open quantifier loop
    /// `⌈log2 |A|⌉` bits, and each atom evaluation `ar(φ)·⌈log2 |A|⌉` bits.
    pub peak_bits: usize,
    /// Number of atom evaluations performed (a time proxy).
    pub atom_checks: u64,
}

struct Meter {
    bits_per_element: usize,
    bits_per_frame: usize,
    current_assignment: usize,
    current_depth: usize,
    current_loops: usize,
    current_extra: usize,
    report: SpaceReport,
}

impl Meter {
    fn new(a: &Structure, phi: &Formula) -> Self {
        let bits_per_element = usize::BITS as usize - a.universe_size().leading_zeros() as usize;
        let bits_per_frame = (usize::BITS as usize - phi.size().leading_zeros() as usize) + 1;
        Meter {
            bits_per_element: bits_per_element.max(1),
            bits_per_frame: bits_per_frame.max(1),
            current_assignment: 0,
            current_depth: 0,
            current_loops: 0,
            current_extra: 0,
            report: SpaceReport::default(),
        }
    }

    fn observe(&mut self) {
        let bits = self.current_assignment * self.bits_per_element
            + self.current_depth * self.bits_per_frame
            + self.current_loops * self.bits_per_element
            + self.current_extra;
        self.report.peak_bits = self.report.peak_bits.max(bits);
        self.report.peak_assignment = self.report.peak_assignment.max(self.current_assignment);
        self.report.peak_depth = self.report.peak_depth.max(self.current_depth);
    }
}

/// Evaluate a sentence on a structure using the Lemma 3.11 recursion and
/// return the truth value together with the space accounting.
pub fn model_check_metered(a: &Structure, phi: &Formula) -> (bool, SpaceReport) {
    let mut meter = Meter::new(a, phi);
    let mut assignment: HashMap<String, Element> = HashMap::new();
    let value = eval(a, phi, &mut assignment, &mut meter);
    (value, meter.report)
}

/// Evaluate a sentence on a structure (truth value only).
pub fn model_check(a: &Structure, phi: &Formula) -> bool {
    model_check_metered(a, phi).0
}

fn eval(
    a: &Structure,
    phi: &Formula,
    assignment: &mut HashMap<String, Element>,
    meter: &mut Meter,
) -> bool {
    meter.current_depth += 1;
    meter.observe();
    let result = match phi {
        Formula::True => true,
        Formula::Equal(x, y) => {
            let vx = assignment.get(x).copied();
            let vy = assignment.get(y).copied();
            match (vx, vy) {
                (Some(vx), Some(vy)) => vx == vy,
                _ => panic!("unassigned variable in equality {x}={y}"),
            }
        }
        Formula::Atom { relation, vars } => {
            meter.report.atom_checks += 1;
            // Charge the scratch space for writing the tuple.
            meter.current_extra += vars.len() * meter.bits_per_element;
            meter.observe();
            let sym = a.vocabulary().id_of(relation);
            let ok = match sym {
                None => false,
                Some(sym) => {
                    let tuple: Vec<Element> = vars
                        .iter()
                        .map(|v| {
                            *assignment
                                .get(v)
                                .unwrap_or_else(|| panic!("unassigned variable {v} in atom"))
                        })
                        .collect();
                    a.contains(sym, &tuple)
                }
            };
            meter.current_extra -= vars.len() * meter.bits_per_element;
            ok
        }
        Formula::Not(f) => !eval(a, f, assignment, meter),
        Formula::And(fs) => {
            let mut acc = true;
            for f in fs {
                let v = eval(a, f, assignment, meter);
                acc = acc && v;
                if !acc {
                    break;
                }
            }
            acc
        }
        Formula::Or(fs) => {
            let mut acc = false;
            for f in fs {
                let v = eval(a, f, assignment, meter);
                acc = acc || v;
                if acc {
                    break;
                }
            }
            acc
        }
        Formula::Quantified { kind, var, body } => {
            // One loop counter over the universe stays open for the duration.
            meter.current_loops += 1;
            let shadowed = assignment.get(var).copied();
            let mut acc = match kind {
                QuantifierKind::Exists => false,
                QuantifierKind::Forall => true,
            };
            for b in a.universe() {
                assignment.insert(var.clone(), b);
                let newly_assigned = shadowed.is_none();
                if newly_assigned {
                    meter.current_assignment += 1;
                }
                meter.observe();
                let v = eval(a, body, assignment, meter);
                if newly_assigned {
                    meter.current_assignment -= 1;
                }
                match kind {
                    QuantifierKind::Exists => {
                        acc = acc || v;
                        if acc {
                            break;
                        }
                    }
                    QuantifierKind::Forall => {
                        acc = acc && v;
                        if !acc {
                            break;
                        }
                    }
                }
            }
            // Restore the assignment to its previous domain.
            match shadowed {
                Some(old) => {
                    assignment.insert(var.clone(), old);
                }
                None => {
                    assignment.remove(var);
                }
            }
            meter.current_loops -= 1;
            acc
        }
    };
    meter.current_depth -= 1;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::naive_sentence;
    use crate::formula::Formula;
    use cq_structures::{families, homomorphism_exists};

    #[test]
    fn chain_sentence_on_paths() {
        // ∃x∃y∃z (E(x,y) ∧ E(y,z)) is true on ->P_3 and false on ->P_2.
        let phi = Formula::exists(
            "x",
            Formula::exists(
                "y",
                Formula::exists(
                    "z",
                    Formula::And(vec![
                        Formula::atom("E", &["x", "y"]),
                        Formula::atom("E", &["y", "z"]),
                    ]),
                ),
            ),
        );
        assert!(model_check(&families::directed_path(3), &phi));
        assert!(!model_check(&families::directed_path(2), &phi));
    }

    #[test]
    fn universal_and_negation() {
        // ∀x ∃y E(x,y): every element has an out-neighbour — true on a
        // directed cycle, false on a directed path (the last element fails).
        let phi = Formula::forall("x", Formula::exists("y", Formula::atom("E", &["x", "y"])));
        assert!(model_check(&families::directed_cycle(4), &phi));
        assert!(!model_check(&families::directed_path(4), &phi));
        // Negation flips it.
        let neg = Formula::Not(Box::new(phi));
        assert!(model_check(&families::directed_path(4), &neg));
    }

    #[test]
    fn equality_and_disjunction() {
        // ∃x ∃y (¬ x = y ∨ E(x,y)): true on any structure with ≥ 2 elements.
        let phi = Formula::exists(
            "x",
            Formula::exists(
                "y",
                Formula::Or(vec![
                    Formula::Not(Box::new(Formula::Equal("x".into(), "y".into()))),
                    Formula::atom("E", &["x", "y"]),
                ]),
            ),
        );
        assert!(model_check(&families::path(3), &phi));
        // ∃x ∃y ¬x=y is false on a 1-element structure.
        let distinct = Formula::exists(
            "x",
            Formula::exists(
                "y",
                Formula::Not(Box::new(Formula::Equal("x".into(), "y".into()))),
            ),
        );
        let single = cq_structures::Structure::new(cq_structures::Vocabulary::graph(), 1).unwrap();
        assert!(!model_check(&single, &distinct));
    }

    #[test]
    fn naive_sentences_agree_with_homomorphism_search() {
        for a in [
            families::directed_path(3),
            families::cycle(3),
            families::cycle(4),
            families::star(3),
        ] {
            let phi = naive_sentence(&a);
            for b in [
                families::directed_path(5),
                families::cycle(3),
                families::cycle(5),
                families::path(2),
                families::clique(3),
            ] {
                assert_eq!(
                    model_check(&b, &phi),
                    homomorphism_exists(&a, &b),
                    "query {a} on database {b}"
                );
            }
        }
    }

    #[test]
    fn missing_relation_symbol_means_false_atom() {
        let phi = Formula::exists("x", Formula::atom("Missing", &["x"]));
        assert!(!model_check(&families::path(2), &phi));
    }

    #[test]
    fn space_report_tracks_assignment_depth() {
        let a = families::directed_path(6);
        let phi = naive_sentence(&families::directed_path(3));
        let (value, report) = model_check_metered(&a, &phi);
        assert!(value);
        assert_eq!(report.peak_assignment, 3); // = quantifier rank
        assert!(report.peak_depth >= 3);
        assert!(report.peak_bits > 0);
        assert!(report.atom_checks > 0);
    }

    #[test]
    fn space_grows_logarithmically_in_database() {
        // For a fixed sentence, peak_bits grows like log |B| (the per-element
        // bit width), not like |B|.
        let phi = naive_sentence(&families::directed_path(3));
        let small = families::directed_path(8);
        let large = families::directed_path(1024);
        let (_, small_report) = model_check_metered(&small, &phi);
        let (_, large_report) = model_check_metered(&large, &phi);
        assert!(large_report.peak_bits <= small_report.peak_bits * 4);
        assert_eq!(small_report.peak_assignment, large_report.peak_assignment);
    }

    #[test]
    fn short_circuiting_limits_atom_checks() {
        // On a structure where the first candidate works, the existential
        // loop stops early.
        let phi = Formula::exists("x", Formula::atom("E", &["x", "x"]));
        let vocab = cq_structures::Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut s = cq_structures::Structure::new(vocab, 5).unwrap();
        s.add_tuple(e, vec![0, 0]).unwrap();
        let (v, report) = model_check_metered(&s, &phi);
        assert!(v);
        assert_eq!(report.atom_checks, 1);
    }

    #[test]
    #[should_panic]
    fn open_formula_with_unassigned_variable_panics() {
        let phi = Formula::atom("E", &["x", "y"]);
        let _ = model_check(&families::path(2), &phi);
    }
}
