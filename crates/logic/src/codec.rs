//! Binary codec ([`Encode`] / [`Decode`]) for formulas and the compiled
//! tree-depth sentence a prepared query persists.
//!
//! [`Formula`] is the one recursive type in the plan store, so its decoder
//! carries an explicit nesting cap ([`MAX_FORMULA_DEPTH`]): a hostile byte
//! stream can spell out arbitrarily deep `Not`/`∃` chains one tag byte at a
//! time, and without the cap each level would become a real stack frame.
//! Compiled `{∧,∃}`-sentences nest at most `td + 1` quantifiers over
//! parameter-sized queries, orders of magnitude below the cap.

use crate::formula::{Formula, QuantifierKind};
use crate::treedepth_sentence::TreeDepthSentence;
use cq_structures::codec::{Decode, DecodeError, Encode, Reader};
use cq_structures::Structure;

/// Maximum AST nesting depth the [`Formula`] decoder accepts.
pub const MAX_FORMULA_DEPTH: usize = 512;

impl Encode for QuantifierKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            QuantifierKind::Exists => 0,
            QuantifierKind::Forall => 1,
        });
    }
}

impl Decode for QuantifierKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(QuantifierKind::Exists),
            1 => Ok(QuantifierKind::Forall),
            tag => Err(DecodeError::BadTag {
                what: "QuantifierKind",
                tag,
            }),
        }
    }
}

const TAG_ATOM: u8 = 0;
const TAG_EQUAL: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_NOT: u8 = 3;
const TAG_AND: u8 = 4;
const TAG_OR: u8 = 5;
const TAG_QUANTIFIED: u8 = 6;

impl Encode for Formula {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Formula::Atom { relation, vars } => {
                out.push(TAG_ATOM);
                relation.encode(out);
                vars.encode(out);
            }
            Formula::Equal(a, b) => {
                out.push(TAG_EQUAL);
                a.encode(out);
                b.encode(out);
            }
            Formula::True => out.push(TAG_TRUE),
            Formula::Not(f) => {
                out.push(TAG_NOT);
                f.encode(out);
            }
            Formula::And(fs) => {
                out.push(TAG_AND);
                fs.encode(out);
            }
            Formula::Or(fs) => {
                out.push(TAG_OR);
                fs.encode(out);
            }
            Formula::Quantified { kind, var, body } => {
                out.push(TAG_QUANTIFIED);
                kind.encode(out);
                var.encode(out);
                body.encode(out);
            }
        }
    }
}

fn decode_formula(r: &mut Reader<'_>, depth: usize) -> Result<Formula, DecodeError> {
    if depth > MAX_FORMULA_DEPTH {
        return Err(DecodeError::LengthOutOfRange {
            what: "formula nesting depth",
            len: depth as u64,
        });
    }
    match r.read_u8()? {
        TAG_ATOM => Ok(Formula::Atom {
            relation: String::decode(r)?,
            vars: Vec::<String>::decode(r)?,
        }),
        TAG_EQUAL => Ok(Formula::Equal(String::decode(r)?, String::decode(r)?)),
        TAG_TRUE => Ok(Formula::True),
        TAG_NOT => Ok(Formula::Not(Box::new(decode_formula(r, depth + 1)?))),
        TAG_AND => Ok(Formula::And(decode_formula_list(r, depth)?)),
        TAG_OR => Ok(Formula::Or(decode_formula_list(r, depth)?)),
        TAG_QUANTIFIED => Ok(Formula::Quantified {
            kind: QuantifierKind::decode(r)?,
            var: String::decode(r)?,
            body: Box::new(decode_formula(r, depth + 1)?),
        }),
        tag => Err(DecodeError::BadTag {
            what: "Formula",
            tag,
        }),
    }
}

fn decode_formula_list(r: &mut Reader<'_>, depth: usize) -> Result<Vec<Formula>, DecodeError> {
    let count = r.read_count("formula list length")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_formula(r, depth + 1)?);
    }
    Ok(out)
}

impl Decode for Formula {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        decode_formula(r, 0)
    }
}

impl Encode for TreeDepthSentence {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sentence.encode(out);
        self.core.encode(out);
        self.treedepth.encode(out);
        self.forest.encode(out);
    }
}

impl Decode for TreeDepthSentence {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TreeDepthSentence {
            sentence: Formula::decode(r)?,
            core: Structure::decode(r)?,
            treedepth: usize::decode(r)?,
            forest: cq_decomp::EliminationForest::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treedepth_sentence::corresponding_sentence;
    use cq_structures::codec::{decode_from_slice, encode_to_vec};
    use cq_structures::families;

    #[test]
    fn formula_roundtrips() {
        let formulas = [
            Formula::True,
            Formula::atom("E", &["x0", "x1"]),
            Formula::Equal("x".into(), "y".into()),
            Formula::Not(Box::new(Formula::atom("P", &["x"]))),
            Formula::Or(vec![Formula::True, Formula::atom("P", &["x"])]),
            Formula::forall(
                "x",
                Formula::exists(
                    "y",
                    Formula::And(vec![
                        Formula::atom("E", &["x", "y"]),
                        Formula::Equal("x".into(), "y".into()),
                    ]),
                ),
            ),
        ];
        for f in formulas {
            let back: Formula = decode_from_slice(&encode_to_vec(&f)).expect("roundtrip");
            assert_eq!(back, f);
        }
    }

    #[test]
    fn compiled_sentences_roundtrip() {
        for q in [families::star(4), families::path(7), families::cycle(5)] {
            let t = corresponding_sentence(&q);
            let back: TreeDepthSentence = decode_from_slice(&encode_to_vec(&t)).expect("roundtrip");
            assert_eq!(back.sentence, t.sentence);
            assert_eq!(back.core, t.core);
            assert_eq!(back.treedepth, t.treedepth);
            assert_eq!(back.forest, t.forest);
        }
    }

    #[test]
    fn hostile_nesting_depth_is_a_clean_error() {
        // A chain of `Not` tags one byte deep each — a crafted stream that
        // would otherwise grow the decode stack without bound.
        let mut bytes = vec![TAG_NOT; MAX_FORMULA_DEPTH + 8];
        bytes.push(TAG_TRUE);
        assert!(matches!(
            decode_from_slice::<Formula>(&bytes),
            Err(DecodeError::LengthOutOfRange { .. })
        ));
        // A chain below the cap decodes fine.
        let mut ok = vec![TAG_NOT; 16];
        ok.push(TAG_TRUE);
        assert!(decode_from_slice::<Formula>(&ok).is_ok());
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(matches!(
            decode_from_slice::<Formula>(&[99]),
            Err(DecodeError::BadTag {
                what: "Formula",
                tag: 99
            })
        ));
        assert!(matches!(
            decode_from_slice::<QuantifierKind>(&[5]),
            Err(DecodeError::BadTag {
                what: "QuantifierKind",
                tag: 5
            })
        ));
    }
}
