//! # cq-logic
//!
//! First-order formulas, `{∧,∃}`-sentences, canonical conjunctions, and the
//! space-metered model checker of Lemma 3.11 — the logical toolbox behind
//! statement (3) of the Classification Theorem (bounded tree depth ⇒
//! `para-L`).
//!
//! The para-L membership proof (Lemma 3.3) works by compiling a structure of
//! tree depth `≤ w` into a `{∧,∃}`-sentence of quantifier rank `≤ w + 1`
//! that *corresponds* to it (it is true in `B` iff the structure maps
//! homomorphically into `B`), and then model-checking that sentence in space
//! `O(|φ|·log|φ| + (qr(φ)+ar(φ))·log|A|)` (Lemma 3.11).  Theorem 3.12 shows
//! the converse: the existence of such a sentence characterizes tree depth.
//! This crate implements all three directions:
//!
//! * [`formula`] — the formula AST, quantifier rank, free variables,
//!   `{∧,∃}` recognition, prenexing;
//! * [`canonical`] — canonical conjunctions of structures and the canonical
//!   structure of a `{∧,∃}`-sentence (Theorem 3.12);
//! * [`treedepth_sentence`] — the Lemma 3.3 compilation from a structure
//!   with a tree-depth forest into a corresponding `{∧,∃}`-sentence;
//! * [`modelcheck`] — the depth-first model checker of Lemma 3.11 with an
//!   explicit space meter, so that the experiments can verify the
//!   `O(f(k) + log n)` space bound empirically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod codec;
pub mod formula;
pub mod modelcheck;
pub mod treedepth_sentence;

pub use canonical::{canonical_conjunction, canonical_structure_of_sentence, query_fingerprint};
pub use formula::{Formula, QuantifierKind};
pub use modelcheck::{model_check, model_check_metered, SpaceReport};
pub use treedepth_sentence::{
    corresponding_sentence, corresponding_sentence_for_core, corresponding_sentence_with_forest,
};
