//! Undirected simple graphs with vertices `0..n`, and Gaifman graphs.

use cq_structures::Structure;
use std::collections::BTreeSet;
use std::fmt;

/// A vertex of a [`Graph`].
pub type Vertex = usize;

/// An undirected simple graph (no loops, no parallel edges) on vertex set
/// `0..n`, stored as sorted adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<BTreeSet<Vertex>>,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// Build a graph from an edge list (vertices are implied by the maximum
    /// endpoint unless `n` is larger).
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let max = edges
            .iter()
            .map(|&(a, b)| a.max(b) + 1)
            .max()
            .unwrap_or(0)
            .max(n);
        let mut g = Graph::new(max);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Iterate over vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.adjacency.len()
    }

    /// Add an undirected edge (loops are ignored, duplicates are collapsed).
    pub fn add_edge(&mut self, a: Vertex, b: Vertex) {
        assert!(a < self.vertex_count() && b < self.vertex_count());
        if a == b {
            return;
        }
        self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
    }

    /// Remove an edge if present.
    pub fn remove_edge(&mut self, a: Vertex, b: Vertex) {
        self.adjacency[a].remove(&b);
        self.adjacency[b].remove(&a);
    }

    /// Adjacency test.
    pub fn has_edge(&self, a: Vertex, b: Vertex) -> bool {
        self.adjacency[a].contains(&b)
    }

    /// The neighbourhood of a vertex, in increasing order.
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.adjacency[v].iter().copied()
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: Vertex) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).max().unwrap_or(0)
    }

    /// The edges of the graph as ordered pairs `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(Vertex, Vertex)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for a in self.vertices() {
            for &b in &self.adjacency[a] {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// The subgraph induced by a set of vertices, together with the map from
    /// old vertex numbers to new ones (renumbered `0..|S|` in increasing
    /// order).
    pub fn induced_subgraph(&self, vertices: &BTreeSet<Vertex>) -> (Graph, Vec<Option<Vertex>>) {
        let mut old_to_new = vec![None; self.vertex_count()];
        for (new, &old) in vertices.iter().enumerate() {
            old_to_new[old] = Some(new);
        }
        let mut g = Graph::new(vertices.len());
        for &v in vertices {
            for &w in &self.adjacency[v] {
                if let (Some(a), Some(b)) = (old_to_new[v], old_to_new[w]) {
                    g.add_edge(a, b);
                }
            }
        }
        (g, old_to_new)
    }

    /// The graph obtained by deleting a vertex (later vertices are shifted
    /// down by one).
    pub fn delete_vertex(&self, v: Vertex) -> Graph {
        let keep: BTreeSet<Vertex> = self.vertices().filter(|&u| u != v).collect();
        self.induced_subgraph(&keep).0
    }

    /// The graph obtained by contracting the edge `{a, b}` into vertex
    /// `min(a, b)` (the other endpoint is deleted; its neighbours are
    /// attached to the survivor).  Panics when `{a, b}` is not an edge.
    pub fn contract_edge(&self, a: Vertex, b: Vertex) -> Graph {
        assert!(self.has_edge(a, b), "can only contract existing edges");
        let (survivor, removed) = (a.min(b), a.max(b));
        let mut g = self.clone();
        let moved: Vec<Vertex> = g.adjacency[removed].iter().copied().collect();
        for w in moved {
            if w != survivor {
                g.add_edge(survivor, w);
            }
        }
        g.delete_vertex(removed)
    }

    /// The complement graph.
    pub fn complement(&self) -> Graph {
        let n = self.vertex_count();
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if !self.has_edge(a, b) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// Convert to a relational structure over the vocabulary `{E/2}` with the
    /// symmetric edge relation (a *graph* in the paper's sense).
    pub fn to_structure(&self) -> Structure {
        let vocab = cq_structures::Vocabulary::graph();
        let e = vocab.id_of("E").unwrap();
        let mut b =
            cq_structures::StructureBuilder::new(vocab).with_universe(self.vertex_count().max(1));
        for (u, v) in self.edges() {
            b.raw_fact(e, vec![u, v]);
            b.raw_fact(e, vec![v, u]);
        }
        b.build().expect("valid graph structure")
    }

    /// Build a graph from any structure by taking its Gaifman graph.
    pub fn from_structure(s: &Structure) -> Graph {
        gaifman_graph(s)
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph(n={}, m={}) {:?}",
            self.vertex_count(),
            self.edge_count(),
            self.edges()
        )
    }
}

/// The Gaifman graph of a relational structure: vertices are the elements of
/// the structure, and two distinct elements are adjacent iff they occur
/// together in some tuple of some relation (Section 2.2).
pub fn gaifman_graph(s: &Structure) -> Graph {
    let mut g = Graph::new(s.universe_size());
    for (a, b) in s.gaifman_edges() {
        g.add_edge(a, b);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::families as sf;

    #[test]
    fn basic_construction() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 1); // loop ignored
        g.add_edge(0, 1); // duplicate ignored
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        g.remove_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn from_edges_and_edges_roundtrip() {
        let g = Graph::from_edges(0, &[(0, 1), (2, 3), (1, 2)]);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2), (2, 3)]);
        let g2 = Graph::from_edges(10, &[(0, 1)]);
        assert_eq!(g2.vertex_count(), 10);
    }

    #[test]
    fn induced_subgraph_and_delete() {
        let g = Graph::from_edges(0, &[(0, 1), (1, 2), (2, 3), (3, 0)]); // C4
        let sub: BTreeSet<Vertex> = [0, 1, 2].into_iter().collect();
        let (h, map) = g.induced_subgraph(&sub);
        assert_eq!(h.vertex_count(), 3);
        assert_eq!(h.edge_count(), 2);
        assert_eq!(map[3], None);
        let d = g.delete_vertex(3);
        assert_eq!(d.vertex_count(), 3);
        assert_eq!(d.edge_count(), 2);
    }

    #[test]
    fn contraction_of_cycle_gives_smaller_cycle() {
        let c4 = Graph::from_edges(0, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c3 = c4.contract_edge(0, 1);
        assert_eq!(c3.vertex_count(), 3);
        assert_eq!(c3.edge_count(), 3);
    }

    #[test]
    #[should_panic]
    fn contracting_a_non_edge_panics() {
        let g = Graph::from_edges(0, &[(0, 1), (2, 3)]);
        let _ = g.contract_edge(0, 3);
    }

    #[test]
    fn complement_of_empty_is_complete() {
        let g = Graph::new(4);
        let c = g.complement();
        assert_eq!(c.edge_count(), 6);
        assert_eq!(c.complement().edge_count(), 0);
    }

    #[test]
    fn gaifman_graph_of_path_structure() {
        let p5 = sf::path(5);
        let g = gaifman_graph(&p5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn gaifman_graph_of_higher_arity_structure_forms_cliques() {
        // A single ternary tuple over distinct elements induces a triangle.
        let vocab = cq_structures::Vocabulary::from_pairs([("R", 3)]).unwrap();
        let r = vocab.id_of("R").unwrap();
        let mut b = cq_structures::StructureBuilder::new(vocab);
        b.raw_fact(r, vec![0, 1, 2]);
        let s = b.build().unwrap();
        let g = gaifman_graph(&s);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn structure_roundtrip() {
        let g = Graph::from_edges(0, &[(0, 1), (1, 2)]);
        let s = g.to_structure();
        assert!(s.is_graph());
        let back = Graph::from_structure(&s);
        assert_eq!(back, g);
    }

    #[test]
    fn empty_graph_to_structure_has_singleton_universe() {
        let g = Graph::new(0);
        let s = g.to_structure();
        assert_eq!(s.universe_size(), 1);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn display_contains_counts() {
        let g = Graph::from_edges(0, &[(0, 1)]);
        assert!(g.to_string().contains("n=2"));
    }
}
