//! Standard graph families as [`Graph`] values (the structure-typed versions
//! live in `cq_structures::families`).

use crate::graph::Graph;

/// The path graph `P_k` on `k ≥ 1` vertices.
pub fn path_graph(k: usize) -> Graph {
    assert!(k >= 1);
    let mut g = Graph::new(k);
    for i in 0..k - 1 {
        g.add_edge(i, i + 1);
    }
    g
}

/// The cycle graph `C_k` on `k ≥ 3` vertices.
pub fn cycle_graph(k: usize) -> Graph {
    assert!(k >= 3);
    let mut g = Graph::new(k);
    for i in 0..k {
        g.add_edge(i, (i + 1) % k);
    }
    g
}

/// The complete graph `K_k`.
pub fn complete_graph(k: usize) -> Graph {
    let mut g = Graph::new(k);
    for i in 0..k {
        for j in (i + 1)..k {
            g.add_edge(i, j);
        }
    }
    g
}

/// The star `K_{1,k}` with centre 0.
pub fn star_graph(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for l in 1..=leaves {
        g.add_edge(0, l);
    }
    g
}

/// The `rows × cols` grid graph, vertices numbered row-major.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let idx = |r: usize, c: usize| r * cols + c;
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    g
}

/// The complete binary tree of height `h` (the graph `T_h` of the paper);
/// `2^{h+1} - 1` vertices in heap layout (children of `i` are `2i+1`, `2i+2`).
pub fn complete_binary_tree(h: usize) -> Graph {
    let n = (1usize << (h + 1)) - 1;
    let mut g = Graph::new(n);
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                g.add_edge(v, child);
            }
        }
    }
    g
}

/// A caterpillar: a spine path with `spine` vertices each carrying `legs`
/// pendant leaves.
pub fn caterpillar_graph(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let mut g = Graph::new(spine + spine * legs);
    for i in 0..spine - 1 {
        g.add_edge(i, i + 1);
    }
    for i in 0..spine {
        for l in 0..legs {
            g.add_edge(i, spine + i * legs + l);
        }
    }
    g
}

/// The complete bipartite graph `K_{m,n}` with parts `0..m` and `m..m+n`.
pub fn complete_bipartite_graph(m: usize, n: usize) -> Graph {
    let mut g = Graph::new(m + n);
    for i in 0..m {
        for j in 0..n {
            g.add_edge(i, m + j);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{is_connected, is_tree};

    #[test]
    fn family_sizes() {
        assert_eq!(path_graph(5).edge_count(), 4);
        assert_eq!(cycle_graph(5).edge_count(), 5);
        assert_eq!(complete_graph(5).edge_count(), 10);
        assert_eq!(star_graph(4).edge_count(), 4);
        assert_eq!(grid_graph(3, 3).edge_count(), 12);
        assert_eq!(complete_binary_tree(3).vertex_count(), 15);
        assert_eq!(complete_binary_tree(3).edge_count(), 14);
        assert_eq!(caterpillar_graph(3, 2).vertex_count(), 9);
        assert_eq!(complete_bipartite_graph(2, 3).edge_count(), 6);
    }

    #[test]
    fn trees_are_trees() {
        assert!(is_tree(&path_graph(6)));
        assert!(is_tree(&star_graph(5)));
        assert!(is_tree(&complete_binary_tree(4)));
        assert!(is_tree(&caterpillar_graph(4, 3)));
        assert!(!is_tree(&grid_graph(2, 2)));
        assert!(is_connected(&complete_graph(3)));
    }

    #[test]
    fn structure_and_graph_families_agree() {
        use cq_structures::families as sf;
        assert_eq!(crate::graph::gaifman_graph(&sf::path(5)), path_graph(5));
        assert_eq!(crate::graph::gaifman_graph(&sf::cycle(6)), cycle_graph(6));
        assert_eq!(
            crate::graph::gaifman_graph(&sf::grid(3, 4)),
            grid_graph(3, 4)
        );
        assert_eq!(
            crate::graph::gaifman_graph(&sf::tree_t(3)),
            complete_binary_tree(3)
        );
        assert_eq!(
            crate::graph::gaifman_graph(&sf::clique(4)),
            complete_graph(4)
        );
        assert_eq!(crate::graph::gaifman_graph(&sf::star(4)), star_graph(4));
        assert_eq!(
            crate::graph::gaifman_graph(&sf::complete_bipartite(2, 3)),
            complete_bipartite_graph(2, 3)
        );
        // The Gaifman graph of ->B_k (and of B_k) is the tree T_k.
        assert_eq!(
            crate::graph::gaifman_graph(&sf::directed_binary_tree(3)),
            complete_binary_tree(3)
        );
        assert_eq!(
            crate::graph::gaifman_graph(&sf::binary_tree_b(2)),
            complete_binary_tree(2)
        );
    }
}
