//! Graph minors, minor maps, and backtracking minor search.
//!
//! A graph `M` is a *minor* of `G` when there is a *minor map* `μ` from `M`
//! to `G`: a family of pairwise disjoint, non-empty, connected subsets
//! `μ(m) ⊆ G` (the *branch sets*) such that for every edge `(m, m')` of `M`
//! there are `v ∈ μ(m)`, `v' ∈ μ(m')` with `(v, v')` an edge of `G`
//! (Section 2.2).
//!
//! Minors drive the hardness side of the classification: the reduction of
//! Lemma 3.7 lifts hardness from `p-HOM(M*)` to `p-HOM(G*)` whenever `M` is
//! a minor of `G`, and the excluded-minor characterizations of Theorem 2.3
//! (grids for treewidth, trees for pathwidth, paths for tree depth) tell us
//! which minors exist in classes of unbounded width.

use crate::graph::{Graph, Vertex};
use crate::traversal::{connected_components, longest_path_length};
use std::collections::BTreeSet;

/// A minor map: for every vertex `m` of the minor, the branch set `μ(m)` of
/// host vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinorMap {
    branch_sets: Vec<BTreeSet<Vertex>>,
}

impl MinorMap {
    /// Construct from explicit branch sets (one per minor vertex, in minor
    /// vertex order).
    pub fn new(branch_sets: Vec<BTreeSet<Vertex>>) -> Self {
        MinorMap { branch_sets }
    }

    /// The branch set of minor vertex `m`.
    pub fn branch_set(&self, m: Vertex) -> &BTreeSet<Vertex> {
        &self.branch_sets[m]
    }

    /// Number of minor vertices covered.
    pub fn len(&self) -> usize {
        self.branch_sets.len()
    }

    /// Whether the map covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.branch_sets.is_empty()
    }

    /// All branch sets in minor-vertex order.
    pub fn branch_sets(&self) -> &[BTreeSet<Vertex>] {
        &self.branch_sets
    }

    /// Total number of host vertices used.
    pub fn host_vertices_used(&self) -> usize {
        self.branch_sets.iter().map(|s| s.len()).sum()
    }

    /// Verify that this is a valid minor map from `minor` into `host`:
    /// branch sets are non-empty, pairwise disjoint, each induces a connected
    /// subgraph of the host, and every minor edge is realized by a host edge
    /// between the corresponding branch sets.
    pub fn verify(&self, minor: &Graph, host: &Graph) -> bool {
        if self.branch_sets.len() != minor.vertex_count() {
            return false;
        }
        // Non-empty, in-range, pairwise disjoint.
        let mut seen: BTreeSet<Vertex> = BTreeSet::new();
        for set in &self.branch_sets {
            if set.is_empty() {
                return false;
            }
            for &v in set {
                if v >= host.vertex_count() || !seen.insert(v) {
                    return false;
                }
            }
        }
        // Connectivity of each branch set.
        for set in &self.branch_sets {
            let (sub, _) = host.induced_subgraph(set);
            if connected_components(&sub).len() != 1 {
                return false;
            }
        }
        // Edge realization.
        for (m1, m2) in minor.edges() {
            let realized = self.branch_sets[m1]
                .iter()
                .any(|&v| host.neighbors(v).any(|w| self.branch_sets[m2].contains(&w)));
            if !realized {
                return false;
            }
        }
        true
    }
}

/// Search for a minor map from `minor` into `host` by backtracking over
/// branch-set assignments.  Exponential in the size of the *minor* (which in
/// all our uses is parameter-sized); polynomial bookkeeping in the host.
///
/// The search assigns to each minor vertex a branch set grown from a seed
/// host vertex; to keep the search space manageable branch sets are grown
/// only as far as needed (singletons first, then expanded through free
/// neighbours when edge realization fails).  For the graphs in this
/// repository (grids, trees, paths, caterpillars of modest size) this is
/// exact and fast enough; it is *not* a general-purpose minor tester for
/// large hosts.
pub fn find_minor_map(minor: &Graph, host: &Graph) -> Option<MinorMap> {
    if minor.vertex_count() == 0 {
        return Some(MinorMap::new(Vec::new()));
    }
    if minor.vertex_count() > host.vertex_count() || minor.edge_count() > host.edge_count() {
        return None;
    }

    // Fast path: paths as minors.  A path P_k is a minor of G iff G has a
    // simple path on k vertices (contract the path minor's branch sets).
    if crate::traversal::is_path_graph(minor) {
        let k = minor.vertex_count();
        if longest_path_length(host) >= k {
            // Build the branch sets from an actual simple path.
            if let Some(p) = find_simple_path(host, k) {
                // Map path order onto minor order: a path graph's vertices in
                // path order are obtained by walking from a degree-<=1 end.
                let order = path_order(minor);
                let mut sets = vec![BTreeSet::new(); k];
                for (i, &m) in order.iter().enumerate() {
                    sets[m].insert(p[i]);
                }
                let mm = MinorMap::new(sets);
                debug_assert!(mm.verify(minor, host));
                return Some(mm);
            }
        }
        return None;
    }

    // General backtracking: assign each minor vertex a connected branch set.
    let mut used = vec![false; host.vertex_count()];
    let mut sets: Vec<BTreeSet<Vertex>> = vec![BTreeSet::new(); minor.vertex_count()];
    if assign(minor, host, 0, &mut sets, &mut used) {
        let mm = MinorMap::new(sets);
        debug_assert!(mm.verify(minor, host));
        Some(mm)
    } else {
        None
    }
}

/// Vertices of a path graph listed in path order.
fn path_order(path: &Graph) -> Vec<Vertex> {
    if path.vertex_count() == 1 {
        return vec![0];
    }
    let start = path
        .vertices()
        .find(|&v| path.degree(v) == 1)
        .expect("path has an endpoint");
    let mut order = vec![start];
    let mut prev = None;
    let mut cur = start;
    while order.len() < path.vertex_count() {
        let next = path
            .neighbors(cur)
            .find(|&w| Some(w) != prev)
            .expect("path continues");
        order.push(next);
        prev = Some(cur);
        cur = next;
    }
    order
}

/// Find some simple path on exactly `k` vertices in the host, returned as a
/// vertex sequence.
fn find_simple_path(g: &Graph, k: usize) -> Option<Vec<Vertex>> {
    fn dfs(g: &Graph, path: &mut Vec<Vertex>, visited: &mut Vec<bool>, k: usize) -> bool {
        if path.len() == k {
            return true;
        }
        let v = *path.last().unwrap();
        for w in g.neighbors(v) {
            if !visited[w] {
                visited[w] = true;
                path.push(w);
                if dfs(g, path, visited, k) {
                    return true;
                }
                path.pop();
                visited[w] = false;
            }
        }
        false
    }
    for start in g.vertices() {
        let mut visited = vec![false; g.vertex_count()];
        visited[start] = true;
        let mut path = vec![start];
        if dfs(g, &mut path, &mut visited, k) {
            return Some(path);
        }
    }
    None
}

fn assign(
    minor: &Graph,
    host: &Graph,
    m: Vertex,
    sets: &mut Vec<BTreeSet<Vertex>>,
    used: &mut Vec<bool>,
) -> bool {
    if m == minor.vertex_count() {
        return MinorMap::new(sets.clone()).verify(minor, host);
    }
    // Candidate branch sets: connected subsets grown from each free seed, of
    // size up to a small budget.  We enumerate subsets of bounded size to
    // keep the search finite; the budget is the number of host vertices not
    // needed by the remaining minor vertices (capped to keep the enumeration
    // tractable on the parameter-sized inputs this is used for).
    let budget = (host.vertex_count() + 1)
        .saturating_sub(minor.vertex_count())
        .clamp(1, 6);
    for seed in host.vertices() {
        if used[seed] {
            continue;
        }
        for set in connected_subsets_from(host, seed, budget, used) {
            for &v in &set {
                used[v] = true;
            }
            sets[m] = set.clone();
            // Prune: every already-assigned neighbour of m in the minor must
            // be edge-connected to this branch set.
            let ok = minor.neighbors(m).filter(|&n| n < m).all(|n| {
                sets[n]
                    .iter()
                    .any(|&v| host.neighbors(v).any(|w| set.contains(&w)))
            });
            if ok && assign(minor, host, m + 1, sets, used) {
                return true;
            }
            for &v in &set {
                used[v] = false;
            }
            sets[m].clear();
        }
    }
    false
}

/// Enumerate connected subsets of the host containing `seed`, avoiding `used`
/// vertices, of size at most `max_size`.
fn connected_subsets_from(
    host: &Graph,
    seed: Vertex,
    max_size: usize,
    used: &[bool],
) -> Vec<BTreeSet<Vertex>> {
    let mut out = Vec::new();
    let mut current: BTreeSet<Vertex> = [seed].into_iter().collect();
    grow(host, &mut current, max_size, used, &mut out, seed);
    out
}

fn grow(
    host: &Graph,
    current: &mut BTreeSet<Vertex>,
    max_size: usize,
    used: &[bool],
    out: &mut Vec<BTreeSet<Vertex>>,
    seed: Vertex,
) {
    out.push(current.clone());
    if current.len() >= max_size {
        return;
    }
    // Frontier vertices larger than the seed to avoid some duplicates.
    let frontier: Vec<Vertex> = current
        .iter()
        .flat_map(|&v| host.neighbors(v).collect::<Vec<_>>())
        .filter(|&w| !current.contains(&w) && !used[w] && w >= seed)
        .collect();
    let mut seen = BTreeSet::new();
    for w in frontier {
        if seen.insert(w) {
            current.insert(w);
            grow(host, current, max_size, used, out, seed);
            current.remove(&w);
        }
    }
}

/// Does `host` contain `minor` as a minor?
pub fn has_minor(minor: &Graph, host: &Graph) -> bool {
    find_minor_map(minor, host).is_some()
}

/// The largest `k` such that the path `P_k` is a minor of `g` — equal to the
/// number of vertices on a longest simple path (the quantity controlling
/// tree depth via the Excluded Path Theorem 2.3 (3)).
pub fn largest_path_minor(g: &Graph) -> usize {
    longest_path_length(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::*;

    #[test]
    fn minor_map_verification() {
        // Contract C4 onto a triangle: branch sets {0,1}, {2}, {3}.
        let c4 = cycle_graph(4);
        let triangle = cycle_graph(3);
        let mm = MinorMap::new(vec![
            [0, 1].into_iter().collect(),
            [2].into_iter().collect(),
            [3].into_iter().collect(),
        ]);
        assert!(mm.verify(&triangle, &c4));
        assert_eq!(mm.host_vertices_used(), 4);
        assert_eq!(mm.len(), 3);
        assert!(!mm.is_empty());

        // Overlapping branch sets are rejected.
        let bad = MinorMap::new(vec![
            [0, 1].into_iter().collect(),
            [1].into_iter().collect(),
            [3].into_iter().collect(),
        ]);
        assert!(!bad.verify(&triangle, &c4));

        // Disconnected branch set rejected.
        let disconnected = MinorMap::new(vec![
            [0, 2].into_iter().collect(),
            [1].into_iter().collect(),
            [3].into_iter().collect(),
        ]);
        assert!(!disconnected.verify(&triangle, &c4));

        // Missing edge realization rejected.
        let p4 = path_graph(4);
        let unrealized = MinorMap::new(vec![
            [0].into_iter().collect(),
            [1].into_iter().collect(),
            [3].into_iter().collect(),
        ]);
        assert!(!unrealized.verify(&triangle, &p4));

        // Wrong number of branch sets rejected.
        let short = MinorMap::new(vec![[0].into_iter().collect()]);
        assert!(!short.verify(&triangle, &c4));

        // Empty branch set rejected.
        let empty = MinorMap::new(vec![
            BTreeSet::new(),
            [1].into_iter().collect(),
            [2].into_iter().collect(),
        ]);
        assert!(!empty.verify(&triangle, &c4));
    }

    #[test]
    fn path_minors_of_grids() {
        // Grids contain long path minors (they have Hamiltonian paths).
        let g33 = grid_graph(3, 3);
        assert!(has_minor(&path_graph(9), &g33));
        assert!(!has_minor(&path_graph(10), &g33));
        assert_eq!(largest_path_minor(&g33), 9);
    }

    #[test]
    fn path_minors_of_trees_and_stars() {
        let star = star_graph(5);
        assert!(has_minor(&path_graph(3), &star));
        assert!(!has_minor(&path_graph(4), &star));
        // Complete binary tree of height 2 has a path on 5 vertices.
        let t2 = complete_binary_tree(2);
        assert_eq!(largest_path_minor(&t2), 5);
        assert!(has_minor(&path_graph(5), &t2));
        assert!(!has_minor(&path_graph(6), &t2));
    }

    #[test]
    fn triangle_minor_requires_a_cycle() {
        let triangle = cycle_graph(3);
        assert!(has_minor(&triangle, &cycle_graph(6)));
        assert!(has_minor(&triangle, &grid_graph(2, 2)));
        assert!(!has_minor(&triangle, &path_graph(6)));
        assert!(!has_minor(&triangle, &complete_binary_tree(3)));
    }

    #[test]
    fn star_minor_of_binary_tree() {
        // The star K_{1,3} is a minor of any binary tree of height >= 2
        // (contract the root's subtree edges appropriately).
        let k13 = star_graph(3);
        assert!(has_minor(&k13, &complete_binary_tree(2)));
        assert!(!has_minor(&k13, &path_graph(6)));
    }

    #[test]
    fn grid_minor_of_bigger_grid() {
        let g22 = grid_graph(2, 2);
        assert!(has_minor(&g22, &grid_graph(2, 3)));
        assert!(has_minor(&g22, &grid_graph(3, 3)));
        assert!(!has_minor(&g22, &complete_binary_tree(2)));
    }

    #[test]
    fn k4_minor() {
        let k4 = complete_graph(4);
        assert!(has_minor(&k4, &complete_graph(5)));
        // Planar and series-parallel graphs exclude K4 only sometimes; the
        // 3x3 grid does contain a K4 minor?  No: grids are planar but K4 is
        // planar too; the 3x3 grid actually does contain a K4 minor.  Use a
        // cycle, which certainly excludes K4.
        assert!(!has_minor(&k4, &cycle_graph(6)));
    }

    #[test]
    fn minor_relation_is_monotone_under_subgraphs() {
        // Anything that is a minor of a subgraph is a minor of the graph.
        let host = grid_graph(3, 3);
        let sub_vertices: BTreeSet<Vertex> = (0..6).collect();
        let (sub, _) = host.induced_subgraph(&sub_vertices);
        let m = path_graph(4);
        assert!(has_minor(&m, &sub));
        assert!(has_minor(&m, &host));
    }

    #[test]
    fn empty_and_oversized_minors() {
        let g = path_graph(3);
        assert!(has_minor(&Graph::new(0), &g));
        assert!(!has_minor(&path_graph(4), &g));
        assert!(!has_minor(&complete_graph(3), &g));
    }
}
