//! Graph traversal: BFS, connected components, tree/path/forest recognition,
//! and simple-path search (used by the `p-st-PATH` and `p-EMB(P)` problems of
//! Section 4).

use crate::graph::{Graph, Vertex};
use std::collections::VecDeque;

/// Breadth-first distances from a source vertex (`None` for unreachable
/// vertices).
pub fn bfs_distances(g: &Graph, source: Vertex) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.vertex_count()];
    if source >= g.vertex_count() {
        return dist;
    }
    dist[source] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v].unwrap();
        for w in g.neighbors(v) {
            if dist[w].is_none() {
                dist[w] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The connected components of a graph, each as a sorted vertex list; the
/// components are ordered by their smallest vertex.
pub fn connected_components(g: &Graph) -> Vec<Vec<Vertex>> {
    let mut seen = vec![false; g.vertex_count()];
    let mut components = Vec::new();
    for start in g.vertices() {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            comp.push(v);
            for w in g.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// Whether a graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).len() <= 1
}

/// Whether a graph is acyclic (a forest).
pub fn is_forest(g: &Graph) -> bool {
    // A forest has exactly n - c edges where c is the number of components.
    let c = connected_components(g).len();
    g.edge_count() + c == g.vertex_count() || (g.vertex_count() == 0 && g.edge_count() == 0)
}

/// Whether a graph is a tree in the paper's sense: connected and acyclic
/// (the single-vertex graph is a tree).
pub fn is_tree(g: &Graph) -> bool {
    g.vertex_count() >= 1 && is_connected(g) && g.edge_count() == g.vertex_count() - 1
}

/// Whether a graph is a path graph `P_k`: a tree whose maximum degree is at
/// most 2 (the single vertex counts as `P_1`).
pub fn is_path_graph(g: &Graph) -> bool {
    is_tree(g) && g.max_degree() <= 2
}

/// Whether a graph is a single cycle `C_k` (`k ≥ 3`): connected, every degree
/// exactly 2.
pub fn is_cycle_graph(g: &Graph) -> bool {
    g.vertex_count() >= 3 && is_connected(g) && g.vertices().all(|v| g.degree(v) == 2)
}

/// The length (number of edges) of a shortest path between `s` and `t`, if
/// any.
pub fn shortest_path_length(g: &Graph, s: Vertex, t: Vertex) -> Option<usize> {
    bfs_distances(g, s).get(t).copied().flatten()
}

/// Does the graph contain a *simple* path from `s` to `t` with at most
/// `max_edges` edges?  This is the problem `p-st-PATH` of Section 4 (for
/// undirected graphs).  Note that for simple graphs a shortest path is always
/// simple, so BFS suffices.
pub fn st_path_within(g: &Graph, s: Vertex, t: Vertex, max_edges: usize) -> bool {
    shortest_path_length(g, s, t)
        .map(|d| d <= max_edges)
        .unwrap_or(false)
}

/// The number of vertices on a longest *simple* path in the graph, computed
/// by exhaustive DFS — exponential time, used as the brute-force baseline for
/// the `p-EMB(P)` experiments and for path-minor detection on small graphs.
pub fn longest_path_length(g: &Graph) -> usize {
    fn dfs(g: &Graph, v: Vertex, visited: &mut Vec<bool>, best: &mut usize, length: usize) {
        *best = (*best).max(length);
        for w in g.neighbors(v) {
            if !visited[w] {
                visited[w] = true;
                dfs(g, w, visited, best, length + 1);
                visited[w] = false;
            }
        }
    }
    let mut best = 0usize;
    for start in g.vertices() {
        let mut visited = vec![false; g.vertex_count()];
        visited[start] = true;
        dfs(g, start, &mut visited, &mut best, 1);
    }
    best
}

/// Does the graph contain a simple path on exactly `k` vertices?  Brute-force
/// DFS baseline (the clever solvers live in `cq-solver`).
pub fn has_simple_path_of_order(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    fn dfs(g: &Graph, v: Vertex, visited: &mut Vec<bool>, remaining: usize) -> bool {
        if remaining == 0 {
            return true;
        }
        for w in g.neighbors(v) {
            if !visited[w] {
                visited[w] = true;
                if dfs(g, w, visited, remaining - 1) {
                    visited[w] = false;
                    return true;
                }
                visited[w] = false;
            }
        }
        false
    }
    g.vertices().any(|start| {
        let mut visited = vec![false; g.vertex_count()];
        visited[start] = true;
        dfs(g, start, &mut visited, k - 1)
    })
}

/// Does the graph contain a simple cycle on exactly `k ≥ 3` vertices?
/// Brute-force DFS baseline used by the `p-CYCLE` experiments.
pub fn has_simple_cycle_of_order(g: &Graph, k: usize) -> bool {
    if k < 3 {
        return false;
    }
    fn dfs(g: &Graph, start: Vertex, v: Vertex, visited: &mut Vec<bool>, remaining: usize) -> bool {
        if remaining == 0 {
            return g.has_edge(v, start);
        }
        for w in g.neighbors(v) {
            if !visited[w] && w > start {
                visited[w] = true;
                if dfs(g, start, w, visited, remaining - 1) {
                    visited[w] = false;
                    return true;
                }
                visited[w] = false;
            }
        }
        false
    }
    g.vertices().any(|start| {
        let mut visited = vec![false; g.vertex_count()];
        visited[start] = true;
        dfs(g, start, start, &mut visited, k - 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn bfs_on_path() {
        let p = families::path_graph(5);
        let d = bfs_distances(&p, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(shortest_path_length(&p, 0, 4), Some(4));
        assert_eq!(shortest_path_length(&p, 4, 0), Some(4));
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], None);
        assert_eq!(shortest_path_length(&g, 0, 3), None);
        assert!(!st_path_within(&g, 0, 3, 10));
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert!(!is_connected(&g));
        assert!(is_connected(&families::cycle_graph(4)));
        assert!(is_connected(&Graph::new(0)));
    }

    #[test]
    fn tree_path_cycle_recognition() {
        assert!(is_tree(&families::path_graph(4)));
        assert!(is_path_graph(&families::path_graph(4)));
        assert!(is_path_graph(&families::path_graph(1)));
        assert!(is_tree(&families::star_graph(5)));
        assert!(!is_path_graph(&families::star_graph(3)));
        assert!(!is_tree(&families::cycle_graph(4)));
        assert!(is_cycle_graph(&families::cycle_graph(4)));
        assert!(!is_cycle_graph(&families::path_graph(4)));
        assert!(is_forest(&Graph::from_edges(4, &[(0, 1), (2, 3)])));
        assert!(!is_forest(&families::cycle_graph(3)));
        assert!(!is_tree(&Graph::from_edges(4, &[(0, 1), (2, 3)])));
    }

    #[test]
    fn st_path_bound() {
        let c6 = families::cycle_graph(6);
        assert!(st_path_within(&c6, 0, 3, 3));
        assert!(!st_path_within(&c6, 0, 3, 2));
    }

    #[test]
    fn longest_path_in_small_graphs() {
        assert_eq!(longest_path_length(&families::path_graph(5)), 5);
        assert_eq!(longest_path_length(&families::cycle_graph(5)), 5);
        assert_eq!(longest_path_length(&families::star_graph(4)), 3);
        assert_eq!(longest_path_length(&families::complete_graph(4)), 4);
        // The 3x3 grid has a Hamiltonian path.
        assert_eq!(longest_path_length(&families::grid_graph(3, 3)), 9);
    }

    #[test]
    fn simple_path_of_order() {
        let star = families::star_graph(5);
        assert!(has_simple_path_of_order(&star, 3));
        assert!(!has_simple_path_of_order(&star, 4));
        assert!(has_simple_path_of_order(&star, 0));
        let grid = families::grid_graph(2, 3);
        assert!(has_simple_path_of_order(&grid, 6));
        assert!(!has_simple_path_of_order(&grid, 7));
    }

    #[test]
    fn simple_cycle_of_order() {
        let c5 = families::cycle_graph(5);
        assert!(has_simple_cycle_of_order(&c5, 5));
        assert!(!has_simple_cycle_of_order(&c5, 4));
        assert!(!has_simple_cycle_of_order(&c5, 2));
        let k4 = families::complete_graph(4);
        assert!(has_simple_cycle_of_order(&k4, 3));
        assert!(has_simple_cycle_of_order(&k4, 4));
        let grid = families::grid_graph(2, 2);
        assert!(has_simple_cycle_of_order(&grid, 4));
        assert!(!has_simple_cycle_of_order(&grid, 3));
    }
}
