//! # cq-graphs
//!
//! Simple undirected graphs, Gaifman graphs of relational structures,
//! traversal utilities, and graph minors — the graph-theoretic substrate of
//! the classification in Chen & Müller (PODS 2013).
//!
//! The paper's classification (Theorem 3.1) is driven by three graph
//! measures of the *Gaifman graphs of the cores* of a class of structures —
//! treewidth, pathwidth and tree depth — and by excluded-minor
//! characterizations of their boundedness (Theorem 2.3).  This crate supplies
//!
//! * [`Graph`] — an adjacency-list undirected graph with vertices `0..n`;
//! * [`gaifman_graph`] — the Gaifman graph of a structure;
//! * [`traversal`] — BFS/DFS, connected components, trees, paths, cycles;
//! * [`minor`] — minor maps (branch-set families), their verification, and
//!   backtracking minor search used by the excluded-minor experiments;
//! * [`families`] — paths, cycles, trees, grids, cliques as [`Graph`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod families;
pub mod graph;
pub mod minor;
pub mod traversal;

pub use graph::{gaifman_graph, Graph, Vertex};
pub use minor::{find_minor_map, has_minor, MinorMap};
pub use traversal::{
    bfs_distances, connected_components, is_connected, is_forest, is_path_graph, is_tree,
    longest_path_length,
};
