//! Binary codec ([`Encode`] / [`Decode`]) for [`Graph`] — the Gaifman
//! graphs persisted inside prepared-query plans (`cq_core::persist`).

use crate::graph::Graph;
use cq_structures::codec::{Decode, DecodeError, Encode, Reader};

impl Encode for Graph {
    fn encode(&self, out: &mut Vec<u8>) {
        self.vertex_count().encode(out);
        // Edges as ordered pairs `(a, b)` with `a < b`, in sorted order —
        // exactly what [`Graph::edges`] yields, so the encoding is
        // canonical and deterministic.
        self.edges().encode(out);
    }
}

impl Decode for Graph {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = usize::decode(r)?;
        if n as u64 > u64::from(u32::MAX) {
            return Err(DecodeError::LengthOutOfRange {
                what: "graph vertex count",
                len: n as u64,
            });
        }
        let edges = Vec::<(usize, usize)>::decode(r)?;
        // Validate before construction: `Graph::add_edge` asserts (panics)
        // on out-of-range endpoints, and a corrupt record must never panic.
        for &(a, b) in &edges {
            if a >= n || b >= n {
                return Err(DecodeError::Invalid {
                    what: "graph edge endpoint outside the vertex range",
                });
            }
            if a >= b {
                return Err(DecodeError::Invalid {
                    what: "graph edge not in canonical (a < b) order",
                });
            }
        }
        Ok(Graph::from_edges(n, &edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use cq_structures::codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn graph_roundtrips() {
        for g in [
            Graph::new(1),
            families::path_graph(6),
            families::cycle_graph(5),
            families::grid_graph(3, 3),
            families::star_graph(4),
            Graph::new(4), // edgeless, multiple vertices
        ] {
            let bytes = encode_to_vec(&g);
            let back: Graph = decode_from_slice(&bytes).expect("roundtrip");
            assert_eq!(back, g);
        }
    }

    #[test]
    fn out_of_range_edges_rejected_without_panic() {
        let mut bytes = Vec::new();
        3usize.encode(&mut bytes);
        vec![(0usize, 9usize)].encode(&mut bytes);
        assert!(decode_from_slice::<Graph>(&bytes).is_err());
        // Loop edge (a == b) is non-canonical.
        let mut bytes = Vec::new();
        3usize.encode(&mut bytes);
        vec![(1usize, 1usize)].encode(&mut bytes);
        assert!(decode_from_slice::<Graph>(&bytes).is_err());
    }
}
