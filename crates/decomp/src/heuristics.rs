//! Elimination orderings, elimination-based tree decompositions, and
//! heuristic treewidth upper bounds.
//!
//! Given any elimination ordering `π` of the vertices of `G`, simulating the
//! elimination process (connect the not-yet-eliminated neighbours of the
//! eliminated vertex into a clique) yields a tree decomposition whose width
//! is the maximum number of higher neighbours encountered.  Exact treewidth
//! is the minimum of this quantity over all orderings
//! ([`crate::treewidth::treewidth_exact`] finds the optimal one); the
//! *min-degree* and *min-fill* greedy orderings implemented here give cheap
//! upper bounds for larger graphs (used only by workload generation and
//! sanity checks, never by the classification of parameter-sized queries).

use crate::decomposition::TreeDecomposition;
use cq_graphs::{Graph, Vertex};
use std::collections::BTreeSet;

/// Simulate the elimination process along `order`, returning for each vertex
/// its *elimination bag* (the vertex together with its not-yet-eliminated
/// neighbours in the fill-in graph at the moment of elimination).
fn elimination_bags(g: &Graph, order: &[Vertex]) -> Vec<BTreeSet<Vertex>> {
    let n = g.vertex_count();
    assert_eq!(
        order.len(),
        n,
        "order must enumerate every vertex exactly once"
    );
    let mut fill = g.clone();
    let mut eliminated = vec![false; n];
    let mut bags: Vec<BTreeSet<Vertex>> = vec![BTreeSet::new(); n];
    for &v in order {
        let higher: Vec<Vertex> = fill.neighbors(v).filter(|&w| !eliminated[w]).collect();
        let mut bag: BTreeSet<Vertex> = higher.iter().copied().collect();
        bag.insert(v);
        bags[v] = bag;
        for i in 0..higher.len() {
            for j in (i + 1)..higher.len() {
                fill.add_edge(higher[i], higher[j]);
            }
        }
        eliminated[v] = true;
    }
    bags
}

/// The width achieved by eliminating along `order` (an upper bound on the
/// treewidth, tight when the order is optimal).
pub fn width_of_order(g: &Graph, order: &[Vertex]) -> usize {
    elimination_bags(g, order)
        .iter()
        .map(|b| b.len())
        .max()
        .unwrap_or(1)
        .saturating_sub(1)
}

/// Build a tree decomposition from an elimination ordering.  The bags are the
/// elimination bags; bag of `v` is attached to the bag of the earliest
/// vertex, among `v`'s higher neighbours, that is eliminated after `v` (or to
/// an arbitrary later bag when `v` has none, which keeps the tree connected).
pub fn decomposition_from_order(g: &Graph, order: &[Vertex]) -> TreeDecomposition {
    let n = g.vertex_count();
    if n == 0 {
        return TreeDecomposition {
            tree: Graph::new(1),
            bags: vec![BTreeSet::new()],
        };
    }
    let bags_by_vertex = elimination_bags(g, order);
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }
    // Bag i corresponds to order[i].
    let bags: Vec<BTreeSet<Vertex>> = order.iter().map(|&v| bags_by_vertex[v].clone()).collect();
    let mut tree = Graph::new(n);
    for (i, &v) in order.iter().enumerate() {
        if i + 1 == n {
            break;
        }
        // Earliest-later higher neighbour, else the next bag in order.
        let parent = bags_by_vertex[v]
            .iter()
            .filter(|&&w| w != v && position[w] > i)
            .min_by_key(|&&w| position[w])
            .map(|&w| position[w])
            .unwrap_or(i + 1);
        tree.add_edge(i, parent);
    }
    TreeDecomposition { tree, bags }
}

/// The min-degree elimination ordering: repeatedly eliminate a vertex of
/// minimum degree in the current fill-in graph.
pub fn min_degree_ordering(g: &Graph) -> Vec<Vertex> {
    greedy_ordering(g, |fill, eliminated, v| {
        fill.neighbors(v).filter(|&w| !eliminated[w]).count()
    })
}

/// The min-fill elimination ordering: repeatedly eliminate a vertex whose
/// elimination adds the fewest fill edges.
pub fn min_fill_ordering(g: &Graph) -> Vec<Vertex> {
    greedy_ordering(g, |fill, eliminated, v| {
        let nbrs: Vec<Vertex> = fill.neighbors(v).filter(|&w| !eliminated[w]).collect();
        let mut missing = 0usize;
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if !fill.has_edge(nbrs[i], nbrs[j]) {
                    missing += 1;
                }
            }
        }
        missing
    })
}

fn greedy_ordering<F>(g: &Graph, score: F) -> Vec<Vertex>
where
    F: Fn(&Graph, &[bool], Vertex) -> usize,
{
    let n = g.vertex_count();
    let mut fill = g.clone();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| (score(&fill, &eliminated, v), v))
            .expect("vertices remain");
        let higher: Vec<Vertex> = fill.neighbors(v).filter(|&w| !eliminated[w]).collect();
        for i in 0..higher.len() {
            for j in (i + 1)..higher.len() {
                fill.add_edge(higher[i], higher[j]);
            }
        }
        eliminated[v] = true;
        order.push(v);
    }
    order
}

/// A heuristic treewidth upper bound: the better of the min-degree and
/// min-fill orderings.
pub fn treewidth_upper_bound(g: &Graph) -> (usize, TreeDecomposition) {
    let candidates = [min_degree_ordering(g), min_fill_ordering(g)];
    let best = candidates
        .iter()
        .min_by_key(|o| width_of_order(g, o))
        .expect("two candidates");
    (width_of_order(g, best), decomposition_from_order(g, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::*;

    #[test]
    fn elimination_of_path_gives_width_1() {
        let p = path_graph(6);
        let order: Vec<Vertex> = (0..6).collect();
        assert_eq!(width_of_order(&p, &order), 1);
        let td = decomposition_from_order(&p, &order);
        assert!(td.is_valid_for(&p));
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn bad_order_on_path_can_be_worse() {
        // Eliminating the middle first on a path creates a fill edge, width 2
        // at worst; the heuristic orderings avoid this.
        let p = path_graph(3);
        assert_eq!(width_of_order(&p, &[1, 0, 2]), 2);
        assert_eq!(width_of_order(&p, &[0, 1, 2]), 1);
    }

    #[test]
    fn min_degree_on_tree_is_optimal() {
        let t = complete_binary_tree(3);
        let order = min_degree_ordering(&t);
        assert_eq!(width_of_order(&t, &order), 1);
        let td = decomposition_from_order(&t, &order);
        assert!(td.is_valid_for(&t));
    }

    #[test]
    fn min_fill_on_cycle_gives_width_2() {
        let c = cycle_graph(7);
        let order = min_fill_ordering(&c);
        assert_eq!(width_of_order(&c, &order), 2);
    }

    #[test]
    fn upper_bound_on_grid() {
        // tw(grid 3x3) = 3; greedy heuristics achieve 3 on this small grid.
        let g = grid_graph(3, 3);
        let (w, td) = treewidth_upper_bound(&g);
        assert!(td.is_valid_for(&g));
        assert!((3..=4).contains(&w));
    }

    #[test]
    fn upper_bound_on_clique_is_exact() {
        let k = complete_graph(5);
        let (w, td) = treewidth_upper_bound(&k);
        assert_eq!(w, 4);
        assert!(td.is_valid_for(&k));
    }

    #[test]
    fn decomposition_from_order_valid_on_various_graphs() {
        for g in [
            star_graph(5),
            caterpillar_graph(4, 2),
            grid_graph(2, 4),
            complete_bipartite_graph(2, 3),
        ] {
            let order = min_fill_ordering(&g);
            let td = decomposition_from_order(&g, &order);
            assert!(td.is_valid_for(&g), "invalid decomposition for {g}");
            assert_eq!(td.width(), width_of_order(&g, &order));
        }
    }

    #[test]
    fn empty_graph_handled() {
        let g = Graph::new(0);
        let td = decomposition_from_order(&g, &[]);
        assert_eq!(td.bag_count(), 1);
    }

    #[test]
    #[should_panic]
    fn order_must_cover_all_vertices() {
        let g = path_graph(3);
        let _ = width_of_order(&g, &[0, 1]);
    }
}
