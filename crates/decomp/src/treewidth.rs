//! Exact treewidth by dynamic programming over vertex subsets.
//!
//! Treewidth equals the minimum over elimination orderings of the maximum
//! number of *higher neighbours* encountered during elimination.  The
//! Bodlaender–Fomin–Koster–Kratsch–Thilikos subset DP computes this minimum
//! in `O*(2^n)`:
//!
//! `TW(S) = min_{v ∈ S} max( TW(S \ {v}), |Q(S \ {v}, v)| )`, `TW(∅) = 0`,
//!
//! where `Q(S, v)` is the set of vertices `w ∉ S ∪ {v}` reachable from `v`
//! in `G[S ∪ {v, w}]` — exactly the higher neighbours `v` would have if the
//! vertices of `S` were eliminated before it.  `TW(V)` is the treewidth and
//! the argmin choices recover an optimal elimination ordering, from which
//! [`crate::heuristics::decomposition_from_order`] builds an optimal tree
//! decomposition.
//!
//! The DP is exponential in the number of vertices; it is intended for the
//! parameter-sized query structures of `p-HOM` instances (the paper's
//! reductions likewise spend time effectively bounded in the parameter to
//! find decompositions, cf. Lemma 3.4).  [`EXACT_LIMIT`] guards the subset
//! enumeration; larger graphs fall back to the heuristic upper bound with a
//! clear warning in the return type of [`treewidth`].

use crate::decomposition::TreeDecomposition;
use crate::heuristics;
use cq_graphs::{gaifman_graph, Graph, Vertex};
use cq_structures::Structure;

/// Largest vertex count for which the exact subset DP is attempted.
pub const EXACT_LIMIT: usize = 22;

/// `Q(S, v)`: the number (and set) of vertices `w ∉ S ∪ {v}` reachable from
/// `v` in `G[S ∪ {v, w}]` — i.e. reachable from `v` through interior
/// vertices drawn only from `S`.
fn q_set(g: &Graph, s: u64, v: Vertex) -> Vec<Vertex> {
    let n = g.vertex_count();
    let mut reached_in_s = vec![false; n];
    let mut out = Vec::new();
    let mut out_mark = vec![false; n];
    let mut stack = vec![v];
    let mut visited_v = vec![false; n];
    visited_v[v] = true;
    while let Some(u) = stack.pop() {
        for w in g.neighbors(u) {
            if w == v {
                continue;
            }
            if s >> w & 1 == 1 {
                if !reached_in_s[w] {
                    reached_in_s[w] = true;
                    visited_v[w] = true;
                    stack.push(w);
                }
            } else if !out_mark[w] {
                out_mark[w] = true;
                out.push(w);
            }
        }
    }
    out
}

/// Exact treewidth of a graph together with an optimal tree decomposition.
///
/// Panics when the graph has more than [`EXACT_LIMIT`] vertices — callers
/// that may receive large graphs should use [`treewidth`] instead.
pub fn treewidth_exact(g: &Graph) -> (usize, TreeDecomposition) {
    crate::stats::record_treewidth_call();
    let n = g.vertex_count();
    assert!(
        n <= EXACT_LIMIT,
        "treewidth_exact is exponential; graph has {n} > {EXACT_LIMIT} vertices"
    );
    if n == 0 {
        return (0, TreeDecomposition::trivial(g));
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let size = 1usize << n;
    // dp[s] = optimal max-cost of eliminating exactly the vertices of s first.
    let mut dp = vec![u32::MAX; size];
    let mut choice: Vec<u8> = vec![u8::MAX; size];
    dp[0] = 0;
    // Iterate subsets in increasing popcount order by plain increasing value:
    // any s > 0 has all its (s \ {v}) strictly smaller, so increasing value
    // order is a valid evaluation order.
    for s in 1..=full {
        let mut best = u32::MAX;
        let mut best_v = u8::MAX;
        let mut bits = s;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev = s & !(1u64 << v);
            let sub = dp[prev as usize];
            if sub == u32::MAX {
                continue;
            }
            let cost = q_set(g, prev, v).len() as u32;
            let val = sub.max(cost);
            if val < best {
                best = val;
                best_v = v as u8;
            }
        }
        dp[s as usize] = best;
        choice[s as usize] = best_v;
    }
    let width = dp[full as usize] as usize;
    // Recover the elimination ordering: choice[s] is the vertex eliminated
    // *last* among s.
    let mut order_rev = Vec::with_capacity(n);
    let mut s = full;
    while s != 0 {
        let v = choice[s as usize] as usize;
        order_rev.push(v);
        s &= !(1u64 << v);
    }
    order_rev.reverse();
    let td = heuristics::decomposition_from_order(g, &order_rev);
    debug_assert!(td.is_valid_for(g));
    debug_assert_eq!(td.width(), width);
    (width, td)
}

/// Treewidth with a graceful fallback: exact when the graph has at most
/// [`EXACT_LIMIT`] vertices, otherwise the heuristic upper bound.  The
/// boolean in the result is `true` when the value is exact.
pub fn treewidth(g: &Graph) -> (usize, TreeDecomposition, bool) {
    if g.vertex_count() <= EXACT_LIMIT {
        let (w, td) = treewidth_exact(g);
        (w, td, true)
    } else {
        let (w, td) = heuristics::treewidth_upper_bound(g);
        (w, td, false)
    }
}

/// Treewidth of a structure (the treewidth of its Gaifman graph,
/// Section 2.2), exact.
pub fn treewidth_of_structure(s: &Structure) -> (usize, TreeDecomposition) {
    treewidth_exact(&gaifman_graph(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::*;

    #[test]
    fn treewidth_of_basic_families() {
        assert_eq!(treewidth_exact(&path_graph(1)).0, 0);
        assert_eq!(treewidth_exact(&path_graph(6)).0, 1);
        assert_eq!(treewidth_exact(&star_graph(5)).0, 1);
        assert_eq!(treewidth_exact(&complete_binary_tree(3)).0, 1);
        assert_eq!(treewidth_exact(&cycle_graph(5)).0, 2);
        assert_eq!(treewidth_exact(&cycle_graph(8)).0, 2);
        assert_eq!(treewidth_exact(&complete_graph(4)).0, 3);
        assert_eq!(treewidth_exact(&complete_graph(6)).0, 5);
    }

    #[test]
    fn treewidth_of_grids() {
        // tw of the k x m grid (k <= m) is k (for k >= 2).
        assert_eq!(treewidth_exact(&grid_graph(2, 2)).0, 2);
        assert_eq!(treewidth_exact(&grid_graph(2, 4)).0, 2);
        assert_eq!(treewidth_exact(&grid_graph(3, 3)).0, 3);
        assert_eq!(treewidth_exact(&grid_graph(1, 6)).0, 1);
    }

    #[test]
    fn treewidth_of_complete_bipartite() {
        // tw(K_{m,n}) = min(m, n) for m, n >= 1.
        assert_eq!(treewidth_exact(&complete_bipartite_graph(2, 3)).0, 2);
        assert_eq!(treewidth_exact(&complete_bipartite_graph(3, 3)).0, 3);
        assert_eq!(treewidth_exact(&complete_bipartite_graph(1, 4)).0, 1);
    }

    #[test]
    fn decomposition_is_valid_and_optimal_width() {
        for g in [
            cycle_graph(6),
            grid_graph(2, 3),
            caterpillar_graph(4, 2),
            complete_bipartite_graph(2, 4),
        ] {
            let (w, td) = treewidth_exact(&g);
            assert!(td.is_valid_for(&g));
            assert_eq!(td.width(), w);
        }
    }

    #[test]
    fn edgeless_graph_has_treewidth_0() {
        let g = Graph::new(5);
        let (w, td) = treewidth_exact(&g);
        assert_eq!(w, 0);
        assert!(td.is_valid_for(&g));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(treewidth_exact(&g).0, 0);
    }

    #[test]
    fn structure_treewidth_bk_is_1() {
        // Example 2.2: the class B has bounded treewidth (the Gaifman graph
        // of B_k is the tree T_k).
        for k in 0..=3 {
            let b = cq_structures::families::binary_tree_b(k);
            let expected = if k == 0 { 0 } else { 1 };
            assert_eq!(treewidth_of_structure(&b).0, expected);
        }
    }

    #[test]
    fn fallback_flag_for_large_graphs() {
        let g = grid_graph(5, 5); // 25 vertices > EXACT_LIMIT
        let (w, td, exact) = treewidth(&g);
        assert!(!exact);
        assert!(td.is_valid_for(&g));
        assert!(w >= 5); // heuristic upper bound can exceed the true value 5
        let small = grid_graph(2, 2);
        let (w2, _, exact2) = treewidth(&small);
        assert!(exact2);
        assert_eq!(w2, 2);
    }

    #[test]
    #[should_panic]
    fn exact_rejects_oversized_graphs() {
        let _ = treewidth_exact(&grid_graph(5, 5));
    }

    #[test]
    fn treewidth_monotone_under_minors_spot_check() {
        // tw is minor-monotone; deleting a vertex or contracting an edge
        // never increases it.
        let g = grid_graph(2, 3);
        let (w, _) = treewidth_exact(&g);
        let d = g.delete_vertex(0);
        assert!(treewidth_exact(&d).0 <= w);
        let c = g.contract_edge(0, 1);
        assert!(treewidth_exact(&c).0 <= w);
    }
}
