//! Thread-local instrumentation counters for the exponential width
//! computations.
//!
//! The exact width functions ([`crate::treewidth::treewidth_exact`],
//! [`crate::pathwidth::pathwidth_exact`], [`crate::treedepth::treedepth_exact`])
//! are the expensive per-query work of the evaluation pipeline, so the
//! prepared-query engine must invoke each **at most once per query**.  These
//! counters exist so tests can assert that property instead of trusting it:
//! they are bumped at the entry of each exact function and read back as a
//! [`DecompCounts`] snapshot.
//!
//! The counters are thread-local, which makes them race-free under Rust's
//! default multi-threaded test harness (each `#[test]` runs on its own
//! thread and observes only its own calls).

use std::cell::Cell;

thread_local! {
    static TREEWIDTH_CALLS: Cell<u64> = const { Cell::new(0) };
    static PATHWIDTH_CALLS: Cell<u64> = const { Cell::new(0) };
    static TREEDEPTH_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of the per-thread width-computation call counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecompCounts {
    /// Calls to `treewidth_exact` on this thread.
    pub treewidth_calls: u64,
    /// Calls to `pathwidth_exact` on this thread.
    pub pathwidth_calls: u64,
    /// Calls to `treedepth_exact` on this thread.
    pub treedepth_calls: u64,
}

impl DecompCounts {
    /// Total number of exact width computations.
    pub fn total(&self) -> u64 {
        self.treewidth_calls + self.pathwidth_calls + self.treedepth_calls
    }

    /// Component-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &DecompCounts) -> DecompCounts {
        DecompCounts {
            treewidth_calls: self.treewidth_calls - earlier.treewidth_calls,
            pathwidth_calls: self.pathwidth_calls - earlier.pathwidth_calls,
            treedepth_calls: self.treedepth_calls - earlier.treedepth_calls,
        }
    }
}

/// Read the current thread's counters.
pub fn counts() -> DecompCounts {
    DecompCounts {
        treewidth_calls: TREEWIDTH_CALLS.with(Cell::get),
        pathwidth_calls: PATHWIDTH_CALLS.with(Cell::get),
        treedepth_calls: TREEDEPTH_CALLS.with(Cell::get),
    }
}

/// Reset the current thread's counters to zero.
pub fn reset() {
    TREEWIDTH_CALLS.with(|c| c.set(0));
    PATHWIDTH_CALLS.with(|c| c.set(0));
    TREEDEPTH_CALLS.with(|c| c.set(0));
}

pub(crate) fn record_treewidth_call() {
    TREEWIDTH_CALLS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_pathwidth_call() {
    PATHWIDTH_CALLS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_treedepth_call() {
    TREEDEPTH_CALLS.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::cycle_graph;

    #[test]
    fn counters_track_exact_calls_on_this_thread() {
        let before = counts();
        let g = cycle_graph(5);
        let _ = crate::treewidth::treewidth_exact(&g);
        let _ = crate::pathwidth::pathwidth_exact(&g);
        let _ = crate::treedepth::treedepth_exact(&g);
        let _ = crate::treedepth::treedepth_exact(&g);
        let delta = counts().since(&before);
        assert_eq!(delta.treewidth_calls, 1);
        assert_eq!(delta.pathwidth_calls, 1);
        assert_eq!(delta.treedepth_calls, 2);
        assert_eq!(delta.total(), 4);
    }
}
