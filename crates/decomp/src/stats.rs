//! Thread-local instrumentation counters for the exponential width
//! computations.
//!
//! The exact width functions ([`crate::treewidth::treewidth_exact`],
//! [`crate::pathwidth::pathwidth_exact`], [`crate::treedepth::treedepth_exact`])
//! are the expensive per-query work of the evaluation pipeline, so the
//! prepared-query engine must invoke each **at most once per query**.  These
//! counters exist so tests can assert that property instead of trusting it:
//! they are bumped at the entry of each exact function and read back as a
//! [`DecompCounts`] snapshot.
//!
//! The counters are thread-local, which makes them race-free under Rust's
//! default multi-threaded test harness (each `#[test]` runs on its own
//! thread and observes only its own calls).  Thread-locality also means a
//! caller that fans work out to worker threads (the engine's parallel
//! `solve_batch`) sees **zero** on its own thread: for cross-thread totals
//! use [`global_counts`], a process-wide monotonic aggregate bumped by the
//! same record points, or the engine's own per-engine aggregation
//! (`Engine::prep_stats`), which sums worker-thread deltas exactly.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static TREEWIDTH_CALLS: Cell<u64> = const { Cell::new(0) };
    static PATHWIDTH_CALLS: Cell<u64> = const { Cell::new(0) };
    static TREEDEPTH_CALLS: Cell<u64> = const { Cell::new(0) };
}

static GLOBAL_TREEWIDTH_CALLS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_PATHWIDTH_CALLS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_TREEDEPTH_CALLS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the per-thread width-computation call counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecompCounts {
    /// Calls to `treewidth_exact` on this thread.
    pub treewidth_calls: u64,
    /// Calls to `pathwidth_exact` on this thread.
    pub pathwidth_calls: u64,
    /// Calls to `treedepth_exact` on this thread.
    pub treedepth_calls: u64,
}

impl DecompCounts {
    /// Total number of exact width computations.
    pub fn total(&self) -> u64 {
        self.treewidth_calls + self.pathwidth_calls + self.treedepth_calls
    }

    /// Component-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &DecompCounts) -> DecompCounts {
        DecompCounts {
            treewidth_calls: self.treewidth_calls - earlier.treewidth_calls,
            pathwidth_calls: self.pathwidth_calls - earlier.pathwidth_calls,
            treedepth_calls: self.treedepth_calls - earlier.treedepth_calls,
        }
    }
}

/// Read the current thread's counters.
pub fn counts() -> DecompCounts {
    DecompCounts {
        treewidth_calls: TREEWIDTH_CALLS.with(Cell::get),
        pathwidth_calls: PATHWIDTH_CALLS.with(Cell::get),
        treedepth_calls: TREEDEPTH_CALLS.with(Cell::get),
    }
}

/// Reset the current thread's counters to zero.
///
/// The process-wide aggregate of [`global_counts`] is intentionally not
/// resettable: concurrent threads may be mid-measurement, so callers diff
/// snapshots with [`DecompCounts::since`] instead.
pub fn reset() {
    TREEWIDTH_CALLS.with(|c| c.set(0));
    PATHWIDTH_CALLS.with(|c| c.set(0));
    TREEDEPTH_CALLS.with(|c| c.set(0));
}

/// Read the process-wide counters, aggregated across **all** threads.
///
/// Monotonically non-decreasing for the lifetime of the process; callers
/// measure work by diffing two snapshots ([`DecompCounts::since`]).  This is
/// the counter to consult when the measured code fans out to worker threads
/// (the per-thread [`counts`] would silently undercount in that case).
pub fn global_counts() -> DecompCounts {
    DecompCounts {
        treewidth_calls: GLOBAL_TREEWIDTH_CALLS.load(Ordering::Relaxed),
        pathwidth_calls: GLOBAL_PATHWIDTH_CALLS.load(Ordering::Relaxed),
        treedepth_calls: GLOBAL_TREEDEPTH_CALLS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_treewidth_call() {
    TREEWIDTH_CALLS.with(|c| c.set(c.get() + 1));
    GLOBAL_TREEWIDTH_CALLS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_pathwidth_call() {
    PATHWIDTH_CALLS.with(|c| c.set(c.get() + 1));
    GLOBAL_PATHWIDTH_CALLS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_treedepth_call() {
    TREEDEPTH_CALLS.with(|c| c.set(c.get() + 1));
    GLOBAL_TREEDEPTH_CALLS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::cycle_graph;

    #[test]
    fn counters_track_exact_calls_on_this_thread() {
        let before = counts();
        let g = cycle_graph(5);
        let _ = crate::treewidth::treewidth_exact(&g);
        let _ = crate::pathwidth::pathwidth_exact(&g);
        let _ = crate::treedepth::treedepth_exact(&g);
        let _ = crate::treedepth::treedepth_exact(&g);
        let delta = counts().since(&before);
        assert_eq!(delta.treewidth_calls, 1);
        assert_eq!(delta.pathwidth_calls, 1);
        assert_eq!(delta.treedepth_calls, 2);
        assert_eq!(delta.total(), 4);
    }

    #[test]
    fn global_counters_see_worker_thread_calls_that_thread_locals_miss() {
        let local_before = counts();
        let global_before = global_counts();
        let g = cycle_graph(5);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _ = crate::treewidth::treewidth_exact(&g);
                    let _ = crate::pathwidth::pathwidth_exact(&g);
                });
            }
        });
        // The calling thread ran none of the DPs itself: its thread-locals
        // are unchanged — exactly the undercount the global aggregate fixes.
        let local_delta = counts().since(&local_before);
        assert_eq!(local_delta.total(), 0);
        // The global aggregate saw both workers.  (>= rather than ==: other
        // tests in this binary run concurrently and also bump the globals.)
        let global_delta = global_counts().since(&global_before);
        assert!(global_delta.treewidth_calls >= 2);
        assert!(global_delta.pathwidth_calls >= 2);
    }
}
