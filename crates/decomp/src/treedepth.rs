//! Exact tree depth by recursive vertex deletion, with a witnessing
//! elimination forest.
//!
//! The tree depth of a connected graph satisfies the recursion
//! `td(G) = 1 + min_{v} td(G - v)` (with `td` of a single vertex being 1),
//! and for disconnected graphs it is the maximum over the connected
//! components (Section 2.2; the paper defines it through closures of rooted
//! trees of height `h`, which is equivalent — the chosen vertex `v` is the
//! root, the components of `G - v` hang below it).  We memoize on vertex
//! subsets of the input graph, which keeps the computation exact and fast
//! for the parameter-sized structures it is applied to.

use crate::decomposition::EliminationForest;
use cq_graphs::{gaifman_graph, traversal, Graph, Vertex};
use cq_structures::Structure;
use std::collections::HashMap;

/// Largest vertex count for which the exact recursion is attempted.
pub const EXACT_LIMIT: usize = 22;

struct Memo<'a> {
    g: &'a Graph,
    /// Best tree-depth value per vertex subset (bitmask).
    depth: HashMap<u64, usize>,
    /// The root chosen for a *connected* subset (bitmask), for witness
    /// reconstruction.
    root_choice: HashMap<u64, Vertex>,
}

impl<'a> Memo<'a> {
    fn new(g: &'a Graph) -> Self {
        Memo {
            g,
            depth: HashMap::new(),
            root_choice: HashMap::new(),
        }
    }

    fn components(&self, mask: u64) -> Vec<u64> {
        let mut seen = 0u64;
        let mut comps = Vec::new();
        let mut bits = mask;
        while bits != 0 {
            let start = bits.trailing_zeros() as usize;
            if seen >> start & 1 == 1 {
                bits &= bits - 1;
                continue;
            }
            // BFS within the mask.
            let mut comp = 0u64;
            let mut stack = vec![start];
            comp |= 1 << start;
            while let Some(v) = stack.pop() {
                for w in self.g.neighbors(v) {
                    if mask >> w & 1 == 1 && comp >> w & 1 == 0 {
                        comp |= 1 << w;
                        stack.push(w);
                    }
                }
            }
            seen |= comp;
            comps.push(comp);
            bits &= !comp;
        }
        comps
    }

    fn td(&mut self, mask: u64) -> usize {
        if mask == 0 {
            return 0;
        }
        if let Some(&d) = self.depth.get(&mask) {
            return d;
        }
        let comps = self.components(mask);
        let result = if comps.len() > 1 {
            comps.iter().map(|&c| self.td(c)).max().unwrap_or(0)
        } else {
            // Connected: 1 + min over root choices.
            if mask.count_ones() == 1 {
                1
            } else {
                let mut best = usize::MAX;
                let mut best_root = mask.trailing_zeros() as usize;
                let mut bits = mask;
                while bits != 0 {
                    let v = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let rest = mask & !(1u64 << v);
                    let d = 1 + self.td(rest);
                    if d < best {
                        best = d;
                        best_root = v;
                    }
                    // Lower bound: tree depth of a connected graph on m
                    // vertices is at least ceil(log2(m + 1)); stop early when
                    // reached.
                    let m = mask.count_ones() as usize;
                    let lower = (usize::BITS - m.leading_zeros()) as usize;
                    if best <= lower {
                        break;
                    }
                }
                self.root_choice.insert(mask, best_root);
                best
            }
        };
        self.depth.insert(mask, result);
        result
    }

    /// Reconstruct an elimination forest of optimal height for `mask`,
    /// writing parent pointers into `parent` with `root_parent` as the parent
    /// of the roots of this sub-forest.
    fn build_forest(
        &mut self,
        mask: u64,
        root_parent: Option<Vertex>,
        parent: &mut Vec<Option<Vertex>>,
    ) {
        if mask == 0 {
            return;
        }
        let comps = self.components(mask);
        if comps.len() > 1 {
            for c in comps {
                self.build_forest(c, root_parent, parent);
            }
            return;
        }
        if mask.count_ones() == 1 {
            let v = mask.trailing_zeros() as usize;
            parent[v] = root_parent;
            return;
        }
        // Ensure the root choice has been computed.
        self.td(mask);
        let root = *self
            .root_choice
            .get(&mask)
            .expect("root choice recorded for connected subsets");
        parent[root] = root_parent;
        self.build_forest(mask & !(1u64 << root), Some(root), parent);
    }
}

/// Exact tree depth of a graph together with a witnessing elimination forest
/// of exactly that height.
///
/// Panics when the graph has more than [`EXACT_LIMIT`] vertices.
pub fn treedepth_exact(g: &Graph) -> (usize, EliminationForest) {
    crate::stats::record_treedepth_call();
    let n = g.vertex_count();
    assert!(
        n <= EXACT_LIMIT,
        "treedepth_exact is exponential; graph has {n} > {EXACT_LIMIT} vertices"
    );
    if n == 0 {
        return (0, EliminationForest { parent: Vec::new() });
    }
    let full: u64 = (1u64 << n) - 1;
    let mut memo = Memo::new(g);
    let depth = memo.td(full);
    let mut parent = vec![None; n];
    memo.build_forest(full, None, &mut parent);
    let forest = EliminationForest { parent };
    debug_assert!(forest.is_valid_for(g));
    debug_assert_eq!(forest.height(), depth);
    (depth, forest)
}

/// A cheap tree-depth *upper bound* from a DFS forest: the height of a
/// depth-first spanning forest is a valid elimination forest height (every
/// non-tree edge of a DFS forest is a back edge, hence joins an
/// ancestor–descendant pair).  Used for large graphs and as a sanity check.
pub fn treedepth_dfs_upper_bound(g: &Graph) -> (usize, EliminationForest) {
    let n = g.vertex_count();
    let mut parent: Vec<Option<Vertex>> = vec![None; n];
    let mut visited = vec![false; n];
    fn dfs(g: &Graph, v: Vertex, visited: &mut [bool], parent: &mut [Option<Vertex>]) {
        visited[v] = true;
        for w in g.neighbors(v) {
            if !visited[w] {
                parent[w] = Some(v);
                dfs(g, w, visited, parent);
            }
        }
    }
    for v in 0..n {
        if !visited[v] {
            dfs(g, v, &mut visited, &mut parent);
        }
    }
    let forest = EliminationForest { parent };
    (forest.height(), forest)
}

/// Tree depth of a structure (of its Gaifman graph), exact.
pub fn treedepth_of_structure(s: &Structure) -> (usize, EliminationForest) {
    treedepth_exact(&gaifman_graph(s))
}

/// The information-theoretic lower bound `td(G) ≥ ⌈log2(ℓ + 1)⌉` where `ℓ`
/// is the number of vertices on a longest simple path of `G` (tree depth is
/// minor-monotone and `td(P_ℓ) = ⌈log2(ℓ+1)⌉`).
pub fn treedepth_path_lower_bound(g: &Graph) -> usize {
    let l = traversal::longest_path_length(g);
    (usize::BITS - l.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathwidth::pathwidth_exact;
    use cq_graphs::families::*;

    /// td(P_k) = ceil(log2(k + 1)).
    fn expected_path_treedepth(k: usize) -> usize {
        (usize::BITS - k.leading_zeros()) as usize
    }

    #[test]
    fn treedepth_of_paths_grows_logarithmically() {
        // Example 2.2: the class P has unbounded tree depth; specifically
        // td(P_k) = ceil(log2(k+1)).
        let expected = [
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (15, 4),
            (16, 5),
        ];
        for (k, d) in expected {
            assert_eq!(treedepth_exact(&path_graph(k)).0, d, "P_{k}");
            assert_eq!(expected_path_treedepth(k), d);
        }
    }

    #[test]
    fn treedepth_of_small_families() {
        assert_eq!(treedepth_exact(&star_graph(5)).0, 2);
        assert_eq!(treedepth_exact(&complete_graph(4)).0, 4);
        assert_eq!(treedepth_exact(&cycle_graph(3)).0, 3);
        assert_eq!(treedepth_exact(&cycle_graph(4)).0, 3);
        assert_eq!(treedepth_exact(&cycle_graph(7)).0, 4);
        // Complete binary trees: td(T_h) = h + 1.
        assert_eq!(treedepth_exact(&complete_binary_tree(1)).0, 2);
        assert_eq!(treedepth_exact(&complete_binary_tree(2)).0, 3);
        assert_eq!(treedepth_exact(&complete_binary_tree(3)).0, 4);
    }

    #[test]
    fn treedepth_exceeds_pathwidth() {
        // pw(G) <= td(G) - 1 for every graph with an edge.
        for g in [
            path_graph(8),
            cycle_graph(6),
            star_graph(4),
            grid_graph(2, 4),
            complete_binary_tree(3),
        ] {
            assert!(pathwidth_exact(&g).0 < treedepth_exact(&g).0);
        }
    }

    #[test]
    fn witness_forest_is_valid_and_tight() {
        for g in [
            path_graph(7),
            cycle_graph(5),
            grid_graph(2, 3),
            caterpillar_graph(3, 2),
            complete_bipartite_graph(2, 3),
        ] {
            let (d, forest) = treedepth_exact(&g);
            assert!(forest.is_valid_for(&g));
            assert_eq!(forest.height(), d);
        }
    }

    #[test]
    fn disconnected_graph_takes_component_maximum() {
        // P_2 ∪ P_7: td = max(2, 3) = 3.
        let mut g = Graph::new(9);
        g.add_edge(0, 1);
        for i in 2..8 {
            g.add_edge(i, i + 1);
        }
        let (d, forest) = treedepth_exact(&g);
        assert_eq!(d, 3);
        assert!(forest.is_valid_for(&g));
        assert!(forest.roots().len() >= 2);
    }

    #[test]
    fn dfs_upper_bound_is_an_upper_bound() {
        for g in [path_graph(8), cycle_graph(6), grid_graph(3, 3)] {
            let (exact, _) = treedepth_exact(&g);
            let (ub, forest) = treedepth_dfs_upper_bound(&g);
            assert!(forest.is_valid_for(&g));
            assert!(ub >= exact);
        }
    }

    #[test]
    fn path_lower_bound_holds() {
        for g in [path_graph(8), complete_binary_tree(3), grid_graph(2, 4)] {
            assert!(treedepth_path_lower_bound(&g) <= treedepth_exact(&g).0);
        }
    }

    #[test]
    fn edgeless_and_empty() {
        assert_eq!(treedepth_exact(&Graph::new(4)).0, 1);
        assert_eq!(treedepth_exact(&Graph::new(0)).0, 0);
    }

    #[test]
    fn structure_treedepth_of_star_query() {
        let s = cq_structures::families::star(6);
        assert_eq!(treedepth_of_structure(&s).0, 2);
    }

    #[test]
    #[should_panic]
    fn exact_rejects_oversized_graphs() {
        let _ = treedepth_exact(&grid_graph(5, 5));
    }
}
