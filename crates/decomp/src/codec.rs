//! Binary codec ([`Encode`] / [`Decode`]) for the decomposition
//! certificates a prepared query persists: tree decompositions, path
//! decompositions, elimination forests, width profiles, and the full
//! [`StructuralAnalysis`] bundle.
//!
//! Decoding re-establishes the *shape* invariants the in-memory types rely
//! on (bag indices parallel to tree vertices, in-range and **acyclic**
//! parent maps — a cyclic parent map would send
//! [`EliminationForest::depths`] into unbounded recursion), so a corrupted
//! record fails cleanly instead of panicking or hanging.  Semantic validity
//! against a particular graph ([`TreeDecomposition::is_valid_for`] and
//! friends) is the plan-store loader's job: it has the graph, the decoder
//! does not.

use crate::decomposition::{EliminationForest, PathDecomposition, TreeDecomposition};
use crate::{StructuralAnalysis, WidthProfile};
use cq_graphs::Graph;
use cq_structures::codec::{Decode, DecodeError, Encode, Reader};
use std::collections::BTreeSet;

impl Encode for WidthProfile {
    fn encode(&self, out: &mut Vec<u8>) {
        self.treewidth.encode(out);
        self.pathwidth.encode(out);
        self.treedepth.encode(out);
    }
}

impl Decode for WidthProfile {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(WidthProfile {
            treewidth: usize::decode(r)?,
            pathwidth: usize::decode(r)?,
            treedepth: usize::decode(r)?,
        })
    }
}

impl Encode for TreeDecomposition {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tree.encode(out);
        self.bags.encode(out);
    }
}

impl Decode for TreeDecomposition {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tree = Graph::decode(r)?;
        let bags = Vec::<BTreeSet<usize>>::decode(r)?;
        if bags.len() != tree.vertex_count() {
            return Err(DecodeError::Invalid {
                what: "bag count differs from decomposition-tree vertex count",
            });
        }
        Ok(TreeDecomposition { tree, bags })
    }
}

impl Encode for PathDecomposition {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bags.encode(out);
    }
}

impl Decode for PathDecomposition {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PathDecomposition {
            bags: Vec::<BTreeSet<usize>>::decode(r)?,
        })
    }
}

impl Encode for EliminationForest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.parent.encode(out);
    }
}

impl Decode for EliminationForest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let parent = Vec::<Option<usize>>::decode(r)?;
        let n = parent.len();
        if parent.iter().flatten().any(|&p| p >= n) {
            return Err(DecodeError::Invalid {
                what: "elimination-forest parent outside the vertex range",
            });
        }
        // Reject parent cycles at decode time: the recursive depth/height
        // computations assume a forest and would otherwise recurse without
        // bound on hostile input.  A walk of more than `n` steps from any
        // vertex proves a cycle.
        for v in 0..n {
            let mut cur = parent[v];
            let mut steps = 0usize;
            while let Some(p) = cur {
                steps += 1;
                if steps > n {
                    return Err(DecodeError::Invalid {
                        what: "elimination-forest parent map contains a cycle",
                    });
                }
                cur = parent[p];
            }
        }
        Ok(EliminationForest { parent })
    }
}

impl Encode for StructuralAnalysis {
    fn encode(&self, out: &mut Vec<u8>) {
        self.widths.encode(out);
        self.tree_decomposition.encode(out);
        self.path_decomposition.encode(out);
        self.elimination_forest.encode(out);
    }
}

impl Decode for StructuralAnalysis {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StructuralAnalysis {
            widths: WidthProfile::decode(r)?,
            tree_decomposition: TreeDecomposition::decode(r)?,
            path_decomposition: PathDecomposition::decode(r)?,
            elimination_forest: EliminationForest::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::{cycle_graph, grid_graph, path_graph, star_graph};
    use cq_structures::codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn certificates_roundtrip_with_validity_preserved() {
        for g in [
            path_graph(6),
            cycle_graph(5),
            star_graph(4),
            grid_graph(2, 3),
        ] {
            let a = crate::analyze(&g);
            let bytes = encode_to_vec(&a);
            let back: StructuralAnalysis = decode_from_slice(&bytes).expect("roundtrip");
            assert_eq!(back.widths, a.widths);
            assert_eq!(back.tree_decomposition, a.tree_decomposition);
            assert_eq!(back.path_decomposition, a.path_decomposition);
            assert_eq!(back.elimination_forest, a.elimination_forest);
            assert!(back.tree_decomposition.is_valid_for(&g));
            assert!(back.path_decomposition.is_valid_for(&g));
            assert!(back.elimination_forest.is_valid_for(&g));
        }
    }

    #[test]
    fn staircase_form_roundtrips() {
        let g = path_graph(5);
        let stair = crate::analyze(&g).path_decomposition.normalize_staircase();
        let back: PathDecomposition = decode_from_slice(&encode_to_vec(&stair)).unwrap();
        assert_eq!(back, stair);
        assert!(back.is_staircase());
    }

    #[test]
    fn forest_parent_cycles_rejected() {
        let cyclic = EliminationForest {
            parent: vec![Some(1), Some(0), None],
        };
        let bytes = encode_to_vec(&cyclic);
        assert!(matches!(
            decode_from_slice::<EliminationForest>(&bytes),
            Err(DecodeError::Invalid { .. })
        ));
        // Out-of-range parent.
        let oob = EliminationForest {
            parent: vec![Some(9)],
        };
        assert!(decode_from_slice::<EliminationForest>(&encode_to_vec(&oob)).is_err());
    }

    #[test]
    fn bag_count_mismatch_rejected() {
        let g = path_graph(3);
        let mut td = crate::analyze(&g).tree_decomposition;
        let mut bytes = Vec::new();
        td.tree.encode(&mut bytes);
        td.bags.pop();
        td.bags.encode(&mut bytes);
        assert!(decode_from_slice::<TreeDecomposition>(&bytes).is_err());
    }
}
