//! Exact pathwidth through the vertex separation number.
//!
//! The pathwidth of a graph equals its *vertex separation number*: the
//! minimum over linear layouts `v_1, …, v_n` of the maximum, over prefixes
//! `P_i = {v_1, …, v_i}`, of the number of vertices in `P_i` that still have
//! a neighbour outside `P_i`.  A subset DP computes the optimum in
//! `O*(2^n)`:
//!
//! `VS(S) = min_{v ∈ S} max( VS(S \ {v}), boundary(S) )`, `VS(∅) = 0`,
//!
//! where `boundary(S)` is the number of vertices of `S` with a neighbour
//! outside `S`.  From the optimal layout we construct an optimal path
//! decomposition: `X_i = {v_i} ∪ {u ∈ P_{i-1} : u has a neighbour outside
//! P_{i-1}}`.
//!
//! As with treewidth, the DP is exponential and meant for parameter-sized
//! query structures; [`EXACT_LIMIT`] guards it.

use crate::decomposition::PathDecomposition;
use cq_graphs::{gaifman_graph, Graph, Vertex};
use cq_structures::Structure;
use std::collections::BTreeSet;

/// Largest vertex count for which the exact subset DP is attempted.
pub const EXACT_LIMIT: usize = 22;

/// Number of vertices of `S` (bitmask) with a neighbour outside `S`.
fn boundary_size(g: &Graph, s: u64) -> u32 {
    let mut count = 0;
    let mut bits = s;
    while bits != 0 {
        let v = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if g.neighbors(v).any(|w| s >> w & 1 == 0) {
            count += 1;
        }
    }
    count
}

/// Exact pathwidth of a graph together with an optimal path decomposition.
///
/// Panics when the graph has more than [`EXACT_LIMIT`] vertices.
pub fn pathwidth_exact(g: &Graph) -> (usize, PathDecomposition) {
    crate::stats::record_pathwidth_call();
    let n = g.vertex_count();
    assert!(
        n <= EXACT_LIMIT,
        "pathwidth_exact is exponential; graph has {n} > {EXACT_LIMIT} vertices"
    );
    if n == 0 {
        return (
            0,
            PathDecomposition {
                bags: vec![BTreeSet::new()],
            },
        );
    }
    let full: u64 = (1u64 << n) - 1;
    let size = 1usize << n;
    let mut dp = vec![u32::MAX; size];
    let mut choice: Vec<u8> = vec![u8::MAX; size];
    dp[0] = 0;
    // Pre-compute boundary sizes lazily inside the loop (each costs O(n·deg)).
    for s in 1..=full {
        let b = boundary_size(g, s);
        let mut best = u32::MAX;
        let mut best_v = u8::MAX;
        let mut bits = s;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev = s & !(1u64 << v);
            let sub = dp[prev as usize];
            if sub == u32::MAX {
                continue;
            }
            let val = sub.max(b);
            if val < best {
                best = val;
                best_v = v as u8;
            }
        }
        dp[s as usize] = best;
        choice[s as usize] = best_v;
    }
    let width = dp[full as usize] as usize;
    // Recover the layout: choice[s] is the *last* vertex of the prefix s.
    let mut layout_rev = Vec::with_capacity(n);
    let mut s = full;
    while s != 0 {
        let v = choice[s as usize] as usize;
        layout_rev.push(v);
        s &= !(1u64 << v);
    }
    layout_rev.reverse();
    let pd = decomposition_from_layout(g, &layout_rev);
    debug_assert!(pd.is_valid_for(g));
    debug_assert_eq!(pd.width(), width);
    (width, pd)
}

/// Build the path decomposition induced by a linear layout:
/// `X_i = {v_i} ∪ {u earlier in the layout with a neighbour at or after i}`.
pub fn decomposition_from_layout(g: &Graph, layout: &[Vertex]) -> PathDecomposition {
    let n = g.vertex_count();
    assert_eq!(layout.len(), n);
    if n == 0 {
        return PathDecomposition {
            bags: vec![BTreeSet::new()],
        };
    }
    let mut position = vec![0usize; n];
    for (i, &v) in layout.iter().enumerate() {
        position[v] = i;
    }
    let mut bags = Vec::with_capacity(n);
    for (i, &v) in layout.iter().enumerate() {
        let mut bag: BTreeSet<Vertex> = [v].into_iter().collect();
        for &u in layout.iter().take(i) {
            if g.neighbors(u).any(|w| position[w] >= i) {
                bag.insert(u);
            }
        }
        bags.push(bag);
    }
    PathDecomposition { bags }
}

/// The width achieved by a particular layout (an upper bound on pathwidth).
pub fn width_of_layout(g: &Graph, layout: &[Vertex]) -> usize {
    decomposition_from_layout(g, layout).width()
}

/// Pathwidth of a structure (of its Gaifman graph), exact.
pub fn pathwidth_of_structure(s: &Structure) -> (usize, PathDecomposition) {
    pathwidth_exact(&gaifman_graph(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treewidth::treewidth_exact;
    use cq_graphs::families::*;

    #[test]
    fn pathwidth_of_paths_is_1() {
        // Example 2.2: the class P of paths has bounded pathwidth (pw = 1).
        for k in 2..=8 {
            assert_eq!(pathwidth_exact(&path_graph(k)).0, 1, "P_{k}");
        }
        assert_eq!(pathwidth_exact(&path_graph(1)).0, 0);
    }

    #[test]
    fn pathwidth_of_cycles_is_2() {
        for k in 3..=7 {
            assert_eq!(pathwidth_exact(&cycle_graph(k)).0, 2, "C_{k}");
        }
    }

    #[test]
    fn pathwidth_of_stars_and_caterpillars_is_1() {
        assert_eq!(pathwidth_exact(&star_graph(6)).0, 1);
        assert_eq!(pathwidth_exact(&caterpillar_graph(4, 2)).0, 1);
    }

    #[test]
    fn pathwidth_of_complete_binary_trees_grows() {
        // pw(T_h) = ceil(h / 2): T_1 -> 1, T_2 -> 1, T_3 -> 2.
        // (Example 2.2: B has unbounded pathwidth.)
        assert_eq!(pathwidth_exact(&complete_binary_tree(1)).0, 1);
        assert_eq!(pathwidth_exact(&complete_binary_tree(2)).0, 1);
        assert_eq!(pathwidth_exact(&complete_binary_tree(3)).0, 2);
    }

    #[test]
    fn pathwidth_of_cliques_and_grids() {
        assert_eq!(pathwidth_exact(&complete_graph(5)).0, 4);
        assert_eq!(pathwidth_exact(&grid_graph(2, 3)).0, 2);
        assert_eq!(pathwidth_exact(&grid_graph(3, 3)).0, 3);
        assert_eq!(pathwidth_exact(&grid_graph(1, 5)).0, 1);
    }

    #[test]
    fn pathwidth_at_least_treewidth() {
        for g in [
            path_graph(6),
            cycle_graph(6),
            star_graph(4),
            grid_graph(2, 4),
            complete_binary_tree(3),
            caterpillar_graph(3, 3),
        ] {
            assert!(pathwidth_exact(&g).0 >= treewidth_exact(&g).0);
        }
    }

    #[test]
    fn decomposition_is_valid_and_matches_width() {
        for g in [
            path_graph(7),
            cycle_graph(5),
            complete_binary_tree(3),
            grid_graph(2, 4),
        ] {
            let (w, pd) = pathwidth_exact(&g);
            assert!(pd.is_valid_for(&g));
            assert_eq!(pd.width(), w);
            // The staircase normal form keeps validity and width.
            let stair = pd.normalize_staircase();
            assert!(stair.is_valid_for(&g));
            assert!(stair.is_staircase());
            assert!(stair.width() <= w + 1);
        }
    }

    #[test]
    fn layout_width_upper_bounds_pathwidth() {
        let g = cycle_graph(6);
        let natural: Vec<Vertex> = (0..6).collect();
        assert!(width_of_layout(&g, &natural) >= pathwidth_exact(&g).0);
    }

    #[test]
    fn edgeless_and_empty_graphs() {
        assert_eq!(pathwidth_exact(&Graph::new(4)).0, 0);
        assert_eq!(pathwidth_exact(&Graph::new(0)).0, 0);
    }

    #[test]
    fn structure_pathwidth_of_directed_path_is_1() {
        let p = cq_structures::families::directed_path(6);
        assert_eq!(pathwidth_of_structure(&p).0, 1);
    }

    #[test]
    #[should_panic]
    fn exact_rejects_oversized_graphs() {
        let _ = pathwidth_exact(&grid_graph(5, 5));
    }
}
