//! Decomposition data types and their validity checkers.
//!
//! A *tree decomposition* of a graph `G` is a tree `T` together with bags
//! `X_t ⊆ G` for `t ∈ T` such that (i) every vertex occurs in some bag,
//! (ii) every edge is contained in some bag, and (iii) for every vertex the
//! set of bags containing it induces a connected subtree of `T`
//! (Section 2.2).  A *path decomposition* is the special case where `T` is a
//! path.  The *elimination forest* is the witness object for tree depth: a
//! rooted forest on the vertices of `G` such that every edge of `G` joins an
//! ancestor–descendant pair; its height (number of vertices on a longest
//! root-to-leaf path) is the tree depth.

use cq_graphs::{traversal, Graph, Vertex};
use std::collections::BTreeSet;

/// A tree decomposition: a tree on bag indices plus one bag per tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDecomposition {
    /// The decomposition tree (vertices are bag indices).
    pub tree: Graph,
    /// The bags, indexed by tree vertex.
    pub bags: Vec<BTreeSet<Vertex>>,
}

impl TreeDecomposition {
    /// A decomposition with a single bag containing all vertices of the
    /// graph — always valid, width `n - 1`.
    pub fn trivial(g: &Graph) -> Self {
        TreeDecomposition {
            tree: Graph::new(1),
            bags: vec![g.vertices().collect()],
        }
    }

    /// The width: maximum bag size minus one.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Number of bags.
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    /// Validity check against a graph: the three conditions of Section 2.2.
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        if self.bags.len() != self.tree.vertex_count() || self.bags.is_empty() {
            return false;
        }
        if !traversal::is_tree(&self.tree) {
            return false;
        }
        // (i) vertex coverage
        let mut covered = vec![false; g.vertex_count()];
        for bag in &self.bags {
            for &v in bag {
                if v >= g.vertex_count() {
                    return false;
                }
                covered[v] = true;
            }
        }
        if covered.iter().any(|&c| !c) {
            return false;
        }
        // (ii) edge coverage
        for (a, b) in g.edges() {
            if !self
                .bags
                .iter()
                .any(|bag| bag.contains(&a) && bag.contains(&b))
            {
                return false;
            }
        }
        // (iii) connectivity of occurrence: for every vertex, the set of bags
        // containing it induces a connected subtree.
        for v in g.vertices() {
            let holding: BTreeSet<usize> = self
                .bags
                .iter()
                .enumerate()
                .filter(|(_, bag)| bag.contains(&v))
                .map(|(i, _)| i)
                .collect();
            if holding.is_empty() {
                return false;
            }
            let (sub, _) = self.tree.induced_subgraph(&holding);
            if traversal::connected_components(&sub).len() != 1 {
                return false;
            }
        }
        true
    }

    /// The *answer decomposition* for a set of free vertices: the same tree
    /// with every free vertex adjoined to **every** bag (the free-connex
    /// closure of this decomposition).
    ///
    /// Adjoining a fixed set to all bags preserves all three validity
    /// conditions: coverage only gains vertices, edge coverage is unchanged,
    /// and each adjoined vertex now occurs in every bag (the whole tree is
    /// connected).  The price is width: it grows by at most `free.len()`,
    /// which is exactly the honest cost of answer counting and enumeration
    /// relative to boolean evaluation — the DP below this decomposition keeps
    /// every free vertex in scope at every node, so the root table can be
    /// grouped by free-variable assignment and any prefix of free values can
    /// be pinned everywhere.
    pub fn answer_decomposition(&self, free: &[Vertex]) -> TreeDecomposition {
        let mut bags = self.bags.clone();
        for bag in &mut bags {
            bag.extend(free.iter().copied());
        }
        TreeDecomposition {
            tree: self.tree.clone(),
            bags,
        }
    }

    /// Convert a decomposition whose tree happens to be a path into a
    /// [`PathDecomposition`] (bags listed in path order).  Returns `None`
    /// when the tree is not a path.
    pub fn as_path_decomposition(&self) -> Option<PathDecomposition> {
        if !traversal::is_path_graph(&self.tree) {
            return None;
        }
        // Walk the path from an endpoint.
        let n = self.tree.vertex_count();
        if n == 1 {
            return Some(PathDecomposition {
                bags: self.bags.clone(),
            });
        }
        let start = self.tree.vertices().find(|&v| self.tree.degree(v) == 1)?;
        let mut order = vec![start];
        let mut prev = None;
        let mut cur = start;
        while order.len() < n {
            let next = self.tree.neighbors(cur).find(|&w| Some(w) != prev)?;
            order.push(next);
            prev = Some(cur);
            cur = next;
        }
        Some(PathDecomposition {
            bags: order.into_iter().map(|i| self.bags[i].clone()).collect(),
        })
    }
}

/// A path decomposition: a sequence of bags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDecomposition {
    /// The bags, in path order.
    pub bags: Vec<BTreeSet<Vertex>>,
}

impl PathDecomposition {
    /// The width: maximum bag size minus one.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Number of bags.
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    /// Validity check against a graph.
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        self.to_tree_decomposition().is_valid_for(g)
    }

    /// View as a tree decomposition whose tree is a path.
    pub fn to_tree_decomposition(&self) -> TreeDecomposition {
        let n = self.bags.len();
        let mut tree = Graph::new(n.max(1));
        for i in 0..n.saturating_sub(1) {
            tree.add_edge(i, i + 1);
        }
        let bags = if self.bags.is_empty() {
            vec![BTreeSet::new()]
        } else {
            self.bags.clone()
        };
        TreeDecomposition { tree, bags }
    }

    /// Normalize into the *staircase form* required by the membership
    /// algorithm of Theorem 4.6: consecutive bags satisfy
    /// `X_i ⊊ X_{i+1}` or `X_{i+1} ⊊ X_i`, and no bag is empty.
    ///
    /// Between two consecutive original bags `X` and `Y` we interleave the
    /// intersection when it is a proper subset of both: `X ⊋ X∩Y ⊊ Y`.
    /// Empty intersections are replaced by keeping one element of the next
    /// bag early (which is harmless for validity).  Duplicate consecutive
    /// bags are collapsed.
    pub fn normalize_staircase(&self) -> PathDecomposition {
        let mut bags: Vec<BTreeSet<Vertex>> = Vec::new();
        // Push a bag unless it duplicates the previous one (strict
        // comparability requires no repeats).
        fn push(bags: &mut Vec<BTreeSet<Vertex>>, bag: BTreeSet<Vertex>) {
            if bags.last() != Some(&bag) {
                bags.push(bag);
            }
        }
        for bag in &self.bags {
            if bag.is_empty() {
                continue;
            }
            if let Some(last) = bags.last().cloned() {
                if &last == bag {
                    continue;
                }
                let inter: BTreeSet<Vertex> = last.intersection(bag).copied().collect();
                if last.is_subset(bag) || bag.is_subset(&last) {
                    // Already comparable; nothing to interleave.
                } else if !inter.is_empty() {
                    push(&mut bags, inter);
                } else {
                    // Disjoint consecutive bags: step down to a singleton of
                    // the old bag, through the joining pair {x, y}, and up
                    // into the new bag: … ⊇ {x} ⊂ {x, y} ⊃ {y} ⊆ bag.
                    let x = *last.iter().next().unwrap();
                    let y = *bag.iter().next().unwrap();
                    push(&mut bags, [x].into_iter().collect());
                    push(&mut bags, [x, y].into_iter().collect());
                    push(&mut bags, [y].into_iter().collect());
                }
            }
            push(&mut bags, bag.clone());
        }
        if bags.is_empty() {
            bags.push(self.bags.first().cloned().unwrap_or_default());
        }
        PathDecomposition { bags }
    }

    /// Whether consecutive bags are strictly comparable (the staircase form).
    pub fn is_staircase(&self) -> bool {
        self.bags
            .windows(2)
            .all(|w| w[0] != w[1] && (w[0].is_subset(&w[1]) || w[1].is_subset(&w[0])))
    }
}

/// An elimination forest (tree-depth decomposition): a rooted forest over the
/// graph's vertices such that every graph edge connects an
/// ancestor–descendant pair.  The *height* (vertex count of the longest
/// root-to-leaf path) witnesses `td(G) ≤ height`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationForest {
    /// `parent[v]` is the parent of `v`, or `None` for roots.
    pub parent: Vec<Option<Vertex>>,
}

impl EliminationForest {
    /// The roots of the forest.
    pub fn roots(&self) -> Vec<Vertex> {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(v, _)| v)
            .collect()
    }

    /// The children lists of the forest.
    pub fn children(&self) -> Vec<Vec<Vertex>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(v);
            }
        }
        ch
    }

    /// The depth of every vertex (roots have depth 1).
    pub fn depths(&self) -> Vec<usize> {
        let n = self.parent.len();
        let mut depth = vec![0usize; n];
        fn depth_of(v: Vertex, parent: &[Option<Vertex>], depth: &mut [usize]) -> usize {
            if depth[v] != 0 {
                return depth[v];
            }
            let d = match parent[v] {
                None => 1,
                Some(p) => depth_of(p, parent, depth) + 1,
            };
            depth[v] = d;
            d
        }
        for v in 0..n {
            depth_of(v, &self.parent, &mut depth);
        }
        depth
    }

    /// The height of the forest: the number of vertices on a longest
    /// root-to-leaf path (equals `max` of [`EliminationForest::depths`]).
    pub fn height(&self) -> usize {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Is `a` an ancestor of `b` (or equal)?
    pub fn is_ancestor(&self, a: Vertex, b: Vertex) -> bool {
        let mut cur = Some(b);
        while let Some(v) = cur {
            if v == a {
                return true;
            }
            cur = self.parent[v];
        }
        false
    }

    /// Validity: every edge of the graph joins an ancestor–descendant pair
    /// of the forest, and the forest spans exactly the graph's vertices.
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        if self.parent.len() != g.vertex_count() {
            return false;
        }
        // Acyclicity of the parent map (no vertex is its own ancestor via a
        // nontrivial chain) — detect by walking up with a step bound.
        for v in 0..self.parent.len() {
            let mut cur = self.parent[v];
            let mut steps = 0;
            while let Some(p) = cur {
                if p == v || steps > self.parent.len() {
                    return false;
                }
                cur = self.parent[p];
                steps += 1;
            }
        }
        g.edges()
            .into_iter()
            .all(|(a, b)| self.is_ancestor(a, b) || self.is_ancestor(b, a))
    }

    /// The *closure bags* path from the root to each vertex — used to read a
    /// tree decomposition of width `height - 1` off an elimination forest
    /// (every structure of tree depth `w` has treewidth at most `w - 1`).
    pub fn to_tree_decomposition(&self) -> TreeDecomposition {
        let n = self.parent.len();
        if n == 0 {
            return TreeDecomposition {
                tree: Graph::new(1),
                bags: vec![BTreeSet::new()],
            };
        }
        // Bag of v = the set of ancestors of v including v.
        let mut bags = Vec::with_capacity(n);
        for v in 0..n {
            let mut bag = BTreeSet::new();
            let mut cur = Some(v);
            while let Some(u) = cur {
                bag.insert(u);
                cur = self.parent[u];
            }
            bags.push(bag);
        }
        // Tree: connect v to its parent (bag indices = vertex indices); join
        // separate forest roots in a chain so the result is a tree.
        let mut tree = Graph::new(n);
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                tree.add_edge(v, *p);
            }
        }
        let roots = self.roots();
        for w in roots.windows(2) {
            tree.add_edge(w[0], w[1]);
        }
        TreeDecomposition { tree, bags }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::*;

    fn path_decomp_of_path(k: usize) -> PathDecomposition {
        // Bags {i, i+1} for the path P_k — width 1.
        PathDecomposition {
            bags: (0..k - 1)
                .map(|i| [i, i + 1].into_iter().collect())
                .collect(),
        }
    }

    #[test]
    fn trivial_decomposition_is_valid() {
        let g = grid_graph(3, 3);
        let td = TreeDecomposition::trivial(&g);
        assert!(td.is_valid_for(&g));
        assert_eq!(td.width(), 8);
        assert_eq!(td.bag_count(), 1);
    }

    #[test]
    fn answer_decomposition_stays_valid_and_bounds_width() {
        let g = path_graph(5);
        let td = path_decomp_of_path(5).to_tree_decomposition();
        assert_eq!(td.width(), 1);
        // Adjoin two free vertices, one of which already occurs in some bags.
        let atd = td.answer_decomposition(&[0, 4]);
        assert!(atd.is_valid_for(&g));
        assert!(atd.width() <= td.width() + 2);
        for bag in &atd.bags {
            assert!(bag.contains(&0) && bag.contains(&4));
        }
        // No free vertices: unchanged.
        assert_eq!(td.answer_decomposition(&[]), td);
    }

    #[test]
    fn path_decomposition_of_path_is_valid_width_1() {
        let g = path_graph(5);
        let pd = path_decomp_of_path(5);
        assert_eq!(pd.width(), 1);
        assert!(pd.is_valid_for(&g));
        assert!(pd.to_tree_decomposition().is_valid_for(&g));
        assert_eq!(pd.bag_count(), 4);
    }

    #[test]
    fn vertex_coverage_violation_detected() {
        let g = path_graph(3);
        let pd = PathDecomposition {
            bags: vec![[0, 1].into_iter().collect()],
        };
        assert!(!pd.is_valid_for(&g));
    }

    #[test]
    fn edge_coverage_violation_detected() {
        let g = path_graph(3);
        let pd = PathDecomposition {
            bags: vec![[0, 1].into_iter().collect(), [2].into_iter().collect()],
        };
        assert!(!pd.is_valid_for(&g));
    }

    #[test]
    fn connectivity_violation_detected() {
        let g = path_graph(4);
        // Vertex 1 occurs in bags 0 and 2 but not 1: violates condition (iii).
        let pd = PathDecomposition {
            bags: vec![
                [0, 1].into_iter().collect(),
                [2, 3].into_iter().collect(),
                [1, 2].into_iter().collect(),
            ],
        };
        assert!(!pd.is_valid_for(&g));
    }

    #[test]
    fn out_of_range_bag_detected() {
        let g = path_graph(2);
        let td = TreeDecomposition {
            tree: Graph::new(1),
            bags: vec![[0, 1, 9].into_iter().collect()],
        };
        assert!(!td.is_valid_for(&g));
    }

    #[test]
    fn non_tree_decomposition_tree_detected() {
        let g = path_graph(2);
        let mut tree = Graph::new(2); // disconnected two nodes — not a tree
        let _ = &mut tree;
        let td = TreeDecomposition {
            tree,
            bags: vec![[0, 1].into_iter().collect(), [1].into_iter().collect()],
        };
        assert!(!td.is_valid_for(&g));
    }

    #[test]
    fn as_path_decomposition_roundtrip() {
        let g = path_graph(4);
        let pd = path_decomp_of_path(4);
        let td = pd.to_tree_decomposition();
        let back = td.as_path_decomposition().unwrap();
        assert_eq!(back.width(), pd.width());
        assert!(back.is_valid_for(&g));
        // A star-shaped decomposition tree is not a path.
        let star_td = TreeDecomposition {
            tree: star_graph(3),
            bags: vec![
                [0].into_iter().collect(),
                [0, 1].into_iter().collect(),
                [0, 2].into_iter().collect(),
                [0, 3].into_iter().collect(),
            ],
        };
        assert!(star_td.as_path_decomposition().is_none());
    }

    #[test]
    fn staircase_normalization() {
        let pd = PathDecomposition {
            bags: vec![
                [0, 1].into_iter().collect(),
                [1, 2].into_iter().collect(),
                [2, 3].into_iter().collect(),
            ],
        };
        assert!(!pd.is_staircase());
        let stair = pd.normalize_staircase();
        assert!(stair.is_staircase());
        assert_eq!(stair.width(), pd.width());
        assert!(stair.is_valid_for(&path_graph(4)));
    }

    #[test]
    fn staircase_normalization_handles_disjoint_bags() {
        let pd = PathDecomposition {
            bags: vec![[0].into_iter().collect(), [1].into_iter().collect()],
        };
        let stair = pd.normalize_staircase();
        assert!(stair.is_staircase());
        // Width may grow by at most one through the joining bag.
        assert!(stair.width() <= pd.width() + 1);
    }

    #[test]
    fn elimination_forest_of_path() {
        // A balanced elimination tree of P_7 rooted at the middle vertex has
        // height 3 = td(P_7).
        let g = path_graph(7);
        let parent = vec![Some(1), Some(3), Some(1), None, Some(5), Some(3), Some(5)];
        let ef = EliminationForest { parent };
        assert!(ef.is_valid_for(&g));
        assert_eq!(ef.height(), 3);
        assert_eq!(ef.roots(), vec![3]);
        assert!(ef.is_ancestor(3, 0));
        assert!(!ef.is_ancestor(0, 3));
        let td = ef.to_tree_decomposition();
        assert!(td.is_valid_for(&g));
        assert!(td.width() < ef.height());
        let ch = ef.children();
        assert_eq!(ch[3], vec![1, 5]);
    }

    #[test]
    fn invalid_elimination_forest_detected() {
        let g = path_graph(3);
        // Both endpoints are roots, so the middle edge pairs are fine but the
        // edge (0,1) joins two different branches -> invalid if 0 and 1 are
        // incomparable.
        let ef = EliminationForest {
            parent: vec![None, None, Some(1)],
        };
        assert!(!ef.is_valid_for(&g));
        // Wrong size rejected.
        let ef2 = EliminationForest { parent: vec![None] };
        assert!(!ef2.is_valid_for(&g));
        // A parent cycle is rejected.
        let ef3 = EliminationForest {
            parent: vec![Some(1), Some(0), Some(0)],
        };
        assert!(!ef3.is_valid_for(&g));
    }

    #[test]
    fn elimination_forest_with_multiple_roots() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let ef = EliminationForest {
            parent: vec![None, Some(0), None, Some(2)],
        };
        assert!(ef.is_valid_for(&g));
        assert_eq!(ef.height(), 2);
        assert_eq!(ef.roots().len(), 2);
        // Connecting roots gives a valid tree decomposition of the whole graph.
        let td = ef.to_tree_decomposition();
        assert!(td.is_valid_for(&g));
    }
}
