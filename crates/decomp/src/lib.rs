//! # cq-decomp
//!
//! Tree decompositions, path decompositions, elimination forests, and the
//! three width measures that drive the paper's classification: **treewidth**,
//! **pathwidth** and **tree depth** (Section 2.2).
//!
//! The classification of Theorem 3.1 distinguishes three degrees by whether
//! the cores of a class have bounded treewidth (hypothesis), bounded
//! pathwidth (degree `PATH` vs. `TREE`) and bounded tree depth (degree
//! `para-L` vs. `PATH`).  Everything in this crate is *exact* for the
//! parameter-sized structures appearing on the left-hand side of `p-HOM`
//! instances:
//!
//! * [`treewidth::treewidth_exact`] — exact treewidth by dynamic programming
//!   over vertex subsets, with an optimal tree decomposition;
//! * [`pathwidth::pathwidth_exact`] — exact pathwidth through the vertex
//!   separation number, with an optimal path decomposition;
//! * [`treedepth::treedepth_exact`] — exact tree depth by recursive vertex
//!   deletion with memoization, with a witnessing elimination forest;
//! * [`decomposition`] — the decomposition data types, their validity
//!   checkers (the three conditions of Section 2.2), and normal forms used
//!   by the reductions and solvers (e.g. path decompositions in which
//!   consecutive bags differ by a single insertion or deletion, as required
//!   by the `PATH` membership algorithm of Theorem 4.6);
//! * [`heuristics`] — min-degree / min-fill elimination orderings giving
//!   treewidth upper bounds for larger graphs (used only by workload
//!   generators, never by the classification of parameter-sized queries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomposition;
pub mod heuristics;
pub mod pathwidth;
pub mod treedepth;
pub mod treewidth;

pub use decomposition::{EliminationForest, PathDecomposition, TreeDecomposition};
pub use heuristics::{min_degree_ordering, min_fill_ordering, treewidth_upper_bound};
pub use pathwidth::{pathwidth_exact, pathwidth_of_structure};
pub use treedepth::{treedepth_exact, treedepth_of_structure};
pub use treewidth::{treewidth_exact, treewidth_of_structure};

use cq_graphs::Graph;

/// The three width measures of one graph, computed exactly.  Convenience
/// bundle used by the classification engine and the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthProfile {
    /// Treewidth `tw(G)`.
    pub treewidth: usize,
    /// Pathwidth `pw(G)`.
    pub pathwidth: usize,
    /// Tree depth `td(G)`.
    pub treedepth: usize,
}

/// Compute all three width measures of a graph exactly.
pub fn width_profile(g: &Graph) -> WidthProfile {
    WidthProfile {
        treewidth: treewidth::treewidth_exact(g).0,
        pathwidth: pathwidth::pathwidth_exact(g).0,
        treedepth: treedepth::treedepth_exact(g).0,
    }
}

/// Compute all three width measures of the Gaifman graph of a structure.
pub fn width_profile_of_structure(s: &cq_structures::Structure) -> WidthProfile {
    width_profile(&cq_graphs::gaifman_graph(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::*;

    #[test]
    fn width_profile_orders_correctly() {
        // tw <= pw <= td - 1 always holds.
        for g in [
            path_graph(6),
            cycle_graph(5),
            star_graph(4),
            grid_graph(2, 3),
            complete_binary_tree(3),
        ] {
            let p = width_profile(&g);
            assert!(p.treewidth <= p.pathwidth);
            assert!(p.pathwidth + 1 <= p.treedepth || g.edge_count() == 0);
        }
    }

    #[test]
    fn width_profile_of_structure_matches_graph() {
        let s = cq_structures::families::grid(2, 3);
        let g = grid_graph(2, 3);
        assert_eq!(width_profile_of_structure(&s), width_profile(&g));
    }
}
