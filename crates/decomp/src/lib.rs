//! # cq-decomp
//!
//! Tree decompositions, path decompositions, elimination forests, and the
//! three width measures that drive the paper's classification: **treewidth**,
//! **pathwidth** and **tree depth** (Section 2.2).
//!
//! The classification of Theorem 3.1 distinguishes three degrees by whether
//! the cores of a class have bounded treewidth (hypothesis), bounded
//! pathwidth (degree `PATH` vs. `TREE`) and bounded tree depth (degree
//! `para-L` vs. `PATH`).  Everything in this crate is *exact* for the
//! parameter-sized structures appearing on the left-hand side of `p-HOM`
//! instances:
//!
//! * [`treewidth::treewidth_exact`] — exact treewidth by dynamic programming
//!   over vertex subsets, with an optimal tree decomposition;
//! * [`pathwidth::pathwidth_exact`] — exact pathwidth through the vertex
//!   separation number, with an optimal path decomposition;
//! * [`treedepth::treedepth_exact`] — exact tree depth by recursive vertex
//!   deletion with memoization, with a witnessing elimination forest;
//! * [`decomposition`] — the decomposition data types, their validity
//!   checkers (the three conditions of Section 2.2), and normal forms used
//!   by the reductions and solvers (e.g. path decompositions in which
//!   consecutive bags differ by a single insertion or deletion, as required
//!   by the `PATH` membership algorithm of Theorem 4.6);
//! * [`heuristics`] — min-degree / min-fill elimination orderings giving
//!   treewidth upper bounds for larger graphs (used only by workload
//!   generators, never by the classification of parameter-sized queries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod decomposition;
pub mod heuristics;
pub mod pathwidth;
pub mod stats;
pub mod treedepth;
pub mod treewidth;

pub use decomposition::{EliminationForest, PathDecomposition, TreeDecomposition};
pub use heuristics::{min_degree_ordering, min_fill_ordering, treewidth_upper_bound};
pub use pathwidth::{pathwidth_exact, pathwidth_of_structure};
pub use stats::DecompCounts;
pub use treedepth::{treedepth_exact, treedepth_of_structure};
pub use treewidth::{treewidth_exact, treewidth_of_structure};

use cq_graphs::Graph;

/// The three width measures of one graph, computed exactly.  Convenience
/// bundle used by the classification engine and the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthProfile {
    /// Treewidth `tw(G)`.
    pub treewidth: usize,
    /// Pathwidth `pw(G)`.
    pub pathwidth: usize,
    /// Tree depth `td(G)`.
    pub treedepth: usize,
}

/// Compute all three width measures of a graph exactly.
///
/// Callers that also need the witnessing decompositions should use
/// [`analyze`] instead, which computes widths *and* certificates in a single
/// pass — calling `width_profile` and then the individual exact functions
/// runs the exponential subset DPs twice.
pub fn width_profile(g: &Graph) -> WidthProfile {
    analyze(g).widths
}

/// The complete structural analysis of one graph: the three exact width
/// measures **together with the certificates** the width computations
/// produce — the optimal tree decomposition, the optimal path decomposition
/// and a minimum-height elimination forest.
///
/// This is the unit of work the prepared-query engine computes once per
/// query and then reuses across every database the query is evaluated
/// against; the solvers consume the certificates directly, so no width
/// computation ever runs twice for the same prepared query (asserted by the
/// regression tests through [`stats::counts`]).
#[derive(Debug, Clone)]
pub struct StructuralAnalysis {
    /// The three width measures.
    pub widths: WidthProfile,
    /// Optimal tree decomposition (width `widths.treewidth`).
    pub tree_decomposition: TreeDecomposition,
    /// Optimal path decomposition (width `widths.pathwidth`).
    pub path_decomposition: PathDecomposition,
    /// Elimination forest of minimum height (`widths.treedepth`).
    pub elimination_forest: EliminationForest,
}

/// Analyse a graph exactly, returning widths **with** their certificates.
///
/// Runs each exponential width DP exactly once; the invariant
/// `tw ≤ pw ≤ td - 1` (for graphs with an edge) holds between the returned
/// widths, and each certificate is valid for `g` with width/height equal to
/// the corresponding measure.
pub fn analyze(g: &Graph) -> StructuralAnalysis {
    let (treewidth, tree_decomposition) = treewidth::treewidth_exact(g);
    let (pathwidth, path_decomposition) = pathwidth::pathwidth_exact(g);
    let (treedepth, elimination_forest) = treedepth::treedepth_exact(g);
    StructuralAnalysis {
        widths: WidthProfile {
            treewidth,
            pathwidth,
            treedepth,
        },
        tree_decomposition,
        path_decomposition,
        elimination_forest,
    }
}

/// Analyse the Gaifman graph of a structure (see [`analyze`]).
pub fn analyze_structure(s: &cq_structures::Structure) -> StructuralAnalysis {
    analyze(&cq_graphs::gaifman_graph(s))
}

/// Compute all three width measures of the Gaifman graph of a structure.
pub fn width_profile_of_structure(s: &cq_structures::Structure) -> WidthProfile {
    width_profile(&cq_graphs::gaifman_graph(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_graphs::families::*;

    #[test]
    fn width_profile_orders_correctly() {
        // tw <= pw <= td - 1 always holds.
        for g in [
            path_graph(6),
            cycle_graph(5),
            star_graph(4),
            grid_graph(2, 3),
            complete_binary_tree(3),
        ] {
            let p = width_profile(&g);
            assert!(p.treewidth <= p.pathwidth);
            assert!(p.pathwidth < p.treedepth || g.edge_count() == 0);
        }
    }

    #[test]
    fn width_profile_of_structure_matches_graph() {
        let s = cq_structures::families::grid(2, 3);
        let g = grid_graph(2, 3);
        assert_eq!(width_profile_of_structure(&s), width_profile(&g));
    }

    #[test]
    fn analyze_carries_matching_certificates() {
        for g in [
            path_graph(6),
            cycle_graph(5),
            star_graph(4),
            grid_graph(2, 3),
            complete_binary_tree(3),
        ] {
            let a = analyze(&g);
            assert!(a.tree_decomposition.is_valid_for(&g));
            assert_eq!(a.tree_decomposition.width(), a.widths.treewidth);
            assert!(a.path_decomposition.is_valid_for(&g));
            assert_eq!(a.path_decomposition.width(), a.widths.pathwidth);
            assert!(a.elimination_forest.is_valid_for(&g));
            assert_eq!(a.elimination_forest.height(), a.widths.treedepth);
        }
    }

    #[test]
    fn analyze_runs_each_width_dp_exactly_once() {
        let g = cycle_graph(6);
        let before = stats::counts();
        let _ = analyze(&g);
        let delta = stats::counts().since(&before);
        assert_eq!(delta.treewidth_calls, 1);
        assert_eq!(delta.pathwidth_calls, 1);
        assert_eq!(delta.treedepth_calls, 1);
    }
}
