//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! mirrors the small surface of criterion 0.5 that the workspace's benches
//! use — `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId` and
//! `Bencher::iter` — backed by a plain `std::time::Instant` harness.
//!
//! It reports median / mean wall-clock time per iteration to stdout.  It
//! does not do criterion's statistical analysis, HTML reports or regression
//! detection; it exists so `cargo bench` runs and produces comparable
//! numbers in an offline container.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: a function name plus an optional parameter,
/// printed as `name/parameter` like the real crate does.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a parameter component (`name/parameter`).
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// string literals and explicit ids.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            parameter: None,
        }
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Time the closure: a few warm-up runs, then `samples` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.recorded.push(start.elapsed());
        }
    }
}

const WARMUP_ITERS: usize = 3;
const DEFAULT_SAMPLES: usize = 20;

fn report(group: &str, id: &BenchmarkId, recorded: &[Duration]) {
    if recorded.is_empty() {
        return;
    }
    let mut sorted = recorded.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let label = if group.is_empty() {
        id.render()
    } else {
        format!("{group}/{}", id.render())
    };
    println!(
        "bench {label:<60} median {median:>12?}  mean {mean:>12?}  ({} samples)",
        sorted.len()
    );
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: self.samples,
            recorded: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id, &b.recorded);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            recorded: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id, &b.recorded);
        self
    }

    /// End the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark harness object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: DEFAULT_SAMPLES,
            recorded: Vec::new(),
        };
        f(&mut b);
        report("", &id, &b.recorded);
        self
    }
}

/// Declare a function that runs a list of bench functions against a fresh
/// [`Criterion`] (API mirror of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running the given groups (API mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_the_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut runs = 0usize;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 5 + 3, "samples plus warm-up");
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 7).render(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(3).render(), "3");
        assert_eq!("plain".into_benchmark_id().render(), "plain");
    }
}
