//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this tiny
//! crate provides exactly the deterministic subset of the `rand` 0.8 API the
//! workspace uses: [`rngs::StdRng`] seeded through [`SeedableRng`], and the
//! [`Rng`] methods `gen_bool` / `gen_range` over `usize` ranges.
//!
//! The generator is SplitMix64 — statistically fine for workload generation
//! and colour coding, stable across platforms, and seeded exactly once per
//! use site from a caller-provided `u64` (every caller in this workspace
//! goes through `StdRng::seed_from_u64`).  It makes **no** cryptographic
//! claims whatsoever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Seedable random number generators (API mirror of `rand::SeedableRng`
/// restricted to `seed_from_u64`, the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random value generation (API mirror of the `rand::Rng` methods the
/// workspace uses).
pub trait Rng {
    /// Next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, compared against p.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniform draw from a half-open `usize` range. Panics when the range
    /// is empty, matching `rand`'s behaviour.
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = (range.end - range.start) as u64;
        // Debiased multiply-shift rejection sampling (Lemire).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let lo = m as u64;
            if lo >= span && lo.wrapping_neg() % span > lo {
                continue;
            }
            return range.start + (m >> 64) as usize;
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64 under the `StdRng`
    /// name so call sites match the real `rand` crate.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood), public domain reference
            // constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_range_and_covers() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range drawn");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
