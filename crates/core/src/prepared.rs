//! The [`PreparedQuery`] artifact: everything the engine needs to evaluate
//! one query against arbitrarily many databases, computed **once**.
//!
//! Preparation performs the per-query exponential work the Classification
//! Theorem licenses spending (it depends only on the parameter): the core
//! computation (Theorem 3.1 classifies by cores), the Gaifman graph, and the
//! single-pass structural analysis of [`cq_decomp::analyze`] — the three
//! width measures **with** their certificates (elimination forest, path
//! decomposition, tree decomposition).  The solvers of the registry consume
//! those certificates directly, so nothing exponential in the query runs
//! again at evaluation time; the regression tests assert this through the
//! call counters of [`cq_decomp::stats`] and
//! [`cq_structures::core_computation_count`].
//!
//! Three derived per-query artifacts are materialized lazily on first use
//! and then shared by every subsequent evaluation:
//!
//! * the Lemma 3.3 `{∧,∃}`-sentence (tree-depth solver), compiled from the
//!   elimination-forest certificate;
//! * the staircase normal form of the path decomposition (path-sweep
//!   solver);
//! * the **counting certificates**: the structural analysis of the
//!   *original* query.  Counting is **not** invariant under taking cores
//!   (a query and its core have the same decision answer but different
//!   homomorphism counts), so the counting solvers of
//!   [`crate::counting::CountRegistry`] must run on the query exactly as
//!   submitted — with certificates of *its* Gaifman graph, not the core's.
//!   When the evaluated structure already equals the original (core
//!   preprocessing disabled, or the query is its own core) the decision
//!   certificates are reused and no extra width DP ever runs.

use crate::engine::EngineConfig;
use crate::Degree;
use cq_decomp::{PathDecomposition, StructuralAnalysis, WidthProfile};
use cq_graphs::{gaifman_graph, Graph};
use cq_logic::canonical::query_fingerprint;
use cq_logic::treedepth_sentence::{corresponding_sentence_with_forest, TreeDepthSentence};
use cq_solver::kernel::{
    AnswerProgram, ForestProgram, ForestRun, KernelSearchStats, SearchProgram, StairProgram,
    TreeDpProgram, TreeDpRun, TreeIncrementalState,
};
use cq_solver::{BoolSemiring, CheckedNatSemiring, Nat, PathDpReport, Semiring};
use cq_structures::codec::{encode_option_ref, Decode, DecodeError, Encode, Reader};
use cq_structures::{
    core_of, embedding_exists, homomorphism_exists, Element, Structure, StructureIndex,
    TupleWeights,
};
use std::sync::{Arc, Mutex, OnceLock};

/// Cap on memoized count-verified relabelled forms per plan (a client
/// cycling more distinct orderings than this re-verifies the overflow
/// ones).
const MAX_COUNT_VERIFIED_ALIASES: usize = 16;

/// Cap on compiled kernel-program bundles retained per plan — one bundle
/// per distinct cached database index, least-recently-used beyond this (a
/// client cycling more hot databases than this recompiles the overflow
/// ones; compilation is query-sized work, so an eviction costs
/// milliseconds, never correctness).
const MAX_KERNEL_BUNDLES: usize = 8;

/// Cap on compiled answer programs retained per kernel bundle, keyed by
/// free-element list — clients normally ask one query for answers under one
/// free list, so this stays tiny; cycling more lists recompiles the
/// overflow ones.
const MAX_ANSWER_PROGRAMS: usize = 4;

/// The compiled kernel programs of one `(plan, database index)` pair, each
/// slot materialized on first use by the corresponding solver entry point
/// and reused by every later evaluation against the same index (bundles
/// are keyed by `(`[`StructureIndex::id`]`, `[`StructureIndex::domain_epoch`]`)`
/// — compiled programs bake per-position prefilter domains, which stay
/// sound supersets across in-place deltas *within* an epoch but must be
/// recompiled when a delta grows a domain and bumps the epoch).
///
/// Decision programs compile the **evaluated** structure with the decision
/// certificates; counting programs compile the **original** with the
/// counting certificates — counting is not core-invariant, so the two
/// families never share a program even when both are warm.
///
/// The two `*_retained` slots carry the incremental DP join tables of
/// [`TreeDpProgram::eval_retained`]: after [`crate::Engine::apply_delta`]
/// mutates the index in place, the next tree-DP decide/count patches or
/// selectively recomputes only the bags a touched relation reaches instead
/// of re-running the whole DP.  `try_lock` keeps concurrent evaluations
/// wait-free: a contended caller falls back to a plain stateless pass.
#[derive(Default)]
struct IndexKernels {
    tree_decide: OnceLock<TreeDpProgram>,
    stair: OnceLock<StairProgram>,
    forest_decide: OnceLock<ForestProgram>,
    search_fail_first: OnceLock<SearchProgram>,
    search_plain: OnceLock<SearchProgram>,
    tree_count: OnceLock<TreeDpProgram>,
    forest_count: OnceLock<ForestProgram>,
    search_original: OnceLock<SearchProgram>,
    /// Decision stays on [`bool`] deliberately: `CheckedNat` would make
    /// deltas patchable (⊖ exists), but it prices every *recomputed* bag
    /// at full counting arithmetic — measurably slower than Bool's
    /// absorbing ⊕ whenever churn dirties most bags (E21's bulk family).
    /// Bool recomputes dirty bags cheaply and reuses clean ones, which is
    /// the better trade on both ends of the churn spectrum.
    tree_decide_retained: Mutex<Option<TreeIncrementalState<bool>>>,
    tree_count_retained: Mutex<Option<TreeIncrementalState<Nat>>>,
    /// Compiled [`AnswerProgram`]s keyed by free-element list (declared
    /// order matters — it is the answer-column order).  A plan may serve
    /// answers under several free lists; each compiles its own
    /// adjoined-decomposition DP, MRU-retained up to
    /// [`MAX_ANSWER_PROGRAMS`].
    answers: Mutex<Vec<(Vec<Element>, Arc<AnswerProgram>)>>,
}

impl std::fmt::Debug for IndexKernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexKernels")
            .field("tree_decide", &self.tree_decide.get().is_some())
            .field("stair", &self.stair.get().is_some())
            .field("forest_decide", &self.forest_decide.get().is_some())
            .field("search_fail_first", &self.search_fail_first.get().is_some())
            .field("search_plain", &self.search_plain.get().is_some())
            .field("tree_count", &self.tree_count.get().is_some())
            .field("forest_count", &self.forest_count.get().is_some())
            .field("search_original", &self.search_original.get().is_some())
            .field(
                "tree_decide_retained",
                &self
                    .tree_decide_retained
                    .try_lock()
                    .is_ok_and(|s| s.is_some()),
            )
            .field(
                "tree_count_retained",
                &self
                    .tree_count_retained
                    .try_lock()
                    .is_ok_and(|s| s.is_some()),
            )
            .field(
                "answers",
                &self.answers.try_lock().map(|a| a.len()).unwrap_or(0),
            )
            .finish()
    }
}

/// A query prepared for repeated evaluation: the core, its Gaifman graph,
/// the width profile, and the decomposition certificates — computed once,
/// reused for every database.
///
/// Obtained from [`crate::Engine::prepare`] (which caches prepared queries
/// by [fingerprint](cq_logic::canonical::query_fingerprint)) or directly
/// from [`PreparedQuery::prepare`].
#[derive(Debug)]
pub struct PreparedQuery {
    fingerprint: u64,
    original: Structure,
    evaluated: Structure,
    core_applied: bool,
    gaifman: Graph,
    analysis: StructuralAnalysis,
    degree_hint: Degree,
    sentence: OnceLock<TreeDepthSentence>,
    staircase: OnceLock<PathDecomposition>,
    /// Structural analysis of the **original** structure, for the counting
    /// path (counting is not core-invariant).  Populated lazily on the
    /// first counting evaluation; `None` forever when `evaluated ==
    /// original`, in which case [`Self::counting_analysis`] serves the
    /// decision analysis instead of duplicating it.
    counting: OnceLock<StructuralAnalysis>,
    /// Non-identical submitted forms (relabellings) already verified
    /// **isomorphic** to the original — so repeat counting lookups of the
    /// same form cost a structural equality check instead of two
    /// exponential embedding searches per count (the counting analogue of
    /// the cache's decision-level alias memoization).
    count_verified_aliases: Mutex<Vec<Structure>>,
    /// Compiled kernel programs per cached database index, keyed by
    /// `(`[`StructureIndex::id`]`, `[`StructureIndex::domain_epoch`]`)` with
    /// most-recently-used entries at the back — an in-place delta that grows
    /// a position domain bumps the epoch and transparently recompiles, while
    /// same-epoch deltas keep every warm program (their baked domains remain
    /// sound supersets).  A runtime cache of compilation work, never
    /// persisted (a warm-started plan recompiles on first evaluation,
    /// exactly like a cold one).
    kernels: Mutex<Vec<(KernelCacheKey, Arc<IndexKernels>)>>,
}

/// Cache key for [`PreparedQuery`]'s per-index program bundles: the index's
/// [`StructureIndex::id`] plus its domain epoch (an epoch bump invalidates
/// programs whose baked position domains may have grown).
type KernelCacheKey = (u64, u64);

impl PreparedQuery {
    /// Prepare a query under the given configuration.  This is the one-time
    /// per-query cost: core computation (when `config.use_core`), Gaifman
    /// graph, and the single structural-analysis pass.
    pub fn prepare(a: &Structure, config: &EngineConfig) -> PreparedQuery {
        Self::prepare_with_fingerprint(a, config, query_fingerprint(a))
    }

    /// As [`prepare`](Self::prepare) with a caller-supplied fingerprint (the
    /// engine computes the fingerprint first for its cache lookup and avoids
    /// hashing twice).
    pub(crate) fn prepare_with_fingerprint(
        a: &Structure,
        config: &EngineConfig,
        fingerprint: u64,
    ) -> PreparedQuery {
        let evaluated = if config.use_core {
            core_of(a).core
        } else {
            a.clone()
        };
        let gaifman = gaifman_graph(&evaluated);
        let analysis = cq_decomp::analyze(&gaifman);
        let widths = analysis.widths;
        let degree_hint = Degree::from_boundedness(
            widths.treewidth <= config.treewidth_threshold,
            widths.pathwidth <= config.pathwidth_threshold,
            widths.treedepth <= config.treedepth_threshold,
        );
        PreparedQuery {
            fingerprint,
            original: a.clone(),
            evaluated,
            core_applied: config.use_core,
            gaifman,
            analysis,
            degree_hint,
            sentence: OnceLock::new(),
            staircase: OnceLock::new(),
            counting: OnceLock::new(),
            count_verified_aliases: Mutex::new(Vec::new()),
            kernels: Mutex::new(Vec::new()),
        }
    }

    /// The isomorphism-invariant fingerprint of the original query (the plan
    /// cache key).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The query exactly as submitted.
    pub fn original(&self) -> &Structure {
        &self.original
    }

    /// The structure actually evaluated: the core of the original when the
    /// configuration enables core preprocessing, the original otherwise.
    pub fn evaluated(&self) -> &Structure {
        &self.evaluated
    }

    /// Whether `evaluated` is the core of `original`.
    pub fn core_applied(&self) -> bool {
        self.core_applied
    }

    /// Universe size of the evaluated structure.
    pub fn evaluated_size(&self) -> usize {
        self.evaluated.universe_size()
    }

    /// The Gaifman graph of the evaluated structure.
    pub fn gaifman(&self) -> &Graph {
        &self.gaifman
    }

    /// The structural analysis: widths plus certificates.
    pub fn analysis(&self) -> &StructuralAnalysis {
        &self.analysis
    }

    /// The width profile of the evaluated structure.
    pub fn widths(&self) -> WidthProfile {
        self.analysis.widths
    }

    /// The degree this single query would contribute to a class
    /// classification, judged against the preparing configuration's
    /// thresholds.
    pub fn degree_hint(&self) -> Degree {
        self.degree_hint
    }

    /// The Lemma 3.3 `{∧,∃}`-sentence corresponding to the evaluated
    /// structure, compiled on first use from the elimination-forest
    /// certificate (no tree-depth recomputation) and cached for every later
    /// evaluation.
    pub fn sentence(&self) -> &TreeDepthSentence {
        self.sentence.get_or_init(|| {
            corresponding_sentence_with_forest(
                &self.evaluated,
                &self.analysis.elimination_forest,
                self.analysis.widths.treedepth,
            )
        })
    }

    /// The staircase normal form of the optimal path decomposition,
    /// normalized on first use and cached (the Theorem 4.6 sweep consumes
    /// staircase form).
    pub fn staircase(&self) -> &PathDecomposition {
        self.staircase
            .get_or_init(|| self.analysis.path_decomposition.normalize_staircase())
    }

    /// Whether the counting path can reuse the decision certificates: true
    /// exactly when the evaluated structure is the original structure
    /// (core preprocessing off, or the query is its own core).
    fn counting_reuses_decision_analysis(&self) -> bool {
        self.evaluated == self.original
    }

    /// The structural analysis of the **original** query — the certificates
    /// the counting solvers consume.
    ///
    /// Counting is not invariant under taking cores: `#hom(A, B)` differs
    /// from `#hom(core(A), B)` whenever the core is proper (e.g.
    /// `#hom(P₄, K₃) = 24` but the core of `P₄` is an edge with
    /// `#hom(K₂, K₃) = 6`).  The decision path may therefore evaluate the
    /// core while the counting path must run on `original`; this accessor
    /// serves the matching certificates, computing them lazily on first use
    /// (and reusing the decision analysis outright when the two structures
    /// coincide, so no width DP runs twice).
    ///
    /// Engine-managed plans should be counted through
    /// [`crate::Engine::count_prepared`], which folds the width-DP work of
    /// this lazy computation into [`crate::Engine::prep_stats`].
    pub fn counting_analysis(&self) -> &StructuralAnalysis {
        self.counting_analysis_tracked().0
    }

    /// As [`Self::counting_analysis`], additionally reporting whether *this*
    /// call performed the one-time computation (`true` at most once per
    /// plan, and never when the decision analysis is reused) — the engine
    /// uses the flag to attribute the width-DP delta to its [`crate::PrepStats`].
    pub(crate) fn counting_analysis_tracked(&self) -> (&StructuralAnalysis, bool) {
        if self.counting_reuses_decision_analysis() {
            return (&self.analysis, false);
        }
        let mut computed = false;
        let analysis = self.counting.get_or_init(|| {
            computed = true;
            cq_decomp::analyze(&gaifman_graph(&self.original))
        });
        (analysis, computed)
    }

    /// The width profile of the **original** query (counting-solver
    /// selection keys on these widths, not the core's — Theorem 6.1
    /// classifies counting by the members themselves).
    pub fn counting_widths(&self) -> WidthProfile {
        self.counting_analysis().widths
    }

    /// The kernel-program bundle for one database index **at its current
    /// domain epoch**, created on first sight and LRU-retained up to
    /// [`MAX_KERNEL_BUNDLES`] distinct `(index, epoch)` pairs.  A bundle
    /// compiled before a domain-growing delta keys under the old epoch and
    /// ages out of the LRU naturally.  A poisoned lock only means a panic
    /// elsewhere while the list was held; the cached programs are still
    /// valid.
    fn kernels_for(&self, index: &StructureIndex) -> Arc<IndexKernels> {
        let key = (index.id(), index.domain_epoch());
        let mut cache = self
            .kernels
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
            let entry = cache.remove(pos);
            let bundle = Arc::clone(&entry.1);
            cache.push(entry); // most-recently-used at the back
            return bundle;
        }
        let bundle = Arc::new(IndexKernels::default());
        if cache.len() >= MAX_KERNEL_BUNDLES {
            cache.remove(0); // least-recently-used at the front
        }
        cache.push((key, Arc::clone(&bundle)));
        bundle
    }

    /// Decide through the kernel forest evaluation (tree-depth tier),
    /// compiling the [`ForestProgram`] of the evaluated structure on first
    /// use against this index and reusing it afterwards.
    pub fn decide_via_forest(&self, index: &StructureIndex) -> ForestRun {
        self.kernels_for(index)
            .forest_decide
            .get_or_init(|| {
                ForestProgram::compile(&self.evaluated, index, &self.analysis.elimination_forest)
            })
            .decide(index)
    }

    /// Decide through the kernel staircase sweep (pathwidth tier),
    /// compiling the [`StairProgram`] on first use against this index.
    pub fn decide_via_staircase(&self, index: &StructureIndex) -> PathDpReport {
        self.kernels_for(index)
            .stair
            .get_or_init(|| StairProgram::compile(&self.evaluated, index, self.staircase()))
            .run(index)
    }

    /// Decide through the kernel tree DP (treewidth tier), compiling the
    /// [`TreeDpProgram`] on first use against this index.
    ///
    /// Evaluation is **retained**: the per-edge DP join tables of the last
    /// run stay on the bundle, so after an in-place
    /// [`crate::Engine::apply_delta`] only the bags whose constraints
    /// mention a touched relation re-run (Bool is not invertible, so dirty
    /// bags recompute rather than patch — see the bundle field docs for
    /// why that beats a `CheckedNat` decide state).  A concurrent
    /// evaluation holding the retained state falls back to a plain
    /// stateless pass.
    pub fn decide_via_tree(&self, index: &StructureIndex) -> TreeDpRun {
        let kernels = self.kernels_for(index);
        let program = kernels.tree_decide.get_or_init(|| {
            TreeDpProgram::compile(&self.evaluated, index, &self.analysis.tree_decomposition)
        });
        if let Ok(mut state) = kernels.tree_decide_retained.try_lock() {
            let (exists, stats) = program.eval_retained::<BoolSemiring>(index, &mut state);
            return TreeDpRun {
                exists,
                count: Nat::Finite(u64::from(exists)),
                peak_table: stats.peak_table,
            };
        }
        program.decide(index)
    }

    /// Search for a witness through the kernel whole-query program (the
    /// structure-agnostic fallback), compiling one [`SearchProgram`] per
    /// ordering strategy on first use against this index.
    pub fn search(
        &self,
        index: &StructureIndex,
        fail_first: bool,
    ) -> (Option<Vec<Element>>, KernelSearchStats) {
        let kernels = self.kernels_for(index);
        let slot = if fail_first {
            &kernels.search_fail_first
        } else {
            &kernels.search_plain
        };
        slot.get_or_init(|| SearchProgram::compile(&self.evaluated, index, fail_first))
            .run(index)
    }

    /// Count through the kernel forest sum–product (Theorem 6.1 (3)),
    /// compiling the [`ForestProgram`] of the **original** structure with
    /// the counting certificates on first use against this index.
    pub fn count_via_forest(&self, index: &StructureIndex) -> ForestRun {
        self.kernels_for(index)
            .forest_count
            .get_or_init(|| {
                ForestProgram::compile(
                    &self.original,
                    index,
                    &self.counting_analysis().elimination_forest,
                )
            })
            .count(index)
    }

    /// Count through the kernel tree DP, compiling the [`TreeDpProgram`]
    /// of the **original** structure with the counting certificates on
    /// first use against this index.
    ///
    /// Retained like [`Self::decide_via_tree`]; counts additionally get the
    /// subtractive fast path (`CheckedNat` is invertible, so a small delta
    /// patches group sums by ⊖/⊕ instead of re-enumerating the bag).
    pub fn count_via_tree(&self, index: &StructureIndex) -> TreeDpRun {
        let kernels = self.kernels_for(index);
        let program = kernels.tree_count.get_or_init(|| {
            TreeDpProgram::compile(
                &self.original,
                index,
                &self.counting_analysis().tree_decomposition,
            )
        });
        if let Ok(mut state) = kernels.tree_count_retained.try_lock() {
            let (count, stats) = program.eval_retained::<CheckedNatSemiring>(index, &mut state);
            return TreeDpRun {
                exists: count.positive(),
                count,
                peak_table: stats.peak_table,
            };
        }
        program.count(index)
    }

    /// The compiled [`AnswerProgram`] for one free-element list against one
    /// index: the **original** structure's counting tree decomposition with
    /// the free elements adjoined to every bag (answers, like counts, are
    /// not core-invariant — projecting homomorphisms of the core onto free
    /// positions of the core would answer a different query).  Compiled on
    /// first use and MRU-cached per free list on the index's kernel bundle.
    ///
    /// `free` must be the canonical-structure elements of the free
    /// variables in declared order, distinct; the engine validates this at
    /// the [`cq_structures::ConjunctiveQuery`] boundary.
    pub fn answer_program(&self, index: &StructureIndex, free: &[Element]) -> Arc<AnswerProgram> {
        let kernels = self.kernels_for(index);
        let mut cache = kernels
            .answers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(pos) = cache.iter().position(|(f, _)| f == free) {
            let entry = cache.remove(pos);
            let program = Arc::clone(&entry.1);
            cache.push(entry); // most-recently-used at the back
            return program;
        }
        let program = Arc::new(AnswerProgram::compile(
            &self.original,
            index,
            &self.counting_analysis().tree_decomposition,
            free,
        ));
        if cache.len() >= MAX_ANSWER_PROGRAMS {
            cache.remove(0);
        }
        cache.push((free.to_vec(), Arc::clone(&program)));
        program
    }

    /// Weighted ⊕-aggregate (min-cost, max-weight, …) through the kernel
    /// forest sum–product.  Aggregates, like counts, are **not**
    /// core-invariant, so this reuses the semiring-agnostic
    /// `forest_count` program — compiled from the **original** structure
    /// with the counting certificates — and only the weights change per
    /// call.
    pub fn aggregate_via_forest<S: Semiring>(
        &self,
        index: &StructureIndex,
        weights: &TupleWeights,
    ) -> S::Value {
        let mut assignments = 0u64;
        self.kernels_for(index)
            .forest_count
            .get_or_init(|| {
                ForestProgram::compile(
                    &self.original,
                    index,
                    &self.counting_analysis().elimination_forest,
                )
            })
            .eval::<S>(index, Some(weights), &mut assignments)
    }

    /// Weighted ⊕-aggregate through the kernel tree DP, reusing the
    /// `tree_count` program (original structure, counting certificates) —
    /// see [`Self::aggregate_via_forest`] for why aggregates share the
    /// counting programs, never the decision ones.
    pub fn aggregate_via_tree<S: Semiring>(
        &self,
        index: &StructureIndex,
        weights: &TupleWeights,
    ) -> S::Value {
        self.kernels_for(index)
            .tree_count
            .get_or_init(|| {
                TreeDpProgram::compile(
                    &self.original,
                    index,
                    &self.counting_analysis().tree_decomposition,
                )
            })
            .eval::<S>(index, Some(weights))
            .0
    }

    /// Weighted ⊕-aggregate through an exhaustive kernel search over the
    /// **original** structure — the structure-agnostic fallback tier.  The
    /// decision `search` slots compile the evaluated (core) structure and
    /// cannot be reused here, so this keeps its own compiled program slot.
    pub fn aggregate_via_search<S: Semiring>(
        &self,
        index: &StructureIndex,
        weights: &TupleWeights,
    ) -> (S::Value, KernelSearchStats) {
        self.kernels_for(index)
            .search_original
            .get_or_init(|| SearchProgram::compile(&self.original, index, true))
            .aggregate::<S>(index, Some(weights))
    }

    /// Whether this plan answers queries for `candidate`: true when
    /// `candidate` is homomorphically equivalent to the prepared original —
    /// exactly the equivalence under which `p-HOM` answers (and cores, hence
    /// plans) are preserved.  Used by the engine to confirm fingerprint
    /// matches before reusing a cached plan, so a hash collision can cost a
    /// cache miss but never a wrong answer.
    pub fn answers_for(&self, candidate: &Structure) -> bool {
        if *candidate == self.original {
            return true;
        }
        homomorphism_exists(candidate, &self.original)
            && homomorphism_exists(&self.original, candidate)
    }

    /// Whether this plan **counts** for `candidate`: true when `candidate`
    /// is *isomorphic* to the prepared original.
    ///
    /// Strictly stronger than [`Self::answers_for`], and necessarily so:
    /// homomorphism counts are invariant under isomorphism but **not**
    /// under homomorphic equivalence (the equivalence the decision cache
    /// trades in) — `P₄` and `K₂` are hom-equivalent yet have different
    /// counts into every non-trivial target.  The engine consults this
    /// before serving a count from a plan whose original differs
    /// syntactically from the submitted query; a hom-equivalent but
    /// non-isomorphic alias falls back to an uncached exact count instead
    /// of a silently wrong one.
    ///
    /// The check is two injective-homomorphism searches on parameter-sized
    /// structures: for finite structures, bijective homomorphisms in both
    /// directions compose to a bijective endo-homomorphism whose finite
    /// order makes the inverse a homomorphism too, i.e. an isomorphism.
    /// Verified forms are memoized on the plan, so repeated counting
    /// traffic submitting the same relabelling pays the searches once and
    /// a structural equality scan thereafter.
    pub fn counts_for(&self, candidate: &Structure) -> bool {
        if *candidate == self.original {
            return true;
        }
        if candidate.universe_size() != self.original.universe_size() {
            return false;
        }
        // A poisoned lock only means a panic elsewhere while the list was
        // held; the memoized entries are still valid.
        if self
            .count_verified_aliases
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .contains(candidate)
        {
            return true;
        }
        let isomorphic = embedding_exists(candidate, &self.original)
            && embedding_exists(&self.original, candidate);
        if isomorphic {
            let mut aliases = self
                .count_verified_aliases
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if aliases.len() < MAX_COUNT_VERIFIED_ALIASES && !aliases.contains(candidate) {
                aliases.push(candidate.clone());
            }
        }
        isomorphic
    }
}

/// Binary encoding of a prepared plan: the eager artifacts in declaration
/// order, then the three lazily materialized ones (`{∧,∃}`-sentence,
/// staircase form, counting certificates) as present/absent options — a
/// plan saved before any counting traffic simply stores `None` and the
/// warm-started engine materializes on first use, exactly like a plan
/// prepared in process.  The runtime alias memo and the per-index kernel
/// bundles are deliberately not persisted (they cache verification and
/// compilation work against process-local state — index ids are not
/// stable across processes — and are not part of the plan).
impl Encode for PreparedQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.fingerprint.encode(out);
        self.original.encode(out);
        self.evaluated.encode(out);
        self.core_applied.encode(out);
        self.gaifman.encode(out);
        self.analysis.encode(out);
        self.degree_hint.encode(out);
        encode_option_ref(self.sentence.get(), out);
        encode_option_ref(self.staircase.get(), out);
        encode_option_ref(self.counting.get(), out);
    }
}

impl Decode for PreparedQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        fn lock_from<T>(value: Option<T>) -> OnceLock<T> {
            match value {
                Some(v) => OnceLock::from(v),
                None => OnceLock::new(),
            }
        }
        Ok(PreparedQuery {
            fingerprint: u64::decode(r)?,
            original: Structure::decode(r)?,
            evaluated: Structure::decode(r)?,
            core_applied: bool::decode(r)?,
            gaifman: Graph::decode(r)?,
            analysis: StructuralAnalysis::decode(r)?,
            degree_hint: Degree::decode(r)?,
            sentence: lock_from(Option::<TreeDepthSentence>::decode(r)?),
            staircase: lock_from(Option::<PathDecomposition>::decode(r)?),
            counting: lock_from(Option::<StructuralAnalysis>::decode(r)?),
            count_verified_aliases: Mutex::new(Vec::new()),
            kernels: Mutex::new(Vec::new()),
        })
    }
}

impl PreparedQuery {
    /// Verify a decoded plan before trusting it with traffic: every
    /// derivable fact the plan asserts about itself is re-checked against
    /// the configuration it is about to serve under, so a corrupted or
    /// stale record (old thresholds, edited certificates, a swapped
    /// original) is rejected and degrades to a cold prepare — never a wrong
    /// answer.
    ///
    /// The checks reuse the engine's own confirmation paths: the
    /// isomorphism-invariant fingerprint, the homomorphic-equivalence check
    /// behind [`PreparedQuery::answers_for`], the decomposition validity
    /// checkers, and a deterministic recompilation of the lazily cached
    /// sentence/staircase artifacts.  No width DP and no core computation
    /// runs — that is what makes warm starts cheap (asserted by the
    /// round-trip tests through [`crate::PrepStats`]).  The hom-equivalence
    /// confirmation is the same backtracking search the cache's lookup
    /// confirmation uses: worst-case exponential in the *query*, which is
    /// parameter-sized by the problem's definition — but a store record is
    /// untrusted input, so callers loading stores from unvetted sources
    /// should expect verification time proportional to preparing the same
    /// queries' hom-equivalence checks, not a fixed bound.
    pub fn verify(&self, config: &EngineConfig) -> Result<(), &'static str> {
        if self.core_applied != config.use_core {
            return Err("plan prepared under a different core-preprocessing setting");
        }
        if query_fingerprint(&self.original) != self.fingerprint {
            return Err("fingerprint does not match the stored original");
        }
        if self.core_applied {
            if !(homomorphism_exists(&self.evaluated, &self.original)
                && homomorphism_exists(&self.original, &self.evaluated))
            {
                return Err("evaluated structure is not hom-equivalent to the original");
            }
        } else if self.evaluated != self.original {
            return Err("evaluated structure differs although core preprocessing is off");
        }
        if self.gaifman != gaifman_graph(&self.evaluated) {
            return Err("stale Gaifman graph");
        }
        Self::verify_analysis(&self.analysis, &self.gaifman)?;
        let widths = self.analysis.widths;
        let expected_degree = Degree::from_boundedness(
            widths.treewidth <= config.treewidth_threshold,
            widths.pathwidth <= config.pathwidth_threshold,
            widths.treedepth <= config.treedepth_threshold,
        );
        if self.degree_hint != expected_degree {
            return Err("degree hint inconsistent with the widths and thresholds");
        }
        if let Some(sentence) = self.sentence.get() {
            let expected = corresponding_sentence_with_forest(
                &self.evaluated,
                &self.analysis.elimination_forest,
                widths.treedepth,
            );
            if sentence.sentence != expected.sentence
                || sentence.core != expected.core
                || sentence.treedepth != expected.treedepth
                || sentence.forest != expected.forest
            {
                return Err("cached sentence differs from a fresh compilation");
            }
        }
        if let Some(staircase) = self.staircase.get() {
            if *staircase != self.analysis.path_decomposition.normalize_staircase() {
                return Err("cached staircase differs from a fresh normalization");
            }
        }
        match self.counting.get() {
            Some(_) if self.evaluated == self.original => {
                // When the evaluated structure *is* the original the plan
                // reuses the decision certificates and never populates this
                // slot; a populated slot is a non-canonical (tampered)
                // record.
                return Err("redundant counting certificates");
            }
            Some(counting) => {
                Self::verify_analysis(counting, &gaifman_graph(&self.original))?;
            }
            None => {}
        }
        Ok(())
    }

    /// Certificate-side consistency: every certificate must be valid for
    /// the graph and witness exactly the claimed width.  (A valid
    /// certificate of the claimed width cannot understate the true width,
    /// so the registry can never be tricked into running a solver outside
    /// its licence with an unusable certificate.)
    fn verify_analysis(analysis: &StructuralAnalysis, gaifman: &Graph) -> Result<(), &'static str> {
        let widths = analysis.widths;
        if !analysis.tree_decomposition.is_valid_for(gaifman)
            || analysis.tree_decomposition.width() != widths.treewidth
        {
            return Err("invalid or inconsistent tree decomposition");
        }
        if !analysis.path_decomposition.is_valid_for(gaifman)
            || analysis.path_decomposition.width() != widths.pathwidth
        {
            return Err("invalid or inconsistent path decomposition");
        }
        if !analysis.elimination_forest.is_valid_for(gaifman)
            || analysis.elimination_forest.height() != widths.treedepth
        {
            return Err("invalid or inconsistent elimination forest");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, relabeled, star_expansion};

    #[test]
    fn prepare_carries_certificates_matching_the_widths() {
        for a in [
            families::star(4),
            star_expansion(&families::path(6)),
            star_expansion(&families::tree_t(2)),
            families::clique(4),
        ] {
            let q = PreparedQuery::prepare(&a, &EngineConfig::default());
            let w = q.widths();
            let g = q.gaifman();
            assert!(q.analysis().tree_decomposition.is_valid_for(g));
            assert_eq!(q.analysis().tree_decomposition.width(), w.treewidth);
            assert!(q.analysis().path_decomposition.is_valid_for(g));
            assert_eq!(q.analysis().path_decomposition.width(), w.pathwidth);
            assert!(q.analysis().elimination_forest.is_valid_for(g));
            assert_eq!(q.analysis().elimination_forest.height(), w.treedepth);
        }
    }

    #[test]
    fn lazy_artifacts_are_consistent() {
        let a = star_expansion(&families::path(6));
        let q = PreparedQuery::prepare(&a, &EngineConfig::default());
        let stair = q.staircase();
        assert!(stair.is_staircase());
        assert!(stair.width() <= q.widths().pathwidth + 1);
        let sentence = &q.sentence().sentence;
        assert!(sentence.is_and_exists());
        assert!(sentence.is_sentence());
    }

    #[test]
    fn core_preprocessing_respects_the_config() {
        let c8 = families::cycle(8);
        let with_core = PreparedQuery::prepare(&c8, &EngineConfig::default());
        let without_core = PreparedQuery::prepare(
            &c8,
            &EngineConfig {
                use_core: false,
                ..EngineConfig::default()
            },
        );
        assert!(with_core.evaluated_size() < without_core.evaluated_size());
        assert!(with_core.core_applied());
        assert!(!without_core.core_applied());
        assert_eq!(without_core.evaluated(), &c8);
    }

    #[test]
    fn answers_for_accepts_relabellings_and_rejects_strangers() {
        let c7 = families::cycle(7);
        let q = PreparedQuery::prepare(&c7, &EngineConfig::default());
        let perm: Vec<usize> = (0..7).rev().collect();
        assert!(q.answers_for(&c7));
        assert!(q.answers_for(&relabeled(&c7, &perm)));
        assert!(!q.answers_for(&families::cycle(5)));
        assert!(!q.answers_for(&families::path(7)));
    }

    #[test]
    fn counting_analysis_describes_the_original_not_the_core() {
        // P6 cores down to an edge; the decision certificates describe the
        // edge (tree depth 2), the counting certificates the full path.
        let p6 = families::path(6);
        let q = PreparedQuery::prepare(&p6, &EngineConfig::default());
        assert!(q.core_applied());
        assert_eq!(q.evaluated_size(), 2);
        assert_eq!(q.widths().treedepth, 2);
        let counting = q.counting_analysis();
        let original_gaifman = cq_graphs::gaifman_graph(q.original());
        assert!(counting.elimination_forest.is_valid_for(&original_gaifman));
        assert!(counting.tree_decomposition.is_valid_for(&original_gaifman));
        assert_eq!(counting.widths.treewidth, 1);
        assert!(counting.widths.treedepth > 2, "P6 is deeper than its core");
        // The lazy computation happens exactly once.
        let (_, first) = q.counting_analysis_tracked();
        assert!(!first, "already materialized by the accessor above");
    }

    #[test]
    fn counting_analysis_reuses_decision_certificates_for_cores() {
        // An odd cycle is its own core: the counting path must not run a
        // second analysis (observable as pointer identity of the shared
        // certificates).
        let c7 = families::cycle(7);
        let q = PreparedQuery::prepare(&c7, &EngineConfig::default());
        let (counting, computed) = q.counting_analysis_tracked();
        assert!(!computed);
        assert!(std::ptr::eq(counting, q.analysis()));
        assert_eq!(q.counting_widths(), q.widths());
    }

    #[test]
    fn counts_for_is_stricter_than_answers_for() {
        // K2 and P4 are hom-equivalent (shared core K2) but not isomorphic:
        // a K2 plan answers decisions for P4 yet must refuse to count for it
        // (#hom(K2, K3) = 6 while #hom(P4, K3) = 24).
        let k2 = families::path(2);
        let p4 = families::path(4);
        let q = PreparedQuery::prepare(&k2, &EngineConfig::default());
        assert!(q.answers_for(&p4));
        assert!(!q.counts_for(&p4));
        // Relabellings are isomorphic, so counting for them is sound.
        let c7 = families::cycle(7);
        let qc = PreparedQuery::prepare(&c7, &EngineConfig::default());
        let perm: Vec<usize> = (0..7).rev().collect();
        assert!(qc.counts_for(&relabeled(&c7, &perm)));
        assert!(!qc.counts_for(&families::cycle(5)));
    }

    #[test]
    fn kernel_programs_compile_once_per_index_and_lru_evict() {
        use cq_structures::StructureIndex;
        let a = families::star(3);
        let q = PreparedQuery::prepare(&a, &EngineConfig::default());
        let warm = |i: &StructureIndex| {
            q.decide_via_tree(i);
            q.decide_via_forest(i);
            q.decide_via_staircase(i);
            q.search(i, true);
            q.search(i, false);
            q.count_via_tree(i);
            q.count_via_forest(i);
        };
        let bundle_of = |i: &StructureIndex| -> Arc<IndexKernels> {
            let cache = q.kernels.lock().unwrap();
            let (_, bundle) = cache
                .iter()
                .find(|(key, _)| key.0 == i.id())
                .expect("bundle cached");
            Arc::clone(bundle)
        };
        let k3 = families::clique(3);
        let index = StructureIndex::new(&k3);
        warm(&index);
        // Correctness of the cached programs.
        assert!(q.decide_via_tree(&index).exists);
        assert_eq!(
            q.count_via_forest(&index).count,
            cq_structures::count_homomorphisms_bruteforce(&a, &k3)
        );
        // Weighted aggregates reuse the counting programs (same bundle,
        // weights supplied at run time): uniform weight 1 makes the minimum
        // cost the number of query tuples, on every tier.
        let weights = TupleWeights::uniform(&k3, 1);
        let expected_cost = Some(a.tuple_count() as u64);
        assert_eq!(
            q.aggregate_via_forest::<cq_solver::MinCostSemiring>(&index, &weights),
            expected_cost
        );
        assert_eq!(
            q.aggregate_via_tree::<cq_solver::MinCostSemiring>(&index, &weights),
            expected_cost
        );
        assert_eq!(
            q.aggregate_via_search::<cq_solver::MinCostSemiring>(&index, &weights)
                .0,
            expected_cost
        );
        // One fully populated bundle for this index; `OnceLock` slots can
        // only initialize once, so bundle identity across repeat traffic
        // proves no program was recompiled.
        let bundle = bundle_of(&index);
        assert!(bundle.tree_decide.get().is_some());
        assert!(bundle.stair.get().is_some());
        assert!(bundle.forest_decide.get().is_some());
        assert!(bundle.search_fail_first.get().is_some());
        assert!(bundle.search_plain.get().is_some());
        assert!(bundle.tree_count.get().is_some());
        assert!(bundle.forest_count.get().is_some());
        assert!(bundle.search_original.get().is_some());
        warm(&index);
        assert!(Arc::ptr_eq(&bundle, &bundle_of(&index)));
        // A different database index gets its own bundle; both stay warm
        // side by side.
        let other = StructureIndex::new(&families::cycle(5));
        warm(&other);
        let other_bundle = bundle_of(&other);
        assert!(!Arc::ptr_eq(&bundle, &other_bundle));
        warm(&index);
        warm(&other);
        assert!(Arc::ptr_eq(&bundle, &bundle_of(&index)));
        assert!(Arc::ptr_eq(&other_bundle, &bundle_of(&other)));
        // Cycling more indexes than the cap evicts the least-recently-used
        // bundle; returning to it transparently recompiles (bounded
        // memory, unchanged answers).
        let extra: Vec<StructureIndex> = (0..super::MAX_KERNEL_BUNDLES)
            .map(|i| StructureIndex::new(&families::path(i + 2)))
            .collect();
        for e in &extra {
            q.decide_via_tree(e);
        }
        assert!(q
            .kernels
            .lock()
            .unwrap()
            .iter()
            .all(|(key, _)| key.0 != index.id()));
        assert!(q.decide_via_tree(&index).exists);
        assert!(!Arc::ptr_eq(&bundle, &bundle_of(&index)));
    }

    #[test]
    fn in_place_deltas_reuse_warm_tree_programs_until_the_epoch_bumps() {
        use cq_structures::{
            count_homomorphisms_bruteforce, DeltaBatch, StructureIndex, Vocabulary,
        };

        let a = families::star(3);
        let q = PreparedQuery::prepare(&a, &EngineConfig::default());

        // A K4 on {0..3} plus the isolated element 4: every posting list of
        // element 4 is empty, so its first tuple later must bump the epoch.
        let voc = Vocabulary::graph();
        let e = voc.id_of("E").unwrap();
        let mut db = Structure::new(voc, 5).unwrap();
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    db.add_tuple(e, vec![u, v]).unwrap();
                }
            }
        }
        let mut index = StructureIndex::new(&db);
        let bundle_of = |i: &StructureIndex| -> Arc<IndexKernels> {
            let cache = q.kernels.lock().unwrap();
            let (_, bundle) = cache
                .iter()
                .find(|(key, _)| *key == (i.id(), i.domain_epoch()))
                .expect("bundle cached under the current (id, epoch) key");
            Arc::clone(bundle)
        };
        let check = |i: &StructureIndex| {
            let run = q.count_via_tree(i);
            assert_eq!(run.exists, q.decide_via_tree(i).exists);
            assert_eq!(run.count, count_homomorphisms_bruteforce(&a, i.structure()));
        };
        check(&index);
        let warm_bundle = bundle_of(&index);
        assert!(warm_bundle
            .tree_count_retained
            .try_lock()
            .unwrap()
            .is_some());
        let epoch = index.domain_epoch();

        // Same-epoch churn (delete one K4 edge): every touched element keeps
        // nonempty postings, so the warm bundle — `OnceLock` slots compile
        // at most once — keeps serving, with retained tables resynced to the
        // new index version.
        let mut churn = DeltaBatch::new();
        churn.delete(e, vec![0, 1]);
        index.apply_delta(&churn).unwrap();
        assert_eq!(index.domain_epoch(), epoch);
        check(&index);
        assert!(Arc::ptr_eq(&warm_bundle, &bundle_of(&index)));
        let retained = warm_bundle.tree_count_retained.try_lock().unwrap();
        assert_eq!(retained.as_ref().unwrap().version(), index.version());
        drop(retained);

        // Epoch bump (element 4 gains its first tuples): the baked prefilter
        // domains are stale, so the next evaluation keys a fresh bundle and
        // recompiles — answers stay right throughout.
        let mut grow = DeltaBatch::new();
        grow.insert(e, vec![4, 0]).insert(e, vec![0, 4]);
        index.apply_delta(&grow).unwrap();
        assert!(index.domain_epoch() > epoch);
        check(&index);
        assert!(!Arc::ptr_eq(&warm_bundle, &bundle_of(&index)));
    }

    #[test]
    fn count_verified_aliases_are_memoized_once_per_form() {
        let c7 = families::cycle(7);
        let q = PreparedQuery::prepare(&c7, &EngineConfig::default());
        let perm: Vec<usize> = (0..7).rev().collect();
        let twisted = relabeled(&c7, &perm);
        // Repeat lookups of the same relabelled form: the embedding
        // verification runs on the first call only; afterwards the form
        // sits in the memo exactly once.
        for _ in 0..3 {
            assert!(q.counts_for(&twisted));
            assert_eq!(q.count_verified_aliases.lock().unwrap().len(), 1);
        }
        // The identical form and rejected strangers never enter the memo.
        assert!(q.counts_for(&c7));
        assert!(!q.counts_for(&families::path(7)));
        assert_eq!(q.count_verified_aliases.lock().unwrap().len(), 1);
    }
}
