//! The [`PreparedQuery`] artifact: everything the engine needs to evaluate
//! one query against arbitrarily many databases, computed **once**.
//!
//! Preparation performs the per-query exponential work the Classification
//! Theorem licenses spending (it depends only on the parameter): the core
//! computation (Theorem 3.1 classifies by cores), the Gaifman graph, and the
//! single-pass structural analysis of [`cq_decomp::analyze`] — the three
//! width measures **with** their certificates (elimination forest, path
//! decomposition, tree decomposition).  The solvers of the registry consume
//! those certificates directly, so nothing exponential in the query runs
//! again at evaluation time; the regression tests assert this through the
//! call counters of [`cq_decomp::stats`] and
//! [`cq_structures::core_computation_count`].
//!
//! Two derived per-query artifacts are materialized lazily on first use and
//! then shared by every subsequent evaluation:
//!
//! * the Lemma 3.3 `{∧,∃}`-sentence (tree-depth solver), compiled from the
//!   elimination-forest certificate;
//! * the staircase normal form of the path decomposition (path-sweep
//!   solver).

use crate::engine::EngineConfig;
use crate::Degree;
use cq_decomp::{PathDecomposition, StructuralAnalysis, WidthProfile};
use cq_graphs::{gaifman_graph, Graph};
use cq_logic::canonical::query_fingerprint;
use cq_logic::treedepth_sentence::{corresponding_sentence_with_forest, TreeDepthSentence};
use cq_structures::{core_of, homomorphism_exists, Structure};
use std::sync::OnceLock;

/// A query prepared for repeated evaluation: the core, its Gaifman graph,
/// the width profile, and the decomposition certificates — computed once,
/// reused for every database.
///
/// Obtained from [`crate::Engine::prepare`] (which caches prepared queries
/// by [fingerprint](cq_logic::canonical::query_fingerprint)) or directly
/// from [`PreparedQuery::prepare`].
#[derive(Debug)]
pub struct PreparedQuery {
    fingerprint: u64,
    original: Structure,
    evaluated: Structure,
    core_applied: bool,
    gaifman: Graph,
    analysis: StructuralAnalysis,
    degree_hint: Degree,
    sentence: OnceLock<TreeDepthSentence>,
    staircase: OnceLock<PathDecomposition>,
}

impl PreparedQuery {
    /// Prepare a query under the given configuration.  This is the one-time
    /// per-query cost: core computation (when `config.use_core`), Gaifman
    /// graph, and the single structural-analysis pass.
    pub fn prepare(a: &Structure, config: &EngineConfig) -> PreparedQuery {
        Self::prepare_with_fingerprint(a, config, query_fingerprint(a))
    }

    /// As [`prepare`](Self::prepare) with a caller-supplied fingerprint (the
    /// engine computes the fingerprint first for its cache lookup and avoids
    /// hashing twice).
    pub(crate) fn prepare_with_fingerprint(
        a: &Structure,
        config: &EngineConfig,
        fingerprint: u64,
    ) -> PreparedQuery {
        let evaluated = if config.use_core {
            core_of(a).core
        } else {
            a.clone()
        };
        let gaifman = gaifman_graph(&evaluated);
        let analysis = cq_decomp::analyze(&gaifman);
        let widths = analysis.widths;
        let degree_hint = Degree::from_boundedness(
            widths.treewidth <= config.treewidth_threshold,
            widths.pathwidth <= config.pathwidth_threshold,
            widths.treedepth <= config.treedepth_threshold,
        );
        PreparedQuery {
            fingerprint,
            original: a.clone(),
            evaluated,
            core_applied: config.use_core,
            gaifman,
            analysis,
            degree_hint,
            sentence: OnceLock::new(),
            staircase: OnceLock::new(),
        }
    }

    /// The isomorphism-invariant fingerprint of the original query (the plan
    /// cache key).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The query exactly as submitted.
    pub fn original(&self) -> &Structure {
        &self.original
    }

    /// The structure actually evaluated: the core of the original when the
    /// configuration enables core preprocessing, the original otherwise.
    pub fn evaluated(&self) -> &Structure {
        &self.evaluated
    }

    /// Whether `evaluated` is the core of `original`.
    pub fn core_applied(&self) -> bool {
        self.core_applied
    }

    /// Universe size of the evaluated structure.
    pub fn evaluated_size(&self) -> usize {
        self.evaluated.universe_size()
    }

    /// The Gaifman graph of the evaluated structure.
    pub fn gaifman(&self) -> &Graph {
        &self.gaifman
    }

    /// The structural analysis: widths plus certificates.
    pub fn analysis(&self) -> &StructuralAnalysis {
        &self.analysis
    }

    /// The width profile of the evaluated structure.
    pub fn widths(&self) -> WidthProfile {
        self.analysis.widths
    }

    /// The degree this single query would contribute to a class
    /// classification, judged against the preparing configuration's
    /// thresholds.
    pub fn degree_hint(&self) -> Degree {
        self.degree_hint
    }

    /// The Lemma 3.3 `{∧,∃}`-sentence corresponding to the evaluated
    /// structure, compiled on first use from the elimination-forest
    /// certificate (no tree-depth recomputation) and cached for every later
    /// evaluation.
    pub fn sentence(&self) -> &TreeDepthSentence {
        self.sentence.get_or_init(|| {
            corresponding_sentence_with_forest(
                &self.evaluated,
                &self.analysis.elimination_forest,
                self.analysis.widths.treedepth,
            )
        })
    }

    /// The staircase normal form of the optimal path decomposition,
    /// normalized on first use and cached (the Theorem 4.6 sweep consumes
    /// staircase form).
    pub fn staircase(&self) -> &PathDecomposition {
        self.staircase
            .get_or_init(|| self.analysis.path_decomposition.normalize_staircase())
    }

    /// Whether this plan answers queries for `candidate`: true when
    /// `candidate` is homomorphically equivalent to the prepared original —
    /// exactly the equivalence under which `p-HOM` answers (and cores, hence
    /// plans) are preserved.  Used by the engine to confirm fingerprint
    /// matches before reusing a cached plan, so a hash collision can cost a
    /// cache miss but never a wrong answer.
    pub fn answers_for(&self, candidate: &Structure) -> bool {
        if *candidate == self.original {
            return true;
        }
        homomorphism_exists(candidate, &self.original)
            && homomorphism_exists(&self.original, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, relabeled, star_expansion};

    #[test]
    fn prepare_carries_certificates_matching_the_widths() {
        for a in [
            families::star(4),
            star_expansion(&families::path(6)),
            star_expansion(&families::tree_t(2)),
            families::clique(4),
        ] {
            let q = PreparedQuery::prepare(&a, &EngineConfig::default());
            let w = q.widths();
            let g = q.gaifman();
            assert!(q.analysis().tree_decomposition.is_valid_for(g));
            assert_eq!(q.analysis().tree_decomposition.width(), w.treewidth);
            assert!(q.analysis().path_decomposition.is_valid_for(g));
            assert_eq!(q.analysis().path_decomposition.width(), w.pathwidth);
            assert!(q.analysis().elimination_forest.is_valid_for(g));
            assert_eq!(q.analysis().elimination_forest.height(), w.treedepth);
        }
    }

    #[test]
    fn lazy_artifacts_are_consistent() {
        let a = star_expansion(&families::path(6));
        let q = PreparedQuery::prepare(&a, &EngineConfig::default());
        let stair = q.staircase();
        assert!(stair.is_staircase());
        assert!(stair.width() <= q.widths().pathwidth + 1);
        let sentence = &q.sentence().sentence;
        assert!(sentence.is_and_exists());
        assert!(sentence.is_sentence());
    }

    #[test]
    fn core_preprocessing_respects_the_config() {
        let c8 = families::cycle(8);
        let with_core = PreparedQuery::prepare(&c8, &EngineConfig::default());
        let without_core = PreparedQuery::prepare(
            &c8,
            &EngineConfig {
                use_core: false,
                ..EngineConfig::default()
            },
        );
        assert!(with_core.evaluated_size() < without_core.evaluated_size());
        assert!(with_core.core_applied());
        assert!(!without_core.core_applied());
        assert_eq!(without_core.evaluated(), &c8);
    }

    #[test]
    fn answers_for_accepts_relabellings_and_rejects_strangers() {
        let c7 = families::cycle(7);
        let q = PreparedQuery::prepare(&c7, &EngineConfig::default());
        let perm: Vec<usize> = (0..7).rev().collect();
        assert!(q.answers_for(&c7));
        assert!(q.answers_for(&relabeled(&c7, &perm)));
        assert!(!q.answers_for(&families::cycle(5)));
        assert!(!q.answers_for(&families::path(7)));
    }
}
