//! The persistent plan store: a versioned, checksummed on-disk container
//! for [`PreparedQuery`] plans, so the per-query exponential work the
//! Classification Theorem licenses (cores, width DPs, decomposition
//! certificates, the compiled `{∧,∃}`-sentence) survives process restarts.
//!
//! The paper's whole economy is that preparation is a per-*query* cost while
//! per-*instance* evaluation stays logspace-cheap; before this module the
//! amortization died with the process.  [`crate::Engine::save_plans`]
//! snapshots the sharded plan cache into a [`PlanStore`] file and
//! [`crate::Engine::load_plans`] /
//! [`crate::Engine::with_plan_store`] warm-start a fresh engine from one —
//! after which the whole workload runs with **zero** decompositions and
//! zero core computations (asserted by the round-trip tests through
//! [`crate::PrepStats`]).
//!
//! # File format (version 1)
//!
//! ```text
//! ┌──────────────────────┬──────────────────────────────────────────────┐
//! │ magic                │ 8 bytes, "CQPLANS\0"                         │
//! │ format version       │ u32 LE (currently 1)                         │
//! │ config length        │ u64 LE                                       │
//! │ config               │ encoded EngineConfig of the saving engine    │
//! │ record count         │ u64 LE                                       │
//! │ record × count       │ fingerprint u64 LE                           │
//! │                      │ payload length u64 LE                        │
//! │                      │ payload (encoded PreparedQuery)              │
//! │                      │ payload checksum u64 LE (FNV-1a)             │
//! │ file checksum        │ u64 LE, FNV-1a over all preceding bytes      │
//! └──────────────────────┴──────────────────────────────────────────────┘
//! ```
//!
//! # Versioning policy
//!
//! The format version is bumped on **any** change to the byte layout — the
//! container framing above or the [`Encode`] output of any persisted type.
//! A store written by a different version is rejected wholesale
//! ([`DecodeError::UnsupportedVersion`]); there is no silent migration.
//! The checked-in golden fixture `tests/fixtures/plans_v1.bin` pins the
//! version-1 layout in CI: codec drift without a version bump fails the
//! decode of the fixture, and a version bump without a fixture update fails
//! the version assertion — either way the drift is caught at build time.
//!
//! # Trust model
//!
//! A store file is **data, not authority**.  Decoding validates structural
//! invariants (see [`cq_structures::codec`]), and the engine re-verifies
//! every decoded plan against its own configuration before caching it
//! ([`PreparedQuery::verify`]): fingerprint, hom-equivalence of the
//! evaluated core, certificate validity, threshold-derived degree, and
//! deterministic recompilation of the cached sentence/staircase.  A record
//! that fails any step is counted in
//! [`crate::PrepStats::plans_rejected`] and simply skipped — the query it
//! would have served degrades to a cold prepare, never to a wrong answer.

use crate::engine::EngineConfig;
use crate::prepared::PreparedQuery;
use crate::Degree;
use cq_structures::codec::{
    decode_from_slice, encode_to_vec, fnv1a64, Decode, DecodeError, Encode, Reader,
};
use std::fmt;
use std::path::Path;

/// The 8 magic bytes opening every plan-store file.
pub const PLAN_STORE_MAGIC: [u8; 8] = *b"CQPLANS\0";

/// The one format version this build reads and writes.
pub const PLAN_STORE_VERSION: u32 = 1;

/// Errors of the file-level plan-store API: an I/O failure or a corrupt /
/// foreign / stale-version byte stream.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The bytes do not decode as a plan store of the supported version.
    Decode(DecodeError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "plan store I/O error: {e}"),
            PersistError::Decode(e) => write!(f, "plan store decode error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Decode(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<DecodeError> for PersistError {
    fn from(e: DecodeError) -> Self {
        PersistError::Decode(e)
    }
}

impl Encode for Degree {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Degree::ParaL => 0,
            Degree::PathComplete => 1,
            Degree::TreeComplete => 2,
            Degree::W1Hard => 3,
        });
    }
}

impl Decode for Degree {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(Degree::ParaL),
            1 => Ok(Degree::PathComplete),
            2 => Ok(Degree::TreeComplete),
            3 => Ok(Degree::W1Hard),
            tag => Err(DecodeError::BadTag {
                what: "Degree",
                tag,
            }),
        }
    }
}

impl Encode for EngineConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.use_core.encode(out);
        self.treedepth_threshold.encode(out);
        self.pathwidth_threshold.encode(out);
        self.treewidth_threshold.encode(out);
        self.workers.encode(out);
        self.backtrack.encode(out);
    }
}

impl Decode for EngineConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EngineConfig {
            use_core: bool::decode(r)?,
            treedepth_threshold: usize::decode(r)?,
            pathwidth_threshold: usize::decode(r)?,
            treewidth_threshold: usize::decode(r)?,
            workers: usize::decode(r)?,
            backtrack: cq_solver::backtrack::BacktrackConfig::decode(r)?,
        })
    }
}

impl Encode for crate::SolverChoice {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            crate::SolverChoice::TreeDepth => 0,
            crate::SolverChoice::PathDecomposition => 1,
            crate::SolverChoice::TreeDecomposition => 2,
            crate::SolverChoice::Backtracking => 3,
        });
    }
}

impl Decode for crate::SolverChoice {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(crate::SolverChoice::TreeDepth),
            1 => Ok(crate::SolverChoice::PathDecomposition),
            2 => Ok(crate::SolverChoice::TreeDecomposition),
            3 => Ok(crate::SolverChoice::Backtracking),
            tag => Err(DecodeError::BadTag {
                what: "SolverChoice",
                tag,
            }),
        }
    }
}

impl Encode for crate::EngineReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.exists.encode(out);
        self.choice.encode(out);
        self.degree_hint.encode(out);
        self.widths.encode(out);
        self.evaluated_query_size.encode(out);
    }
}

impl Decode for crate::EngineReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::EngineReport {
            exists: bool::decode(r)?,
            choice: crate::SolverChoice::decode(r)?,
            degree_hint: Degree::decode(r)?,
            widths: cq_decomp::WidthProfile::decode(r)?,
            evaluated_query_size: usize::decode(r)?,
        })
    }
}

impl Encode for crate::CountMethod {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            crate::CountMethod::ForestSumProduct => 0,
            crate::CountMethod::TreeDecompositionDp => 1,
            crate::CountMethod::BruteForce => 2,
        });
    }
}

impl Decode for crate::CountMethod {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(crate::CountMethod::ForestSumProduct),
            1 => Ok(crate::CountMethod::TreeDecompositionDp),
            2 => Ok(crate::CountMethod::BruteForce),
            tag => Err(DecodeError::BadTag {
                what: "CountMethod",
                tag,
            }),
        }
    }
}

impl Encode for crate::CountOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            crate::CountOutcome::Exact(n) => {
                out.push(0);
                n.encode(out);
            }
            crate::CountOutcome::Overflow => out.push(1),
        }
    }
}

impl Decode for crate::CountOutcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(crate::CountOutcome::Exact(u64::decode(r)?)),
            1 => Ok(crate::CountOutcome::Overflow),
            tag => Err(DecodeError::BadTag {
                what: "CountOutcome",
                tag,
            }),
        }
    }
}

impl Encode for crate::CountReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.count.encode(out);
        self.method.encode(out);
        self.degree_hint.encode(out);
        self.widths.encode(out);
        self.counted_query_size.encode(out);
    }
}

impl Decode for crate::CountReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::CountReport {
            count: crate::CountOutcome::decode(r)?,
            method: crate::CountMethod::decode(r)?,
            degree_hint: Degree::decode(r)?,
            widths: cq_decomp::WidthProfile::decode(r)?,
            counted_query_size: usize::decode(r)?,
        })
    }
}

impl Encode for crate::AnswerMethod {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            crate::AnswerMethod::TreeDecompositionDp => 0,
            crate::AnswerMethod::BruteForce => 1,
        });
    }
}

impl Decode for crate::AnswerMethod {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(crate::AnswerMethod::TreeDecompositionDp),
            1 => Ok(crate::AnswerMethod::BruteForce),
            tag => Err(DecodeError::BadTag {
                what: "AnswerMethod",
                tag,
            }),
        }
    }
}

impl Encode for crate::AnswerCountReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.answers.encode(out);
        self.method.encode(out);
        self.degree_hint.encode(out);
        self.widths.encode(out);
        self.answer_width.encode(out);
        self.free_count.encode(out);
    }
}

impl Decode for crate::AnswerCountReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::AnswerCountReport {
            answers: u64::decode(r)?,
            method: crate::AnswerMethod::decode(r)?,
            degree_hint: Degree::decode(r)?,
            widths: cq_decomp::WidthProfile::decode(r)?,
            answer_width: usize::decode(r)?,
            free_count: usize::decode(r)?,
        })
    }
}

impl Encode for crate::AnswerPage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
        self.offset.encode(out);
        self.has_more.encode(out);
        self.method.encode(out);
    }
}

impl Decode for crate::AnswerPage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::AnswerPage {
            rows: Vec::decode(r)?,
            offset: u64::decode(r)?,
            has_more: bool::decode(r)?,
            method: crate::AnswerMethod::decode(r)?,
        })
    }
}

impl Encode for crate::PrepStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.preparations.encode(out);
        self.treewidth_calls.encode(out);
        self.pathwidth_calls.encode(out);
        self.treedepth_calls.encode(out);
        self.core_computations.encode(out);
        self.counting_preparations.encode(out);
        self.plans_loaded.encode(out);
        self.plans_rejected.encode(out);
        self.plans_saved.encode(out);
        self.plans_evicted_persisted.encode(out);
    }
}

impl Decode for crate::PrepStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::PrepStats {
            preparations: u64::decode(r)?,
            treewidth_calls: u64::decode(r)?,
            pathwidth_calls: u64::decode(r)?,
            treedepth_calls: u64::decode(r)?,
            core_computations: u64::decode(r)?,
            counting_preparations: u64::decode(r)?,
            plans_loaded: u64::decode(r)?,
            plans_rejected: u64::decode(r)?,
            plans_saved: u64::decode(r)?,
            plans_evicted_persisted: u64::decode(r)?,
        })
    }
}

impl Encode for crate::CacheStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lookups.encode(out);
        self.hits.encode(out);
        self.misses.encode(out);
        self.evictions.encode(out);
        self.entries.encode(out);
    }
}

impl Decode for crate::CacheStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::CacheStats {
            lookups: u64::decode(r)?,
            hits: u64::decode(r)?,
            misses: u64::decode(r)?,
            evictions: u64::decode(r)?,
            entries: usize::decode(r)?,
        })
    }
}

impl Encode for crate::IndexStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lookups.encode(out);
        self.hits.encode(out);
        self.misses.encode(out);
        self.hash_computes.encode(out);
        self.entries.encode(out);
    }
}

impl Decode for crate::IndexStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::IndexStats {
            lookups: u64::decode(r)?,
            hits: u64::decode(r)?,
            misses: u64::decode(r)?,
            hash_computes: u64::decode(r)?,
            entries: usize::decode(r)?,
        })
    }
}

/// One framed record of a [`PlanStore`]: a fingerprint key plus the encoded
/// plan payload (decoded lazily, so one corrupt record cannot poison its
/// neighbours).
#[derive(Debug, Clone)]
pub struct StoredPlan {
    fingerprint: u64,
    payload: Vec<u8>,
}

impl StoredPlan {
    /// The fingerprint key the record was cached under when saved.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The raw encoded plan payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Decode the payload into a plan.  The result is **unverified**: run
    /// [`PreparedQuery::verify`] before serving traffic from it.
    pub fn decode_plan(&self) -> Result<PreparedQuery, DecodeError> {
        decode_from_slice(&self.payload)
    }
}

/// An in-memory plan-store image: the saving engine's configuration plus
/// fingerprint-keyed encoded plans, (de)serializable to the version-1 file
/// format described in the module docs.
#[derive(Debug)]
pub struct PlanStore {
    config: EngineConfig,
    records: Vec<StoredPlan>,
    corrupt_records: u64,
}

impl PlanStore {
    /// An empty store that will record plans prepared under `config`.
    pub fn new(config: EngineConfig) -> PlanStore {
        PlanStore {
            config,
            records: Vec::new(),
            corrupt_records: 0,
        }
    }

    /// The configuration of the engine that saved the store.  A loading
    /// engine whose plan-relevant settings differ
    /// ([`EngineConfig::plan_compatible`]) rejects every record as stale.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of intact records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no intact records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records whose per-record checksum failed at parse time (dropped from
    /// [`PlanStore::records`]; the loader folds this into its rejected
    /// count).
    pub fn corrupt_records(&self) -> u64 {
        self.corrupt_records
    }

    /// The intact records, in file order.
    pub fn records(&self) -> impl Iterator<Item = &StoredPlan> {
        self.records.iter()
    }

    /// Append a plan, encoded under its cache fingerprint.
    pub fn push_plan(&mut self, plan: &PreparedQuery) {
        self.records.push(StoredPlan {
            fingerprint: plan.fingerprint(),
            payload: encode_to_vec(plan),
        });
    }

    /// Append a raw pre-encoded record.  Exists for tooling and the
    /// corruption tests (which need to frame hostile payloads behind valid
    /// checksums); regular callers should use [`PlanStore::push_plan`].
    pub fn push_raw_record(&mut self, fingerprint: u64, payload: Vec<u8>) {
        self.records.push(StoredPlan {
            fingerprint,
            payload,
        });
    }

    /// Insert a plan keyed by its fingerprint, replacing any existing record
    /// with the same fingerprint.  This is the save-on-eviction entry point:
    /// a long-running engine upserts each evicted plan here, so repeated
    /// churn on the same query costs one record, not an unbounded append.
    pub fn upsert_plan(&mut self, plan: &PreparedQuery) {
        let fingerprint = plan.fingerprint();
        let payload = encode_to_vec(plan);
        if let Some(existing) = self
            .records
            .iter_mut()
            .find(|r| r.fingerprint == fingerprint)
        {
            existing.payload = payload;
        } else {
            self.records.push(StoredPlan {
                fingerprint,
                payload,
            });
        }
    }

    /// Sort records by fingerprint (ties keep insertion order).  Keeps the
    /// byte image deterministic when records arrive in eviction order.
    pub fn sort_by_fingerprint(&mut self) {
        self.records.sort_by_key(|r| r.fingerprint);
    }

    /// Serialize to the version-1 file format (with fresh checksums).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&PLAN_STORE_MAGIC);
        PLAN_STORE_VERSION.encode(&mut out);
        let config_bytes = encode_to_vec(&self.config);
        (config_bytes.len() as u64).encode(&mut out);
        out.extend_from_slice(&config_bytes);
        (self.records.len() as u64).encode(&mut out);
        for record in &self.records {
            record.fingerprint.encode(&mut out);
            (record.payload.len() as u64).encode(&mut out);
            out.extend_from_slice(&record.payload);
            fnv1a64(&record.payload).encode(&mut out);
        }
        fnv1a64(&out).encode(&mut out);
        out
    }

    /// Parse a version-1 plan store.
    ///
    /// File-level problems — wrong magic, unsupported version, truncation,
    /// a whole-file checksum mismatch, trailing bytes — are hard errors (the
    /// caller has no usable store).  A record whose **own** checksum fails
    /// while the file checksum holds is merely dropped and counted in
    /// [`PlanStore::corrupt_records`]; its payload is never decoded.
    pub fn from_bytes(bytes: &[u8]) -> Result<PlanStore, DecodeError> {
        let mut header = Reader::new(bytes);
        if header.take(PLAN_STORE_MAGIC.len())? != PLAN_STORE_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = header.read_u32()?;
        if version != PLAN_STORE_VERSION {
            return Err(DecodeError::UnsupportedVersion {
                found: version,
                supported: PLAN_STORE_VERSION,
            });
        }
        let header_len = header.position();
        if bytes.len() < header_len + 8 {
            return Err(DecodeError::UnexpectedEof {
                needed: header_len + 8,
                available: bytes.len(),
            });
        }
        let body_end = bytes.len() - 8;
        let declared = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        if fnv1a64(&bytes[..body_end]) != declared {
            return Err(DecodeError::BadChecksum { what: "file" });
        }
        let mut r = Reader::new(&bytes[header_len..body_end]);
        let config_len = r.read_count("config block length")?;
        let config: EngineConfig = decode_from_slice(r.take(config_len)?)?;
        let record_count = r.read_count("record count")?;
        let mut records = Vec::new();
        let mut corrupt_records = 0u64;
        for _ in 0..record_count {
            let fingerprint = r.read_u64()?;
            let payload_len = r.read_count("record payload length")?;
            let payload = r.take(payload_len)?;
            let checksum = r.read_u64()?;
            if fnv1a64(payload) != checksum {
                corrupt_records += 1;
                continue;
            }
            records.push(StoredPlan {
                fingerprint,
                payload: payload.to_vec(),
            });
        }
        if !r.is_empty() {
            return Err(DecodeError::TrailingBytes {
                count: r.remaining(),
            });
        }
        Ok(PlanStore {
            config,
            records,
            corrupt_records,
        })
    }

    /// Write the store to a file (created or replaced) **atomically**: the
    /// bytes land in a sibling temporary file first and are renamed over
    /// the destination, so a reader (or a crash) mid-save observes either
    /// the complete previous store or the complete new one — never a
    /// truncated prefix.  Concurrent writers race only on which complete
    /// store wins the rename (last-writer-wins), which the whole-file
    /// checksum of [`PlanStore::from_bytes`] would otherwise flag as
    /// corruption.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        write_image_atomic(path.as_ref(), &self.to_bytes())?;
        Ok(())
    }

    /// Read a store from a file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<PlanStore, PersistError> {
        let bytes = std::fs::read(path)?;
        Ok(PlanStore::from_bytes(&bytes)?)
    }
}

/// Atomically replace `path` with `bytes`: the bytes land in a sibling
/// temporary file first and are renamed over the destination, so a reader
/// (or a crash) mid-save observes either the complete previous store or the
/// complete new one — never a truncated prefix.  Concurrent writers race
/// only on which complete image wins the rename (last-writer-wins); the
/// scratch names are disambiguated by pid + a process-wide counter so
/// racing saves never share one.  Separated from [`PlanStore::write_to`] so
/// the engine's background eviction writer can serialize under the store
/// lock but perform the I/O outside it.
pub(crate) fn write_image_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "plans".to_string());
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}.{seq}", std::process::id()));
    let result = (|| {
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort scratch cleanup; the original error is what the
        // caller needs to see.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// What [`crate::Engine::load_plans`] did with a store's records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStartSummary {
    /// Records that decoded, verified, and entered the plan cache.
    pub loaded: u64,
    /// Records skipped: corrupt, failing verification, prepared under an
    /// incompatible configuration, or duplicating an already-cached plan.
    pub rejected: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::families;

    fn store_with(queries: &[cq_structures::Structure]) -> PlanStore {
        let config = EngineConfig::default();
        let mut store = PlanStore::new(config);
        for q in queries {
            store.push_plan(&PreparedQuery::prepare(q, &config));
        }
        store
    }

    #[test]
    fn store_roundtrips_bit_identically() {
        let store = store_with(&[families::star(3), families::cycle(5)]);
        let bytes = store.to_bytes();
        let back = PlanStore::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.len(), 2);
        assert_eq!(back.corrupt_records(), 0);
        assert_eq!(back.config(), store.config());
        assert_eq!(back.to_bytes(), bytes, "re-serialization is bit-identical");
        for (a, b) in back.records().zip(store.records()) {
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert_eq!(a.payload(), b.payload());
            let plan = a.decode_plan().expect("payload decodes");
            assert!(plan.verify(store.config()).is_ok());
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let mut bytes = store_with(&[families::star(3)]).to_bytes();
        let mut foreign = bytes.clone();
        foreign[0] = b'X';
        assert!(matches!(
            PlanStore::from_bytes(&foreign),
            Err(DecodeError::BadMagic)
        ));
        // Patch the version and re-seal the file checksum: the version gate
        // must fire on a checksum-valid file.
        bytes[8] = 99;
        let body_end = bytes.len() - 8;
        let seal = fnv1a64(&bytes[..body_end]).to_le_bytes();
        bytes[body_end..].copy_from_slice(&seal);
        assert!(matches!(
            PlanStore::from_bytes(&bytes),
            Err(DecodeError::UnsupportedVersion {
                found: 99,
                supported: PLAN_STORE_VERSION
            })
        ));
    }

    #[test]
    fn any_bit_flip_breaks_the_file_checksum() {
        let bytes = store_with(&[families::star(3)]).to_bytes();
        for pos in [12, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x40;
            assert!(
                PlanStore::from_bytes(&flipped).is_err(),
                "bit flip at {pos} must not parse"
            );
        }
    }

    #[test]
    fn per_record_checksum_salvages_the_rest_of_the_file() {
        // Frame one valid and one hostile record; the hostile one carries a
        // deliberately wrong checksum while the file checksum is fresh.
        let config = EngineConfig::default();
        let plan = PreparedQuery::prepare(&families::star(3), &config);
        let mut store = PlanStore::new(config);
        store.push_plan(&plan);
        let mut bytes = store.to_bytes();
        // Corrupt one payload byte and re-seal only the file checksum: the
        // record checksum now lies.
        let payload_start = bytes.len() - 8 - 8 - plan_payload_len(&store);
        bytes[payload_start] ^= 0xff;
        let body_end = bytes.len() - 8;
        let seal = fnv1a64(&bytes[..body_end]).to_le_bytes();
        bytes[body_end..].copy_from_slice(&seal);
        let back = PlanStore::from_bytes(&bytes).expect("file-level frame intact");
        assert_eq!(back.len(), 0);
        assert_eq!(back.corrupt_records(), 1);
    }

    fn plan_payload_len(store: &PlanStore) -> usize {
        store.records().next().expect("one record").payload().len()
    }

    #[test]
    fn truncations_never_parse() {
        let bytes = store_with(&[families::star(3)]).to_bytes();
        for len in 0..bytes.len() {
            assert!(
                PlanStore::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must not parse"
            );
        }
    }

    #[test]
    fn concurrent_writers_never_leave_a_torn_or_partial_file() {
        // Several threads hammer the same path with *different* valid stores.
        // The temp-file + rename protocol guarantees every observable file
        // state is one complete store (last writer wins); a torn write would
        // fail the whole-file checksum in `from_bytes`.
        let mut path = std::env::temp_dir();
        path.push(format!(
            "cq_plan_store_concurrent_{}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let queries = [families::star(3), families::cycle(5), families::path(4)];
        let stores: Vec<PlanStore> = queries
            .iter()
            .map(|q| store_with(std::slice::from_ref(q)))
            .collect();
        let valid_images: Vec<Vec<u8>> = stores.iter().map(PlanStore::to_bytes).collect();

        std::thread::scope(|scope| {
            for store in &stores {
                let path = path.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        store.write_to(&path).expect("atomic save");
                    }
                });
            }
            // A concurrent reader may race the writers: every successful read
            // must be a complete store, never a prefix or interleaving.
            let reader_path = path.clone();
            scope.spawn(move || {
                for _ in 0..40 {
                    if let Ok(back) = PlanStore::read_from(&reader_path) {
                        assert_eq!(back.corrupt_records(), 0);
                        assert_eq!(back.len(), 1);
                    }
                    std::thread::yield_now();
                }
            });
        });

        let final_bytes = std::fs::read(&path).expect("file exists after the storm");
        assert!(
            valid_images.contains(&final_bytes),
            "final file must be byte-identical to one complete written store"
        );
        let dir = path.parent().expect("temp dir");
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .expect("read temp dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".cq_plan_store_concurrent") && n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn engine_config_and_degree_roundtrip() {
        let configs = [
            EngineConfig::default(),
            EngineConfig {
                use_core: false,
                treedepth_threshold: 9,
                pathwidth_threshold: 0,
                treewidth_threshold: 1,
                workers: 4,
                backtrack: cq_solver::backtrack::BacktrackConfig {
                    preprocess_arc_consistency: false,
                    maintain_arc_consistency: true,
                    fail_first_ordering: false,
                },
            },
        ];
        for cfg in configs {
            let back: EngineConfig = decode_from_slice(&encode_to_vec(&cfg)).unwrap();
            assert_eq!(back, cfg);
        }
        for d in [
            Degree::ParaL,
            Degree::PathComplete,
            Degree::TreeComplete,
            Degree::W1Hard,
        ] {
            let back: Degree = decode_from_slice(&encode_to_vec(&d)).unwrap();
            assert_eq!(back, d);
        }
        assert!(matches!(
            decode_from_slice::<Degree>(&[9]),
            Err(DecodeError::BadTag {
                what: "Degree",
                tag: 9
            })
        ));
    }
}
