//! Weighted-aggregate solvers and their priority-ordered registry — the
//! semiring generalization of [`crate::counting`].
//!
//! The kernel's DPs are one sum-of-products generic over a
//! [`Semiring`](cq_solver::Semiring); instantiated at [`MinCostSemiring`] /
//! [`MaxWeightSemiring`] they compute the
//! cheapest (resp. heaviest) homomorphism under a per-tuple
//! [`TupleWeights`] table instead of the number of homomorphisms.  The
//! structural licences are **identical** to counting's — aggregates, like
//! counts, are not invariant under taking cores (a core collapses distinct
//! homomorphisms that may have distinct costs), so [`AggregateSolver::admits`]
//! keys on [`PreparedQuery::counting_widths`] and evaluation runs on
//! [`PreparedQuery::original`] with the counting certificates.  The solvers
//! reuse the compiled counting programs (`tree_count` / `forest_count`
//! kernel slots): a compiled program is semiring-agnostic, only the run
//! differs.
//!
//! Tiers mirror [`crate::CountMethod`] and are reported as such:
//! forest sum–product (bounded tree depth), tree-decomposition DP (bounded
//! treewidth), exhaustive search (no structural guarantee).

use crate::counting::CountMethod;
use crate::engine::EngineConfig;
use crate::prepared::PreparedQuery;
use crate::Degree;
use cq_decomp::WidthProfile;
use cq_solver::{MaxWeightSemiring, MinCostSemiring};
use cq_structures::{Structure, StructureIndex, TupleWeights};

/// Which ⊕-objective an aggregate evaluation optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateObjective {
    /// Minimum total tuple weight over all homomorphisms (tropical
    /// `(min, +)` semiring).
    MinCost,
    /// Maximum total tuple weight over all homomorphisms (`(max, +)`
    /// semiring, saturating at `u64::MAX`).
    MaxWeight,
}

impl std::fmt::Display for AggregateObjective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateObjective::MinCost => write!(f, "min-cost"),
            AggregateObjective::MaxWeight => write!(f, "max-weight"),
        }
    }
}

/// What the engine found on one weighted-aggregate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateReport {
    /// The optimal total weight, or `None` when no homomorphism exists
    /// (the ⊕-identity of both weighted semirings).
    pub value: Option<u64>,
    /// The objective that was optimized.
    pub objective: AggregateObjective,
    /// The algorithmic tier that ran (the counting tiers, reused).
    pub method: CountMethod,
    /// The degree the query's **own** widths would earn in the counting
    /// classification (aggregates share counting's non-core-invariance).
    pub degree_hint: Degree,
    /// Width profile of the original query (what
    /// [`AggregateSolver::admits`] keyed on).
    pub widths: WidthProfile,
}

/// One weighted-aggregate algorithm in the registry; the contract mirrors
/// [`crate::CountSolver`] — `admits` reads cached original-structure
/// widths, `evaluate` runs compiled kernel programs, nothing exponential in
/// the query happens here.
pub trait AggregateSolver: Send + Sync {
    /// Short human-readable name (reports, bench labels).
    fn name(&self) -> &'static str;

    /// The tier this solver reports as (the counting tiers, reused).
    fn method(&self) -> CountMethod;

    /// Whether the structural licence covers the query — keyed on the
    /// *original* query's widths, exactly as for counting.
    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool;

    /// Optimize `objective` over all homomorphisms from the prepared
    /// query's original structure into the database, reading tuple weights
    /// from `weights` (which must align with the database's rows).
    fn evaluate(
        &self,
        query: &PreparedQuery,
        database: &Structure,
        index: &StructureIndex,
        weights: &TupleWeights,
        objective: AggregateObjective,
    ) -> Option<u64>;
}

/// Weighted sum–product over the original query's elimination forest —
/// the bounded-tree-depth tier, reusing the `forest_count` kernel program.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForestAggregateSolver;

impl AggregateSolver for ForestAggregateSolver {
    fn name(&self) -> &'static str {
        "elimination-forest weighted sum-product"
    }

    fn method(&self) -> CountMethod {
        CountMethod::ForestSumProduct
    }

    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool {
        query.counting_widths().treedepth <= config.treedepth_threshold
    }

    fn evaluate(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
        weights: &TupleWeights,
        objective: AggregateObjective,
    ) -> Option<u64> {
        match objective {
            AggregateObjective::MinCost => {
                query.aggregate_via_forest::<MinCostSemiring>(index, weights)
            }
            AggregateObjective::MaxWeight => {
                query.aggregate_via_forest::<MaxWeightSemiring>(index, weights)
            }
        }
    }
}

/// Weighted DP over the original query's tree decomposition — the
/// bounded-treewidth tier, reusing the `tree_count` kernel program.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeDecAggregateSolver;

impl AggregateSolver for TreeDecAggregateSolver {
    fn name(&self) -> &'static str {
        "tree-decomposition weighted DP"
    }

    fn method(&self) -> CountMethod {
        CountMethod::TreeDecompositionDp
    }

    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool {
        query.counting_widths().treewidth <= config.treewidth_threshold
    }

    fn evaluate(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
        weights: &TupleWeights,
        objective: AggregateObjective,
    ) -> Option<u64> {
        match objective {
            AggregateObjective::MinCost => {
                query.aggregate_via_tree::<MinCostSemiring>(index, weights)
            }
            AggregateObjective::MaxWeight => {
                query.aggregate_via_tree::<MaxWeightSemiring>(index, weights)
            }
        }
    }
}

/// Exhaustive kernel search over the original structure — admits every
/// query, terminating every registry walk (the aggregate analogue of
/// [`crate::BruteForceCountSolver`], but indexed: it reuses the prepared
/// query's compiled original-structure [`SearchProgram`](cq_solver::SearchProgram)).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchAggregateSolver;

impl AggregateSolver for SearchAggregateSolver {
    fn name(&self) -> &'static str {
        "exhaustive weighted search"
    }

    fn method(&self) -> CountMethod {
        CountMethod::BruteForce
    }

    fn admits(&self, _query: &PreparedQuery, _config: &EngineConfig) -> bool {
        true
    }

    fn evaluate(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
        weights: &TupleWeights,
        objective: AggregateObjective,
    ) -> Option<u64> {
        match objective {
            AggregateObjective::MinCost => {
                query
                    .aggregate_via_search::<MinCostSemiring>(index, weights)
                    .0
            }
            AggregateObjective::MaxWeight => {
                query
                    .aggregate_via_search::<MaxWeightSemiring>(index, weights)
                    .0
            }
        }
    }
}

/// A priority-ordered list of aggregate solvers; dispatch picks the first
/// that admits the query.
pub struct AggregateRegistry {
    solvers: Vec<Box<dyn AggregateSolver>>,
}

impl AggregateRegistry {
    /// The standard tier order (mirrors [`crate::CountRegistry::standard`]):
    /// forest sum–product, tree DP, exhaustive search.
    pub fn standard() -> AggregateRegistry {
        AggregateRegistry {
            solvers: vec![
                Box::new(ForestAggregateSolver),
                Box::new(TreeDecAggregateSolver),
                Box::new(SearchAggregateSolver),
            ],
        }
    }

    /// A registry with an explicit solver list (ablations).
    pub fn new(solvers: Vec<Box<dyn AggregateSolver>>) -> AggregateRegistry {
        AggregateRegistry { solvers }
    }

    /// This registry minus every solver reporting the given method.
    pub fn without(mut self, method: CountMethod) -> AggregateRegistry {
        self.solvers.retain(|s| s.method() != method);
        self
    }

    /// The first solver admitting the query, in priority order.
    pub fn select(
        &self,
        query: &PreparedQuery,
        config: &EngineConfig,
    ) -> Option<&dyn AggregateSolver> {
        self.solvers
            .iter()
            .map(|s| s.as_ref())
            .find(|s| s.admits(query, config))
    }

    /// The solvers in priority order (names are stable bench labels).
    pub fn solvers(&self) -> impl Iterator<Item = &dyn AggregateSolver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }
}

impl std::fmt::Debug for AggregateRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.solvers.iter().map(|s| s.name()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::families;

    fn prepared(a: &Structure) -> PreparedQuery {
        PreparedQuery::prepare(a, &EngineConfig::default())
    }

    #[test]
    fn standard_registry_selects_the_counting_tiers() {
        let cfg = EngineConfig::default();
        let registry = AggregateRegistry::standard();
        let cases = [
            (families::star(5), CountMethod::ForestSumProduct),
            // P9's own tree depth exceeds the threshold; its treewidth is 1.
            (families::path(9), CountMethod::TreeDecompositionDp),
            (families::clique(5), CountMethod::BruteForce),
        ];
        for (a, expected) in cases {
            let q = prepared(&a);
            let s = registry.select(&q, &cfg).expect("fallback admits");
            assert_eq!(s.method(), expected, "{a}");
        }
    }

    #[test]
    fn every_tier_agrees_on_uniform_weights() {
        // Uniform weight w: every homomorphism costs exactly
        // `w · #query-tuples`, so min and max coincide on every tier.
        let registry = AggregateRegistry::standard();
        for a in [families::star(3), families::path(4)] {
            let q = prepared(&a);
            let expected = Some(3 * a.tuple_count() as u64);
            for b in [families::clique(3), families::cycle(6)] {
                let index = StructureIndex::new(&b);
                let weights = TupleWeights::uniform(&b, 3);
                for s in registry.solvers() {
                    for objective in [AggregateObjective::MinCost, AggregateObjective::MaxWeight] {
                        assert_eq!(
                            s.evaluate(&q, &b, &index, &weights, objective),
                            expected,
                            "{} {objective} on {a} -> {b}",
                            s.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn no_homomorphism_reports_none_on_every_tier() {
        let registry = AggregateRegistry::standard();
        // An odd cycle has no homomorphism into an even one (bipartite).
        let a = families::cycle(3);
        let b = families::cycle(4);
        let q = prepared(&a);
        let index = StructureIndex::new(&b);
        let weights = TupleWeights::uniform(&b, 1);
        for s in registry.solvers() {
            for objective in [AggregateObjective::MinCost, AggregateObjective::MaxWeight] {
                assert_eq!(s.evaluate(&q, &b, &index, &weights, objective), None);
            }
        }
    }

    #[test]
    fn without_removes_a_tier() {
        let cfg = EngineConfig::default();
        let registry = AggregateRegistry::standard().without(CountMethod::ForestSumProduct);
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
        let q = prepared(&families::star(5));
        let s = registry.select(&q, &cfg).expect("fallback admits");
        assert_eq!(s.method(), CountMethod::TreeDecompositionDp);
        assert!(AggregateRegistry::new(Vec::new()).is_empty());
    }
}
