//! The [`CountSolver`] trait and the priority-ordered counting registry —
//! the counting half of the classification (Theorem 6.1), mirrored on the
//! decision registry of [`crate::registry`].
//!
//! Theorem 6.1 classifies `p-#HOM(A)` by the widths of the class members
//! **themselves**: counting is not invariant under taking cores (a query
//! and its proper core have equal decision answers but different counts),
//! so unlike the decision registry — which keys on the core's widths — a
//! counting solver's [`CountSolver::admits`] keys on
//! [`PreparedQuery::counting_widths`], the width profile of the query
//! exactly as submitted, and its [`CountSolver::count`] runs on
//! [`PreparedQuery::original`] with the original-structure certificates of
//! [`PreparedQuery::counting_analysis`].
//!
//! The standard registry order follows the theorem's algorithmic tiers:
//!
//! 1. [`ForestCountSolver`] — the sum–product recursion over the
//!    elimination forest (Theorem 6.1 (3), bounded tree depth);
//! 2. [`TreeDecCountSolver`] — the extension-counting DP over the tree
//!    decomposition (the tractable tier of the counting classification,
//!    bounded treewidth);
//! 3. [`BruteForceCountSolver`] — exhaustive enumeration, admitting every
//!    query, so a registry walk always terminates.
//!
//! Ablations are registry edits ([`CountRegistry::without`],
//! [`CountRegistry::new`]), exactly as for decision.

use crate::engine::EngineConfig;
use crate::prepared::PreparedQuery;
use crate::service::Engine;
use crate::Degree;
use cq_decomp::WidthProfile;
use cq_solver::Nat;
use cq_structures::{count_homomorphisms_bruteforce, Structure, StructureIndex};

/// Which counting algorithm the engine picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CountMethod {
    /// Sum–product recursion over the elimination forest
    /// (Theorem 6.1 (3)).
    ForestSumProduct,
    /// Extension-counting dynamic programming over the tree decomposition.
    TreeDecompositionDp,
    /// Exhaustive enumeration (no structural guarantee).
    BruteForce,
}

/// A homomorphism count that cannot silently lie: either the exact number,
/// or a typed admission that it exceeded `u64::MAX`.
///
/// This replaces the old saturating `u64` — saturated counts fed into the
/// Lemma 6.2 inclusion–exclusion produced confidently wrong answers, while
/// `Overflow` poisons every arithmetic context it reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CountOutcome {
    /// The exact number of homomorphisms.
    Exact(u64),
    /// The count exceeds `u64::MAX`; no numeric value is reported.
    Overflow,
}

impl CountOutcome {
    /// The exact count, or `None` on overflow.
    pub fn exact(self) -> Option<u64> {
        match self {
            CountOutcome::Exact(n) => Some(n),
            CountOutcome::Overflow => None,
        }
    }

    /// The exact count; panics with `msg` on overflow.  For callers that
    /// have already established the instance cannot overflow (tests,
    /// closed-form comparisons).
    pub fn expect_exact(self, msg: &str) -> u64 {
        match self {
            CountOutcome::Exact(n) => n,
            CountOutcome::Overflow => panic!("{msg}: count overflowed u64"),
        }
    }

    /// Whether at least one homomorphism exists.  Sound on overflow: a
    /// count past `u64::MAX` is certainly positive.
    pub fn positive(self) -> bool {
        match self {
            CountOutcome::Exact(n) => n > 0,
            CountOutcome::Overflow => true,
        }
    }
}

impl From<Nat> for CountOutcome {
    fn from(n: Nat) -> CountOutcome {
        match n {
            Nat::Finite(v) => CountOutcome::Exact(v),
            Nat::Overflow => CountOutcome::Overflow,
        }
    }
}

impl From<u64> for CountOutcome {
    fn from(n: u64) -> CountOutcome {
        CountOutcome::Exact(n)
    }
}

/// Counts compare naturally against literals (`report.count == 24`); an
/// overflowed count equals no `u64`.
impl PartialEq<u64> for CountOutcome {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, CountOutcome::Exact(n) if n == other)
    }
}

impl std::fmt::Display for CountOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountOutcome::Exact(n) => write!(f, "{n}"),
            CountOutcome::Overflow => write!(f, "overflow"),
        }
    }
}

/// What one counting-solver invocation produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountEvaluation {
    /// The number of homomorphisms, or a typed overflow.
    pub outcome: CountOutcome,
    /// A solver-specific work figure for the experiment reports; `None`
    /// when the solver meters nothing.
    pub work: Option<u64>,
}

/// What the engine did and found on one counting instance.
///
/// `PartialEq`/`Eq` so batch results can be compared wholesale — the
/// determinism tests assert that [`Engine::count_batch`] under any worker
/// count returns a sequence identical to the sequential path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountReport {
    /// The number of homomorphisms from the query **as submitted** into the
    /// database, or a typed overflow past `u64::MAX`.
    pub count: CountOutcome,
    /// The counting algorithm chosen.
    pub method: CountMethod,
    /// The degree the single query would contribute to a Theorem 6.1
    /// counting classification — judged on its **own** widths (not its
    /// core's) against the thresholds, because counting is not
    /// core-invariant.
    pub degree_hint: Degree,
    /// Width profile of the original query (what
    /// [`CountSolver::admits`] keyed on).
    pub widths: WidthProfile,
    /// Universe size of the counted (original) query.
    pub counted_query_size: usize,
}

/// One counting algorithm in the registry.
///
/// Implementations must be cheap to consult: `admits` reads the prepared
/// query's cached original-structure width profile, and `count` runs
/// against the prepared counting certificates — all exponential-in-the-query
/// work belongs to preparation, not here.  (The engine materializes the
/// counting certificates before consulting the registry, so `admits` never
/// triggers the lazy analysis itself.)
pub trait CountSolver: Send + Sync {
    /// Short human-readable name (used in reports and bench labels).
    fn name(&self) -> &'static str;

    /// The [`CountMethod`] tag this solver reports as.
    fn method(&self) -> CountMethod;

    /// Whether this solver's structural licence covers the prepared query
    /// under the given thresholds.  Counting licences key on the *original*
    /// query's widths ([`PreparedQuery::counting_widths`]).
    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool;

    /// Count homomorphisms from the prepared query's original structure
    /// into one database through its cached [`StructureIndex`].
    fn count(
        &self,
        query: &PreparedQuery,
        database: &Structure,
        index: &StructureIndex,
    ) -> CountEvaluation;
}

/// Sum–product counting over the original query's elimination forest
/// (Theorem 6.1 (3)): for bounded tree depth the recursion
/// `N_{r→b} = Π_i Σ_{b'} N_{t_i→b'}` counts with one image per ancestor in
/// memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForestCountSolver;

impl CountSolver for ForestCountSolver {
    fn name(&self) -> &'static str {
        "elimination-forest sum-product counting"
    }

    fn method(&self) -> CountMethod {
        CountMethod::ForestSumProduct
    }

    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool {
        query.counting_widths().treedepth <= config.treedepth_threshold
    }

    fn count(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
    ) -> CountEvaluation {
        let run = query.count_via_forest(index);
        CountEvaluation {
            outcome: run.count.into(),
            work: Some(run.assignments),
        }
    }
}

/// Extension-counting DP over the original query's tree decomposition — the
/// bounded-treewidth tier of the counting classification.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeDecCountSolver;

impl CountSolver for TreeDecCountSolver {
    fn name(&self) -> &'static str {
        "tree-decomposition counting DP"
    }

    fn method(&self) -> CountMethod {
        CountMethod::TreeDecompositionDp
    }

    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool {
        query.counting_widths().treewidth <= config.treewidth_threshold
    }

    fn count(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
    ) -> CountEvaluation {
        let run = query.count_via_tree(index);
        CountEvaluation {
            outcome: run.count.into(),
            work: Some(run.peak_table as u64),
        }
    }
}

/// Exhaustive enumeration — the structural-guarantee-free reference; admits
/// every query, so it terminates every registry walk.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceCountSolver;

impl CountSolver for BruteForceCountSolver {
    fn name(&self) -> &'static str {
        "brute-force enumeration counting"
    }

    fn method(&self) -> CountMethod {
        CountMethod::BruteForce
    }

    fn admits(&self, _query: &PreparedQuery, _config: &EngineConfig) -> bool {
        true
    }

    fn count(
        &self,
        query: &PreparedQuery,
        database: &Structure,
        _index: &StructureIndex,
    ) -> CountEvaluation {
        // Deliberately the un-indexed reference enumeration: this solver
        // doubles as the oracle of the counting differential tests.  The
        // underlying search hoists its symbol translation once per call and
        // visits complete assignments by reference, so the enumeration runs
        // with no per-assignment map allocation while staying
        // reference-pure.
        let count = count_homomorphisms_bruteforce(query.original(), database);
        CountEvaluation {
            outcome: CountOutcome::Exact(count),
            // Enumeration visits each homomorphism once: the count is the
            // work.
            work: Some(count),
        }
    }
}

/// A priority-ordered list of counting solvers; dispatch picks the first
/// that admits the query.
pub struct CountRegistry {
    solvers: Vec<Box<dyn CountSolver>>,
}

impl CountRegistry {
    /// The standard order of Theorem 6.1: forest sum–product (bounded tree
    /// depth), then the tree-DP (bounded treewidth), then brute force.
    pub fn standard() -> CountRegistry {
        CountRegistry {
            solvers: vec![
                Box::new(ForestCountSolver),
                Box::new(TreeDecCountSolver),
                Box::new(BruteForceCountSolver),
            ],
        }
    }

    /// A registry with an explicit solver list (full control for
    /// ablations).
    pub fn new(solvers: Vec<Box<dyn CountSolver>>) -> CountRegistry {
        CountRegistry { solvers }
    }

    /// This registry minus every solver reporting the given method — the
    /// counting analogue of the E12 ablation edit.
    pub fn without(mut self, method: CountMethod) -> CountRegistry {
        self.solvers.retain(|s| s.method() != method);
        self
    }

    /// Append a solver at the lowest priority.
    pub fn push(&mut self, solver: Box<dyn CountSolver>) {
        self.solvers.push(solver);
    }

    /// The first solver admitting the query, in priority order.
    pub fn select(&self, query: &PreparedQuery, config: &EngineConfig) -> Option<&dyn CountSolver> {
        self.solvers
            .iter()
            .map(|s| s.as_ref())
            .find(|s| s.admits(query, config))
    }

    /// The solvers in priority order (names are stable bench labels).
    pub fn solvers(&self) -> impl Iterator<Item = &dyn CountSolver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty (no solver will ever be selected).
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }
}

impl std::fmt::Debug for CountRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.solvers.iter().map(|s| s.name()))
            .finish()
    }
}

/// Count the homomorphisms of a single `p-#HOM` instance with the algorithm
/// its structure licenses.
///
/// Compatibility wrapper over the prepared-query engine, mirroring
/// [`crate::solve_instance`]: builds a throwaway [`Engine`], prepares `a`
/// once and counts.  Repeated-query callers should hold an [`Engine`] and
/// use [`Engine::count_instance`] / [`Engine::count_batch`] so plans (and
/// their counting certificates) are reused.
pub fn count_instance(a: &Structure, b: &Structure, config: EngineConfig) -> CountReport {
    Engine::new(config).count_instance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::families;

    fn prepared(a: &Structure) -> PreparedQuery {
        PreparedQuery::prepare(a, &EngineConfig::default())
    }

    #[test]
    fn standard_registry_selects_in_priority_order() {
        let cfg = EngineConfig::default();
        let registry = CountRegistry::standard();
        let cases = [
            (families::star(5), CountMethod::ForestSumProduct),
            // P9 cores to an edge, but counting keys on the original: tree
            // depth of P9 is 4 (above the threshold 3) while its treewidth
            // is 1.
            (families::path(9), CountMethod::TreeDecompositionDp),
            (families::clique(5), CountMethod::BruteForce),
        ];
        for (a, expected) in cases {
            let q = prepared(&a);
            let s = registry.select(&q, &cfg).expect("fallback admits");
            assert_eq!(s.method(), expected, "{a}");
        }
    }

    #[test]
    fn without_removes_a_tier_and_dispatch_falls_through() {
        let cfg = EngineConfig::default();
        let registry = CountRegistry::standard().without(CountMethod::ForestSumProduct);
        assert_eq!(registry.len(), 2);
        let q = prepared(&families::star(5));
        let s = registry.select(&q, &cfg).expect("fallback admits");
        assert_eq!(s.method(), CountMethod::TreeDecompositionDp);
    }

    #[test]
    fn empty_registry_selects_nothing() {
        let cfg = EngineConfig::default();
        let registry = CountRegistry::new(Vec::new());
        assert!(registry.is_empty());
        let q = prepared(&families::star(3));
        assert!(registry.select(&q, &cfg).is_none());
    }

    #[test]
    fn all_registry_solvers_agree_with_the_reference() {
        let registry = CountRegistry::standard();
        // Queries every solver admits, including one with a proper core
        // (P4): the counts must be those of the original structure.
        for a in [families::star(3), families::path(4)] {
            let q = prepared(&a);
            for b in [families::clique(3), families::cycle(6), families::path(4)] {
                let expected = count_homomorphisms_bruteforce(&a, &b);
                let index = StructureIndex::new(&b);
                for s in registry.solvers() {
                    assert_eq!(
                        s.count(&q, &b, &index).outcome,
                        expected,
                        "{} on {a} -> {b}",
                        s.name()
                    );
                }
            }
        }
    }

    #[test]
    fn count_instance_wrapper_counts_the_original() {
        // #hom(P4, K3) = 3·2·2·2 = 24, even though the decision path
        // evaluates the core K2 (#hom(K2, K3) = 6).
        let report = count_instance(
            &families::path(4),
            &families::clique(3),
            EngineConfig::default(),
        );
        assert_eq!(report.count, 24);
        assert_eq!(report.counted_query_size, 4);
        assert_eq!(report.widths.treewidth, 1);
    }
}
