//! Answer counting and bounded-delay answer enumeration — the free-variable
//! face of the engine.
//!
//! A conjunctive query with free variables
//! ([`cq_structures::ConjunctiveQuery::mark_free`]) no longer asks a yes/no
//! question: its answers are the projections of the homomorphisms from the
//! canonical structure into the database onto the free positions, counted
//! *as a set* (two homomorphisms agreeing on the free part are one answer).
//! This sits strictly between decision and counting in the classification
//! landscape — like counting (Theorem 6.1), it is **not** invariant under
//! taking cores, so everything here runs on the *original* structure with
//! the counting certificates of
//! [`PreparedQuery::counting_analysis`](crate::PreparedQuery::counting_analysis);
//! unlike counting, the tractable regime pays a width price of at most the
//! number of free variables (the free-adjoined decomposition of
//! [`cq_decomp::TreeDecomposition::answer_decomposition`]).
//!
//! The engine entry points are [`Engine::count_answers`] and the paged
//! [`Engine::answers`] (with batch twins [`Engine::count_answers_batch`] /
//! [`Engine::answers_batch`]); the kernel machinery they dispatch to is
//! [`cq_solver::kernel::AnswerProgram`] (grouped root-bag DP for counting,
//! pinned-prefix cursor for enumeration with per-answer delay independent of
//! the total answer count).  The structurally unlicensed fallback is
//! [`cq_structures::answers_bruteforce`], which materializes the same
//! sorted, deduplicated projection by exhaustive enumeration.
//!
//! [`Engine::count_answers`]: crate::Engine::count_answers
//! [`Engine::answers`]: crate::Engine::answers
//! [`Engine::count_answers_batch`]: crate::Engine::count_answers_batch
//! [`Engine::answers_batch`]: crate::Engine::answers_batch

use crate::Degree;
use cq_decomp::WidthProfile;

/// Which algorithm produced an answer count or answer page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnswerMethod {
    /// The free-adjoined tree-decomposition DP / pinned-prefix cursor of
    /// [`cq_solver::kernel::AnswerProgram`] — the structurally licensed
    /// path (counting treewidth within the engine's threshold).
    TreeDecompositionDp,
    /// Exhaustive homomorphism enumeration with projection
    /// ([`cq_structures::answers_bruteforce`]) — no structural guarantee.
    BruteForce,
}

/// The result of counting a query's answers against one database
/// ([`crate::Engine::count_answers`]).
///
/// The count is the number of **distinct** free-variable assignments
/// extendable to a full homomorphism — a set cardinality, bounded by
/// `|B|^k` for `k` free variables, so unlike homomorphism counting it
/// cannot overflow `u64` on anything that fits in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnswerCountReport {
    /// Number of distinct answers.
    pub answers: u64,
    /// Which algorithm produced the count.
    pub method: AnswerMethod,
    /// Degree of the *decision* classification the submitted query's
    /// original widths would dictate (Theorem 3.1 via the engine's
    /// thresholds) — context, not the dispatch criterion.
    pub degree_hint: Degree,
    /// Width profile of the submitted query exactly as written (the
    /// counting widths — answers are not core-invariant).
    pub widths: WidthProfile,
    /// Width of the free-adjoined decomposition the DP ran on (at most
    /// `widths.treewidth + free_count`).  On the brute-force path, the
    /// same `widths.treewidth + free_count` bound that the engine declined
    /// to pay is reported.
    pub answer_width: usize,
    /// Number of free variables (the arity of every answer row).
    pub free_count: usize,
}

/// One page of a query's answers ([`crate::Engine::answers`]):
/// a contiguous window of the full enumeration in lexicographically
/// ascending row order (rows are tuples of database elements aligned with
/// [`cq_structures::ConjunctiveQuery::free_variables`] order).
///
/// Pages are deterministic: the same `(query, database)` yields the same
/// total order on every call and every worker count, so
/// `answers(q, db, 0, n)` followed by `answers(q, db, n, m)` is exactly the
/// prefix-split of `answers(q, db, 0, n + m)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerPage {
    /// The rows of this page, each of length `free_count`, in ascending
    /// lexicographic order.
    pub rows: Vec<Vec<u32>>,
    /// The offset this page was requested at (rows skipped before the
    /// first returned row).
    pub offset: u64,
    /// Whether at least one answer exists beyond this page.
    pub has_more: bool,
    /// Which algorithm produced the page.
    pub method: AnswerMethod,
}
