//! The [`HomSolver`] trait and the priority-ordered solver registry.
//!
//! The Classification Theorem licenses a per-query algorithm choice: the
//! para-L tree-depth evaluation when the (core's) tree depth is bounded, the
//! PATH sweep when the pathwidth is bounded, the TREE dynamic program when
//! the treewidth is bounded, and plain backtracking otherwise.  Instead of a
//! hard-coded `if`/`else` chain, the engine walks a priority-ordered list of
//! [`HomSolver`]s and dispatches to the first whose [`HomSolver::admits`]
//! accepts the prepared query — so ablation experiments (E12) are registry
//! edits ([`SolverRegistry::without`], [`SolverRegistry::new`]) rather than
//! code forks.
//!
//! Every solver consumes the *certificates* carried by the
//! [`PreparedQuery`] (elimination forest, staircase decomposition, tree
//! decomposition) plus the **instance index** of the database
//! ([`StructureIndex`], built once per database and cached by the engine)
//! and runs the flat evaluation kernel of [`cq_solver::kernel`] — compiled
//! bag programs, prefilter domains, separator hash-joins — through the
//! plan's per-index program cache ([`PreparedQuery::decide_via_tree`] and
//! friends), so a warm `(plan, database)` pair recompiles nothing.  The reference
//! implementations (`cq_solver::treedec`, `cq_solver::pathdp`, the raw
//! backtracking searches) are retained as the oracle of the differential
//! tests, not dispatched here.

use crate::engine::{EngineConfig, SolverChoice};
use crate::prepared::PreparedQuery;
use cq_solver::backtrack::BacktrackConfig;
use cq_structures::{Structure, StructureIndex};

/// What one solver invocation produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOutcome {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// A solver-specific work/space figure for the experiment reports:
    /// candidate assignments for the forest evaluation and the backtracking
    /// search, peak frontier size for the path sweep, peak viable-row table
    /// for the tree DP.  `None` when the solver reports nothing.
    pub work: Option<u64>,
}

/// One evaluation algorithm in the registry.
///
/// Implementations must be cheap to consult: `admits` reads the prepared
/// query's cached width profile, and `solve` runs against the prepared
/// certificates and the database's cached [`StructureIndex`] — all
/// exponential-in-the-query work belongs to preparation, and all
/// per-database index building to the engine's instance-index cache, not
/// here.
pub trait HomSolver: Send + Sync {
    /// Short human-readable name (used in reports and bench labels).
    fn name(&self) -> &'static str;

    /// The [`SolverChoice`] tag this solver reports as.
    fn choice(&self) -> SolverChoice;

    /// Whether this solver's structural licence covers the prepared query
    /// under the given thresholds.
    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool;

    /// Evaluate the prepared query against one database through its index.
    fn solve(
        &self,
        query: &PreparedQuery,
        database: &Structure,
        index: &StructureIndex,
    ) -> SolveOutcome;
}

/// Tree-depth evaluation (para-L tier, Lemma 3.3): the kernel sum–product
/// recursion over the prepared elimination-forest certificate with
/// first-witness early exit — `O(td)` images in memory, index-driven
/// candidate domains.  (The Lemma 3.3 sentence compilation and metered
/// model check remain available as [`PreparedQuery::sentence`] +
/// `cq_solver::treedepth::hom_via_compiled_sentence`, the reference the
/// differential oracle compares against.)
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeDepthSolver;

impl HomSolver for TreeDepthSolver {
    fn name(&self) -> &'static str {
        "tree-depth forest evaluation"
    }

    fn choice(&self) -> SolverChoice {
        SolverChoice::TreeDepth
    }

    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool {
        query.widths().treedepth <= config.treedepth_threshold
    }

    fn solve(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
    ) -> SolveOutcome {
        let run = query.decide_via_forest(index);
        SolveOutcome {
            exists: run.exists,
            work: Some(run.assignments),
        }
    }
}

/// Path-decomposition sweep (PATH algorithm, Theorem 4.6) over the prepared
/// query's staircase-normalized optimal path decomposition — the kernel
/// sweep with flat frontier rows and hash-deduplicated forget steps.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathDpSolver;

impl HomSolver for PathDpSolver {
    fn name(&self) -> &'static str {
        "path-decomposition sweep"
    }

    fn choice(&self) -> SolverChoice {
        SolverChoice::PathDecomposition
    }

    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool {
        query.widths().pathwidth <= config.pathwidth_threshold
    }

    fn solve(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
    ) -> SolveOutcome {
        let report = query.decide_via_staircase(index);
        SolveOutcome {
            exists: report.exists,
            work: Some(report.peak_frontier as u64),
        }
    }
}

/// Tree-decomposition dynamic programming (TREE algorithm) over the
/// prepared query's optimal tree decomposition — the kernel DP with
/// per-edge separator hash-joins.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeDecSolver;

impl HomSolver for TreeDecSolver {
    fn name(&self) -> &'static str {
        "tree-decomposition DP"
    }

    fn choice(&self) -> SolverChoice {
        SolverChoice::TreeDecomposition
    }

    fn admits(&self, query: &PreparedQuery, config: &EngineConfig) -> bool {
        query.widths().treewidth <= config.treewidth_threshold
    }

    fn solve(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
    ) -> SolveOutcome {
        let run = query.decide_via_tree(index);
        SolveOutcome {
            exists: run.exists,
            work: Some(run.peak_table as u64),
        }
    }
}

/// The structural-guarantee-free fallback: the whole query compiled as one
/// kernel bag program (index-driven candidate domains, incremental
/// constraint checks) searched for a first witness.  Admits every query,
/// so it terminates every registry walk.
///
/// Of the E12 knobs only `fail_first_ordering` applies — the kernel's
/// unary/incidence prefilter subsumes the unary half of arc consistency
/// and is always on; the raw propagating search of
/// [`cq_solver::backtrack::BacktrackSolver`] remains available for
/// ablation baselines.
#[derive(Debug, Clone, Copy, Default)]
pub struct BacktrackSolver {
    /// Configuration of the underlying search (the E12 ablation knobs).
    pub config: BacktrackConfig,
}

impl HomSolver for BacktrackSolver {
    fn name(&self) -> &'static str {
        "backtracking search"
    }

    fn choice(&self) -> SolverChoice {
        SolverChoice::Backtracking
    }

    fn admits(&self, _query: &PreparedQuery, _config: &EngineConfig) -> bool {
        true
    }

    fn solve(
        &self,
        query: &PreparedQuery,
        _database: &Structure,
        index: &StructureIndex,
    ) -> SolveOutcome {
        let (hom, stats) = query.search(index, self.config.fail_first_ordering);
        SolveOutcome {
            exists: hom.is_some(),
            work: Some(stats.assignments),
        }
    }
}

/// A priority-ordered list of solvers; dispatch picks the first that admits
/// the query.
pub struct SolverRegistry {
    solvers: Vec<Box<dyn HomSolver>>,
}

impl SolverRegistry {
    /// The standard order of Theorem 3.1: tree depth, then pathwidth, then
    /// treewidth, then the backtracking fallback, with the backtracking knobs
    /// taken from `config`.
    pub fn standard(config: &EngineConfig) -> SolverRegistry {
        SolverRegistry {
            solvers: vec![
                Box::new(TreeDepthSolver),
                Box::new(PathDpSolver),
                Box::new(TreeDecSolver),
                Box::new(BacktrackSolver {
                    config: config.backtrack,
                }),
            ],
        }
    }

    /// A registry with an explicit solver list (full control for ablations).
    pub fn new(solvers: Vec<Box<dyn HomSolver>>) -> SolverRegistry {
        SolverRegistry { solvers }
    }

    /// This registry minus every solver reporting the given choice — the E12
    /// ablation edit ("what happens without the path sweep?").
    pub fn without(mut self, choice: SolverChoice) -> SolverRegistry {
        self.solvers.retain(|s| s.choice() != choice);
        self
    }

    /// Append a solver at the lowest priority.
    pub fn push(&mut self, solver: Box<dyn HomSolver>) {
        self.solvers.push(solver);
    }

    /// The first solver admitting the query, in priority order.
    pub fn select(&self, query: &PreparedQuery, config: &EngineConfig) -> Option<&dyn HomSolver> {
        self.solvers
            .iter()
            .map(|s| s.as_ref())
            .find(|s| s.admits(query, config))
    }

    /// The solvers in priority order (names are stable bench labels).
    pub fn solvers(&self) -> impl Iterator<Item = &dyn HomSolver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty (no solver will ever be selected).
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }
}

impl std::fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.solvers.iter().map(|s| s.name()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, star_expansion};

    fn prepared(a: &Structure) -> PreparedQuery {
        PreparedQuery::prepare(a, &EngineConfig::default())
    }

    #[test]
    fn standard_registry_selects_in_priority_order() {
        let cfg = EngineConfig::default();
        let registry = SolverRegistry::standard(&cfg);
        let cases = [
            (families::star(5), SolverChoice::TreeDepth),
            (
                star_expansion(&families::path(9)),
                SolverChoice::PathDecomposition,
            ),
            (families::clique(5), SolverChoice::Backtracking),
        ];
        for (a, expected) in cases {
            let q = prepared(&a);
            let s = registry.select(&q, &cfg).expect("fallback admits");
            assert_eq!(s.choice(), expected, "{a}");
        }
    }

    #[test]
    fn without_removes_a_tier_and_dispatch_falls_through() {
        let cfg = EngineConfig::default();
        let registry = SolverRegistry::standard(&cfg).without(SolverChoice::TreeDepth);
        assert_eq!(registry.len(), 3);
        // A star has tree depth 2; with the tree-depth solver ablated the
        // path sweep (pathwidth 1) picks it up.
        let q = prepared(&families::star(5));
        let s = registry.select(&q, &cfg).expect("fallback admits");
        assert_eq!(s.choice(), SolverChoice::PathDecomposition);
    }

    #[test]
    fn empty_registry_selects_nothing() {
        let cfg = EngineConfig::default();
        let registry = SolverRegistry::new(Vec::new());
        assert!(registry.is_empty());
        let q = prepared(&families::star(3));
        assert!(registry.select(&q, &cfg).is_none());
    }

    #[test]
    fn all_registry_solvers_agree_with_the_reference() {
        let cfg = EngineConfig::default();
        let registry = SolverRegistry::standard(&cfg);
        // A query every solver admits: a star (td 2, pw 1, tw 1).
        let a = families::star(3);
        let q = prepared(&a);
        for b in [families::clique(3), families::cycle(6), families::path(4)] {
            let expected = cq_structures::homomorphism_exists(&a, &b);
            let index = StructureIndex::new(&b);
            for s in registry.solvers() {
                assert_eq!(
                    s.solve(&q, &b, &index).exists,
                    expected,
                    "{} on {a} -> {b}",
                    s.name()
                );
            }
        }
    }
}
