//! The solver dispatch engine: run, for a single `p-HOM` instance, the
//! algorithm that the classification licenses for its query — with ablation
//! knobs (experiment E12).

use crate::Degree;
use cq_decomp::{pathwidth::pathwidth_exact, treedepth::treedepth_exact, treewidth::treewidth_exact};
use cq_graphs::gaifman_graph;
use cq_solver::backtrack::{BacktrackConfig, BacktrackSolver};
use cq_solver::pathdp::hom_via_path_decomposition;
use cq_solver::treedec::hom_via_tree_decomposition;
use cq_solver::treedepth::hom_via_treedepth;
use cq_structures::{core_of, Structure};

/// Which algorithm the engine picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// Tree-depth sentence evaluation (para-L algorithm, Lemma 3.3).
    TreeDepth,
    /// Path-decomposition sweep (PATH algorithm, Theorem 4.6).
    PathDecomposition,
    /// Tree-decomposition dynamic programming (TREE algorithm).
    TreeDecomposition,
    /// Plain backtracking with propagation (no structural guarantee).
    Backtracking,
}

/// Engine configuration (the ablation knobs of experiment E12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Evaluate the *core* of the query instead of the query itself
    /// (Theorem 3.1 classifies by cores; decision answers are unchanged, and
    /// the widths of the core are never larger).
    pub use_core: bool,
    /// Tree-depth threshold below which the para-L algorithm is used.
    pub treedepth_threshold: usize,
    /// Pathwidth threshold below which the path sweep is used.
    pub pathwidth_threshold: usize,
    /// Treewidth threshold below which the tree DP is used.
    pub treewidth_threshold: usize,
    /// Configuration of the backtracking fallback.
    pub backtrack: BacktrackConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            use_core: true,
            treedepth_threshold: 3,
            pathwidth_threshold: 2,
            treewidth_threshold: 3,
            backtrack: BacktrackConfig::default(),
        }
    }
}

/// What the engine did and found.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The algorithm chosen.
    pub choice: SolverChoice,
    /// The degree the *single* query would contribute to a class
    /// classification (based on its own core widths and the thresholds).
    pub degree_hint: Degree,
    /// Width profile (treewidth, pathwidth, tree depth) of the evaluated
    /// query (the core when `use_core` is set).
    pub widths: cq_decomp::WidthProfile,
    /// Universe size of the evaluated query.
    pub evaluated_query_size: usize,
}

/// Solve a single `p-HOM` instance with the algorithm its structure
/// licenses.
pub fn solve_instance(a: &Structure, b: &Structure, config: EngineConfig) -> EngineReport {
    let evaluated = if config.use_core {
        core_of(a).core
    } else {
        a.clone()
    };
    let g = gaifman_graph(&evaluated);
    let widths = cq_decomp::width_profile(&g);

    let degree_hint = Degree::from_boundedness(
        widths.treewidth <= config.treewidth_threshold,
        widths.pathwidth <= config.pathwidth_threshold,
        widths.treedepth <= config.treedepth_threshold,
    );

    let (exists, choice) = if widths.treedepth <= config.treedepth_threshold {
        (hom_via_treedepth(&evaluated, b).exists, SolverChoice::TreeDepth)
    } else if widths.pathwidth <= config.pathwidth_threshold {
        let (_, pd) = pathwidth_exact(&g);
        (
            hom_via_path_decomposition(&evaluated, b, &pd).exists,
            SolverChoice::PathDecomposition,
        )
    } else if widths.treewidth <= config.treewidth_threshold {
        let (_, td) = treewidth_exact(&g);
        (
            hom_via_tree_decomposition(&evaluated, b, &td),
            SolverChoice::TreeDecomposition,
        )
    } else {
        (
            BacktrackSolver::with_config(config.backtrack).exists(&evaluated, b),
            SolverChoice::Backtracking,
        )
    };
    // Consistency invariant exercised in debug builds: the tree-depth bound
    // certificate exists whenever we claim it.
    debug_assert!(widths.treedepth >= treedepth_exact(&g).0);

    EngineReport {
        exists,
        choice,
        degree_hint,
        widths,
        evaluated_query_size: evaluated.universe_size(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, homomorphism_exists, star_expansion};

    #[test]
    fn engine_answers_match_reference_across_choices() {
        let queries = [
            families::star(4),                               // tree depth 2
            star_expansion(&families::path(6)),              // pathwidth 1, depth grows
            star_expansion(&families::tree_t(2)),            // treewidth 1, pathwidth grows
            families::clique(4),                             // nothing bounded
        ];
        let targets = [
            families::clique(4),
            families::cycle(6),
            families::grid(3, 3),
        ];
        for a in &queries {
            for b in &targets {
                // Skip vocabulary mismatches (coloured queries vs plain graphs):
                // those instances are trivially unsatisfiable but uninteresting.
                let report = solve_instance(a, b, EngineConfig::default());
                assert_eq!(report.exists, homomorphism_exists(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn engine_picks_the_licensed_algorithm() {
        let cfg = EngineConfig::default();
        let r1 = solve_instance(&families::star(5), &families::clique(3), cfg);
        assert_eq!(r1.choice, SolverChoice::TreeDepth);
        assert_eq!(r1.degree_hint, Degree::ParaL);

        let long_colored_path = star_expansion(&families::path(9));
        let target = cq_structures::ops::colored_target(9, &families::path(12), |e| vec![e, e + 1]);
        let r2 = solve_instance(&long_colored_path, &target, cfg);
        assert_eq!(r2.choice, SolverChoice::PathDecomposition);

        let colored_tree = star_expansion(&families::tree_t(3));
        let tree_target = cq_structures::ops::colored_target(
            15,
            &families::clique(3),
            |_| (0..3).collect(),
        );
        // T*_3 has pathwidth 2: lower the pathwidth threshold so the tree DP
        // is the licensed algorithm.
        let tree_cfg = EngineConfig {
            pathwidth_threshold: 1,
            ..cfg
        };
        let r3 = solve_instance(&colored_tree, &tree_target, tree_cfg);
        assert_eq!(r3.choice, SolverChoice::TreeDecomposition);
        assert!(r3.exists);

        let r4 = solve_instance(&families::clique(5), &families::clique(6), cfg);
        assert_eq!(r4.choice, SolverChoice::Backtracking);
        assert_eq!(r4.degree_hint, Degree::W1Hard);
        assert!(r4.exists);
    }

    #[test]
    fn core_ablation_shrinks_the_evaluated_query() {
        let c8 = families::cycle(8);
        let with_core = solve_instance(&c8, &families::path(2), EngineConfig::default());
        let without_core = solve_instance(
            &c8,
            &families::path(2),
            EngineConfig {
                use_core: false,
                ..EngineConfig::default()
            },
        );
        assert_eq!(with_core.exists, without_core.exists);
        assert!(with_core.evaluated_query_size < without_core.evaluated_query_size);
        assert!(with_core.widths.treedepth <= without_core.widths.treedepth);
    }
}
