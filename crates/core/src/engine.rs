//! Engine configuration, per-instance reports, and the single-instance
//! compatibility entry point.
//!
//! The dispatch machinery itself lives in the sibling modules:
//! [`crate::prepared`] (the once-per-query [`crate::PreparedQuery`]
//! artifact), [`crate::registry`] (the [`crate::HomSolver`] trait and the
//! priority-ordered solver registry) and [`crate::service`] (the
//! plan-caching [`crate::Engine`] with the batch API).  [`solve_instance`]
//! is the historical one-shot API, now a thin wrapper that builds a
//! throwaway [`crate::Engine`] — callers with repeated queries should hold
//! an [`crate::Engine`] and use [`crate::Engine::solve`] /
//! [`crate::Engine::solve_batch`] so plans are reused.

use crate::service::Engine;
use crate::Degree;
use cq_solver::backtrack::BacktrackConfig;
use cq_structures::Structure;

/// Which algorithm the engine picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// Tree-depth sentence evaluation (para-L algorithm, Lemma 3.3).
    TreeDepth,
    /// Path-decomposition sweep (PATH algorithm, Theorem 4.6).
    PathDecomposition,
    /// Tree-decomposition dynamic programming (TREE algorithm).
    TreeDecomposition,
    /// Plain backtracking with propagation (no structural guarantee).
    Backtracking,
}

/// Engine configuration (the ablation knobs of experiment E12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Evaluate the *core* of the query instead of the query itself
    /// (Theorem 3.1 classifies by cores; decision answers are unchanged, and
    /// the widths of the core are never larger).
    pub use_core: bool,
    /// Tree-depth threshold below which the para-L algorithm is used.
    pub treedepth_threshold: usize,
    /// Pathwidth threshold below which the path sweep is used.
    pub pathwidth_threshold: usize,
    /// Treewidth threshold below which the tree DP is used.
    pub treewidth_threshold: usize,
    /// Worker threads for the batch APIs ([`crate::Engine::solve_batch`] /
    /// [`crate::Engine::solve_batch_instances`]).  `0` (the default) means
    /// "use the machine's available parallelism"; `1` forces the sequential
    /// path.  Results are returned in input order and are identical for
    /// every worker count.
    pub workers: usize,
    /// Configuration of the backtracking fallback.
    ///
    /// The engine's fallback is the flat-kernel whole-query search, whose
    /// unary/incidence prefilter is always on and subsumes the unary half
    /// of arc consistency — so of these knobs only `fail_first_ordering`
    /// changes engine behaviour.  The AC knobs
    /// (`preprocess_arc_consistency`, `maintain_arc_consistency`) still
    /// drive the retained reference search
    /// ([`cq_solver::backtrack::BacktrackSolver`]), which the E12 ablation
    /// bench exercises directly.
    pub backtrack: BacktrackConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            use_core: true,
            treedepth_threshold: 3,
            pathwidth_threshold: 2,
            treewidth_threshold: 3,
            workers: 0,
            backtrack: BacktrackConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Whether plans prepared under `self` are reusable under `other`: true
    /// when every **plan-shaping** knob matches — core preprocessing (it
    /// decides what structure the certificates describe) and the three
    /// width thresholds (they decide the stored degree hint).  Runtime-only
    /// knobs (`workers`, the backtracking ablation flags) do not enter: a
    /// plan is the same plan no matter how many threads later evaluate it.
    ///
    /// [`crate::Engine::load_plans`] consults this before adopting a
    /// store's records; a mismatch rejects them as stale.
    pub fn plan_compatible(&self, other: &EngineConfig) -> bool {
        self.use_core == other.use_core
            && self.treedepth_threshold == other.treedepth_threshold
            && self.pathwidth_threshold == other.pathwidth_threshold
            && self.treewidth_threshold == other.treewidth_threshold
    }
}

/// What the engine did and found.
///
/// `PartialEq`/`Eq` so batch results can be compared wholesale — the
/// parallel-determinism tests assert that `solve_batch` under any worker
/// count returns a sequence identical to the sequential path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Whether a homomorphism exists.
    pub exists: bool,
    /// The algorithm chosen.
    pub choice: SolverChoice,
    /// The degree the *single* query would contribute to a class
    /// classification (based on its own core widths and the thresholds).
    pub degree_hint: Degree,
    /// Width profile (treewidth, pathwidth, tree depth) of the evaluated
    /// query (the core when `use_core` is set).
    pub widths: cq_decomp::WidthProfile,
    /// Universe size of the evaluated query.
    pub evaluated_query_size: usize,
}

/// Solve a single `p-HOM` instance with the algorithm its structure
/// licenses.
///
/// Compatibility wrapper over the prepared-query engine: builds a throwaway
/// [`Engine`], prepares `a` once and solves.  Repeated-query callers should
/// hold an [`Engine`] instead — its plan cache amortizes the preparation
/// (core + width DPs + decompositions) across calls, which this wrapper by
/// construction cannot.
pub fn solve_instance(a: &Structure, b: &Structure, config: EngineConfig) -> EngineReport {
    Engine::new(config).solve(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, homomorphism_exists, star_expansion};

    #[test]
    fn engine_answers_match_reference_across_choices() {
        let queries = [
            families::star(4),                    // tree depth 2
            star_expansion(&families::path(6)),   // pathwidth 1, depth grows
            star_expansion(&families::tree_t(2)), // treewidth 1, pathwidth grows
            families::clique(4),                  // nothing bounded
        ];
        let targets = [
            families::clique(4),
            families::cycle(6),
            families::grid(3, 3),
        ];
        for a in &queries {
            for b in &targets {
                // Skip vocabulary mismatches (coloured queries vs plain graphs):
                // those instances are trivially unsatisfiable but uninteresting.
                let report = solve_instance(a, b, EngineConfig::default());
                assert_eq!(report.exists, homomorphism_exists(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn engine_picks_the_licensed_algorithm() {
        let cfg = EngineConfig::default();
        let r1 = solve_instance(&families::star(5), &families::clique(3), cfg);
        assert_eq!(r1.choice, SolverChoice::TreeDepth);
        assert_eq!(r1.degree_hint, Degree::ParaL);

        let long_colored_path = star_expansion(&families::path(9));
        let target = cq_structures::ops::colored_target(9, &families::path(12), |e| vec![e, e + 1]);
        let r2 = solve_instance(&long_colored_path, &target, cfg);
        assert_eq!(r2.choice, SolverChoice::PathDecomposition);

        let colored_tree = star_expansion(&families::tree_t(3));
        let tree_target =
            cq_structures::ops::colored_target(15, &families::clique(3), |_| (0..3).collect());
        // T*_3 has pathwidth 2: lower the pathwidth threshold so the tree DP
        // is the licensed algorithm.
        let tree_cfg = EngineConfig {
            pathwidth_threshold: 1,
            ..cfg
        };
        let r3 = solve_instance(&colored_tree, &tree_target, tree_cfg);
        assert_eq!(r3.choice, SolverChoice::TreeDecomposition);
        assert!(r3.exists);

        let r4 = solve_instance(&families::clique(5), &families::clique(6), cfg);
        assert_eq!(r4.choice, SolverChoice::Backtracking);
        assert_eq!(r4.degree_hint, Degree::W1Hard);
        assert!(r4.exists);
    }

    #[test]
    fn core_ablation_shrinks_the_evaluated_query() {
        let c8 = families::cycle(8);
        let with_core = solve_instance(&c8, &families::path(2), EngineConfig::default());
        let without_core = solve_instance(
            &c8,
            &families::path(2),
            EngineConfig {
                use_core: false,
                ..EngineConfig::default()
            },
        );
        assert_eq!(with_core.exists, without_core.exists);
        assert!(with_core.evaluated_query_size < without_core.evaluated_query_size);
        assert!(with_core.widths.treedepth <= without_core.widths.treedepth);
    }
}
