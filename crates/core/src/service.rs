//! The traffic-facing [`Engine`]: an LRU plan cache over prepared queries,
//! registered query handles, and the batch evaluation API.
//!
//! This is the "preprocess the query once, answer against many databases"
//! layer: [`Engine::prepare`] returns an [`Arc<PreparedQuery>`] — served
//! from the cache when an equivalent query was prepared before —
//! [`Engine::solve`] evaluates one instance through it, and
//! [`Engine::solve_batch`] evaluates a whole workload, preparing each
//! distinct query exactly once.
//!
//! Cache correctness: entries are keyed by the isomorphism-invariant
//! [fingerprint](cq_logic::canonical::query_fingerprint) of the submitted
//! query and **confirmed** by a homomorphic-equivalence check
//! ([`PreparedQuery::answers_for`]) before reuse — homomorphic equivalence
//! is precisely the equivalence preserving `p-HOM` answers, so a fingerprint
//! collision degrades to a cache miss, never to a wrong answer.

use crate::engine::{EngineConfig, EngineReport};
use crate::prepared::PreparedQuery;
use crate::registry::SolverRegistry;
use cq_logic::canonical::query_fingerprint;
use cq_structures::Structure;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Source of per-process unique engine identities (for [`QueryId`]
/// affinity checks).
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);

/// Default number of cached plans ([`Engine::with_cache_capacity`] overrides).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Handle to a query registered with an [`Engine`] (see
/// [`Engine::register`]); the batch API refers to queries through it.
///
/// Handles carry the identity of the engine that issued them: using a
/// handle with a different engine panics with a clear message instead of
/// silently resolving to that engine's unrelated plan at the same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId {
    engine: u64,
    index: usize,
}

/// Counters describing the plan cache's behaviour so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to prepare a fresh plan.
    pub misses: u64,
    /// Plans evicted by the LRU policy.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

struct CacheSlot {
    fingerprint: u64,
    plan: Arc<PreparedQuery>,
    last_used: u64,
    /// Non-identical submitted forms (e.g. relabellings) already verified
    /// homomorphically equivalent to the plan's original — so repeat
    /// lookups of the same form cost a structural equality check instead of
    /// two exponential homomorphism searches per solve.
    verified_aliases: Vec<Structure>,
}

/// Cap on memoized relabelled forms per cached plan (a client cycling more
/// distinct orderings than this re-verifies the overflow ones).
const MAX_VERIFIED_ALIASES: usize = 16;

impl CacheSlot {
    fn matches(&mut self, candidate: &Structure) -> bool {
        if *candidate == *self.plan.original() || self.verified_aliases.contains(candidate) {
            return true;
        }
        if self.plan.answers_for(candidate) {
            if self.verified_aliases.len() < MAX_VERIFIED_ALIASES {
                self.verified_aliases.push(candidate.clone());
            }
            return true;
        }
        false
    }
}

struct PlanCache {
    capacity: usize,
    tick: u64,
    slots: Vec<CacheSlot>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    fn lookup(&mut self, fingerprint: u64, candidate: &Structure) -> Option<Arc<PreparedQuery>> {
        self.tick += 1;
        let now = self.tick;
        for slot in &mut self.slots {
            if slot.fingerprint == fingerprint && slot.matches(candidate) {
                slot.last_used = now;
                self.hits += 1;
                return Some(Arc::clone(&slot.plan));
            }
        }
        self.misses += 1;
        None
    }

    fn insert(&mut self, plan: Arc<PreparedQuery>) {
        if self.capacity == 0 {
            return;
        }
        self.evict_down_to(self.capacity.saturating_sub(1));
        self.tick += 1;
        self.slots.push(CacheSlot {
            fingerprint: plan.fingerprint(),
            plan,
            last_used: self.tick,
            verified_aliases: Vec::new(),
        });
    }

    /// Evict least-recently-used slots until at most `target` remain.
    fn evict_down_to(&mut self, target: usize) {
        while self.slots.len() > target {
            let pos = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.slots.swap_remove(pos);
            self.evictions += 1;
        }
    }
}

/// The prepared-query evaluation engine: solver registry + plan cache +
/// batch API.  Cheap to share across threads (`&Engine` is `Send + Sync`;
/// all interior state is mutex-guarded).
pub struct Engine {
    id: u64,
    config: EngineConfig,
    registry: SolverRegistry,
    cache: Mutex<PlanCache>,
    registered: Mutex<Vec<Arc<PreparedQuery>>>,
}

impl Engine {
    /// An engine with the standard solver registry and default cache
    /// capacity.
    pub fn new(config: EngineConfig) -> Engine {
        Engine::with_registry(config, SolverRegistry::standard(&config))
    }

    /// An engine with an explicit solver registry (ablations, experiments).
    pub fn with_registry(config: EngineConfig, registry: SolverRegistry) -> Engine {
        Engine {
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            config,
            registry,
            cache: Mutex::new(PlanCache {
                capacity: DEFAULT_PLAN_CACHE_CAPACITY,
                tick: 0,
                slots: Vec::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            registered: Mutex::new(Vec::new()),
        }
    }

    /// Override the plan cache capacity (0 disables caching).  Shrinking
    /// below the current population evicts least-recently-used plans
    /// immediately, so the new capacity holds from this call on.
    pub fn with_cache_capacity(self, capacity: usize) -> Engine {
        {
            let mut cache = self.cache.lock().expect("cache lock");
            cache.capacity = capacity;
            cache.evict_down_to(capacity);
        }
        self
    }

    /// The configuration this engine prepares and solves under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The solver registry used for dispatch.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// Prepare a query — or fetch the cached plan of an equivalent query
    /// prepared earlier.  This is the only place per-query exponential work
    /// (core, width DPs, decompositions) happens.
    pub fn prepare(&self, query: &Structure) -> Arc<PreparedQuery> {
        let fingerprint = query_fingerprint(query);
        if let Some(plan) = self
            .cache
            .lock()
            .expect("cache lock")
            .lookup(fingerprint, query)
        {
            return plan;
        }
        // Prepare outside the lock: preparation is the expensive part, and
        // concurrent preparers of different queries should not serialize.
        // (Two threads racing on the *same* query both prepare; the loser's
        // plan is a duplicate cache entry that LRU eventually drops —
        // correctness is unaffected.)
        let plan = Arc::new(PreparedQuery::prepare_with_fingerprint(
            query,
            &self.config,
            fingerprint,
        ));
        self.cache
            .lock()
            .expect("cache lock")
            .insert(Arc::clone(&plan));
        plan
    }

    /// Register a query for batch evaluation, returning its handle.  Goes
    /// through the plan cache, so registering the same (or an equivalent)
    /// query twice prepares it once.
    pub fn register(&self, query: &Structure) -> QueryId {
        let plan = self.prepare(query);
        let mut registered = self.registered.lock().expect("registry lock");
        registered.push(plan);
        QueryId {
            engine: self.id,
            index: registered.len() - 1,
        }
    }

    /// The prepared plan behind a registered handle.
    ///
    /// Panics when the handle was issued by a different engine.
    pub fn prepared(&self, id: QueryId) -> Arc<PreparedQuery> {
        assert_eq!(
            id.engine, self.id,
            "QueryId was issued by a different Engine (handles are not transferable)"
        );
        Arc::clone(&self.registered.lock().expect("registry lock")[id.index])
    }

    /// Evaluate one instance end to end (prepare through the cache, then
    /// solve).
    pub fn solve(&self, query: &Structure, database: &Structure) -> EngineReport {
        let plan = self.prepare(query);
        self.solve_prepared(&plan, database)
    }

    /// Evaluate a prepared query against one database: select the first
    /// admitting solver in registry priority order and run it on the plan's
    /// certificates.  No per-query exponential work happens here.
    pub fn solve_prepared(&self, plan: &PreparedQuery, database: &Structure) -> EngineReport {
        let solver = self
            .registry
            .select(plan, &self.config)
            .expect("solver registry has no solver admitting this query (ablated registries must keep a fallback)");
        let outcome = solver.solve(plan, database);
        EngineReport {
            exists: outcome.exists,
            choice: solver.choice(),
            degree_hint: plan.degree_hint(),
            widths: plan.widths(),
            evaluated_query_size: plan.evaluated_size(),
        }
    }

    /// Evaluate a batch of (registered query, database) instances.  Each
    /// distinct query was prepared exactly once (at
    /// [`register`](Self::register) time); the batch loop performs only
    /// per-database solver work.
    pub fn solve_batch(&self, batch: &[(QueryId, &Structure)]) -> Vec<EngineReport> {
        batch
            .iter()
            .map(|&(id, database)| self.solve_prepared(&self.prepared(id), database))
            .collect()
    }

    /// Evaluate a batch of raw (query, database) instances: every distinct
    /// query is prepared once through the plan cache, every instance is
    /// evaluated against its cached plan.
    pub fn solve_batch_instances(&self, batch: &[(&Structure, &Structure)]) -> Vec<EngineReport> {
        batch
            .iter()
            .map(|&(query, database)| self.solve(query, database))
            .collect()
    }

    /// Plan cache behaviour so far.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().expect("cache lock");
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            entries: cache.slots.len(),
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("registry", &self.registry)
            .field("cache", &self.cache_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SolverChoice;
    use cq_structures::{families, homomorphism_exists, relabeled};

    #[test]
    fn solve_matches_reference_and_reuses_plans() {
        let engine = Engine::new(EngineConfig::default());
        let queries = [families::star(4), families::cycle(5), families::clique(4)];
        let targets = [families::clique(4), families::grid(3, 3)];
        for _round in 0..2 {
            for a in &queries {
                for b in &targets {
                    let report = engine.solve(a, b);
                    assert_eq!(report.exists, homomorphism_exists(a, b), "{a} -> {b}");
                }
            }
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 3, "one preparation per distinct query");
        assert_eq!(stats.hits as usize, 2 * 3 * 2 - 3);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn register_and_solve_batch() {
        let engine = Engine::new(EngineConfig::default());
        let star = families::star(4);
        let cycle = families::cycle(5);
        let star_id = engine.register(&star);
        let cycle_id = engine.register(&cycle);
        let targets: Vec<Structure> = (3..7).map(families::clique).collect();
        let batch: Vec<(QueryId, &Structure)> = targets
            .iter()
            .flat_map(|t| [(star_id, t), (cycle_id, t)])
            .collect();
        let reports = engine.solve_batch(&batch);
        assert_eq!(reports.len(), batch.len());
        for ((id, t), report) in batch.iter().zip(&reports) {
            let q = if *id == star_id { &star } else { &cycle };
            assert_eq!(report.exists, homomorphism_exists(q, t), "{q} -> {t}");
        }
    }

    #[test]
    fn registering_an_equivalent_query_hits_the_cache() {
        let engine = Engine::new(EngineConfig::default());
        let c7 = families::cycle(7);
        let perm: Vec<usize> = (0..7).rev().collect();
        let id1 = engine.register(&c7);
        let id2 = engine.register(&relabeled(&c7, &perm));
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 1);
        // Both handles resolve to the same plan.
        assert!(Arc::ptr_eq(&engine.prepared(id1), &engine.prepared(id2)));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_plan() {
        let engine = Engine::new(EngineConfig::default()).with_cache_capacity(2);
        let a = families::star(3);
        let b = families::star(4);
        let c = families::star(5);
        let t = families::clique(3);
        engine.solve(&a, &t); // miss -> {a}
        engine.solve(&b, &t); // miss -> {a, b}
        engine.solve(&a, &t); // hit, a most recent
        engine.solve(&c, &t); // miss, evicts b
        engine.solve(&a, &t); // hit
        engine.solve(&b, &t); // miss again (was evicted)
        let stats = engine.cache_stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = Engine::new(EngineConfig::default()).with_cache_capacity(0);
        let a = families::star(3);
        let t = families::clique(3);
        engine.solve(&a, &t);
        engine.solve(&a, &t);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately_and_zero_disables() {
        let engine = Engine::new(EngineConfig::default());
        let t = families::clique(3);
        for legs in 3..8 {
            engine.solve(&families::star(legs), &t);
        }
        assert_eq!(engine.cache_stats().entries, 5);
        // Shrink below the population: trims to the new capacity at once.
        let engine = engine.with_cache_capacity(2);
        assert_eq!(engine.cache_stats().entries, 2);
        assert_eq!(engine.cache_stats().evictions, 3);
        // Shrink to zero after use: caching is actually off.
        let engine = engine.with_cache_capacity(0);
        assert_eq!(engine.cache_stats().entries, 0);
        let before = engine.cache_stats();
        engine.solve(&families::star(3), &t);
        engine.solve(&families::star(3), &t);
        let after = engine.cache_stats();
        assert_eq!(after.hits, before.hits, "no hits once disabled");
        assert_eq!(after.entries, 0);
    }

    #[test]
    fn relabelled_lookups_are_verified_once_then_memoized() {
        let engine = Engine::new(EngineConfig::default());
        let c7 = families::cycle(7);
        let perm: Vec<usize> = (0..7).rev().collect();
        let twisted = relabeled(&c7, &perm);
        engine.prepare(&c7);
        // Repeated lookups of the same relabelled form all hit; the
        // hom-equivalence verification runs only on the first (observable
        // here as: answers stay correct and every lookup is a hit).
        for _ in 0..3 {
            let plan = engine.prepare(&twisted);
            assert!(std::sync::Arc::ptr_eq(&plan, &engine.prepare(&c7)));
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 6);
    }

    #[test]
    #[should_panic(expected = "issued by a different Engine")]
    fn query_ids_are_not_transferable_between_engines() {
        let engine_a = Engine::new(EngineConfig::default());
        let engine_b = Engine::new(EngineConfig::default());
        // Give engine_b a registration at index 0 so a silent index-based
        // resolution would *succeed* (with the wrong plan) if unguarded.
        let _ = engine_b.register(&families::clique(4));
        let id_a = engine_a.register(&families::star(3));
        let _ = engine_b.prepared(id_a);
    }

    #[test]
    fn ablated_registry_changes_dispatch_not_answers() {
        let cfg = EngineConfig::default();
        let full = Engine::new(cfg);
        let ablated = Engine::with_registry(
            cfg,
            SolverRegistry::standard(&cfg).without(SolverChoice::TreeDepth),
        );
        let a = families::star(5);
        for b in [families::clique(3), families::cycle(6)] {
            let r_full = full.solve(&a, &b);
            let r_ablated = ablated.solve(&a, &b);
            assert_eq!(r_full.choice, SolverChoice::TreeDepth);
            assert_eq!(r_ablated.choice, SolverChoice::PathDecomposition);
            assert_eq!(r_full.exists, r_ablated.exists);
        }
    }
}
