//! The traffic-facing [`Engine`]: a sharded LRU plan cache over prepared
//! queries, registered query handles, and the (parallel) batch evaluation
//! API.
//!
//! This is the "preprocess the query once, answer against many databases"
//! layer: [`Engine::prepare`] returns an [`Arc<PreparedQuery>`] — served
//! from the cache when an equivalent query was prepared before —
//! [`Engine::solve`] evaluates one instance through it, and
//! [`Engine::solve_batch`] / [`Engine::solve_batch_instances`] evaluate a
//! whole workload across a scoped thread pool
//! ([`EngineConfig::workers`]), preparing each distinct query exactly once.
//!
//! Cache correctness: entries are keyed by the isomorphism-invariant
//! [fingerprint](cq_logic::canonical::query_fingerprint) of the submitted
//! query and **confirmed** by a homomorphic-equivalence check
//! ([`PreparedQuery::answers_for`]) before reuse — homomorphic equivalence
//! is precisely the equivalence preserving `p-HOM` answers, so a fingerprint
//! collision degrades to a cache miss, never to a wrong answer.
//!
//! Concurrency architecture:
//!
//! * the cache is **sharded** N ways by fingerprint hash
//!   ([`Engine::with_cache_shards`], default [`DEFAULT_CACHE_SHARDS`]), each
//!   shard an independently locked LRU, so concurrent lookups of different
//!   queries do not contend on one mutex;
//! * preparation is **single-flight** per fingerprint: concurrent misses on
//!   the same query serialize on a per-fingerprint latch, the loser re-reads
//!   the winner's cached plan, and each distinct fingerprint is prepared
//!   exactly once (the concurrency stress tests assert this through
//!   [`Engine::prep_stats`]);
//! * the batch APIs fan instances out over `std::thread::scope` workers and
//!   reassemble results **in input order** — reports are bit-identical to
//!   the sequential path for every worker count;
//! * the per-query exponential work performed by worker threads is
//!   aggregated into per-engine counters ([`PrepStats`]) — the thread-local
//!   counters of [`cq_decomp::stats`] / [`cq_structures`] only see the
//!   calling thread and would silently undercount under parallelism.

use crate::aggregates::{AggregateObjective, AggregateRegistry, AggregateReport};
use crate::answers::{AnswerCountReport, AnswerMethod, AnswerPage};
use crate::counting::{CountOutcome, CountRegistry, CountReport};
use crate::engine::{EngineConfig, EngineReport};
use crate::persist::{PersistError, PlanStore, WarmStartSummary};
use crate::prepared::PreparedQuery;
use crate::registry::SolverRegistry;
use crate::Degree;
use cq_decomp::WidthProfile;
use cq_logic::canonical::query_fingerprint;
use cq_structures::{
    answers_bruteforce, structure_hash, AppliedDelta, ConjunctiveQuery, DeltaBatch, Structure,
    StructureError, StructureIndex, TupleWeights,
};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Source of per-process unique engine identities (for [`QueryId`]
/// affinity checks).
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);

/// Default number of cached plans across all shards
/// ([`Engine::with_cache_capacity`] overrides).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Default number of cache shards ([`Engine::with_cache_shards`] overrides).
/// Sharding trades exact global LRU order for an N-fold cut in lock
/// contention; per-shard LRU order is preserved.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Default total capacity of the instance-index cache
/// ([`Engine::with_index_cache_capacity`] overrides) — the number of
/// database [`StructureIndex`]es kept hot across decide/count traffic.
pub const DEFAULT_INDEX_CACHE_CAPACITY: usize = 64;

/// Handle to a query registered with an [`Engine`] (see
/// [`Engine::register`]); the batch API refers to queries through it.
///
/// Handles carry the identity of the engine that issued them: using a
/// handle with a different engine panics with a clear message instead of
/// silently resolving to that engine's unrelated plan at the same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId {
    engine: u64,
    index: usize,
}

/// Counters describing the plan cache's behaviour so far, aggregated across
/// all shards.  Invariant (asserted by the concurrency stress tests):
/// `hits + misses == lookups`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cache consultations ([`Engine::prepare`] calls).
    pub lookups: u64,
    /// Lookups answered from the cache (including lookups that waited for a
    /// concurrent preparation of the same query to finish).
    pub hits: u64,
    /// Lookups that had to prepare a fresh plan.
    pub misses: u64,
    /// Plans evicted by the per-shard LRU policy.
    pub evictions: u64,
    /// Plans currently cached (summed over shards).
    pub entries: usize,
}

/// Aggregated counters of the per-query exponential work this engine has
/// performed, summed across **all** threads that ever prepared through it.
///
/// The underlying instrumentation ([`cq_decomp::stats`],
/// [`cq_structures::core_computation_count`]) is thread-local; the engine
/// measures each preparation's delta on the thread that ran it and folds it
/// in here, so the one-preparation-per-query invariants remain assertable
/// when the batch APIs fan out to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrepStats {
    /// Plans prepared (equals the number of cache misses that ran to
    /// completion).
    pub preparations: u64,
    /// Exact treewidth DPs run on behalf of this engine.
    pub treewidth_calls: u64,
    /// Exact pathwidth DPs run on behalf of this engine.
    pub pathwidth_calls: u64,
    /// Exact tree-depth DPs run on behalf of this engine.
    pub treedepth_calls: u64,
    /// Core computations run on behalf of this engine.
    pub core_computations: u64,
    /// Plans whose **counting certificates** (the structural analysis of
    /// the original, non-cored query — see
    /// [`PreparedQuery::counting_analysis`]) were materialized by this
    /// engine.  At most one per plan, and zero for plans whose original is
    /// its own core (the decision certificates are reused); the width DPs
    /// such a materialization runs are folded into the `*_calls` counters
    /// above, so `treewidth_calls == preparations + counting_preparations`
    /// holds when nothing else runs DPs on the engine's behalf.
    pub counting_preparations: u64,
    /// Plans adopted into the cache from a plan store
    /// ([`Engine::load_plans`]) after decoding **and** verification.  A
    /// warm-started workload shows `plans_loaded > 0` with `preparations`,
    /// width DPs and core computations all unchanged — the invariant the
    /// CI round-trip gate asserts.
    pub plans_loaded: u64,
    /// Plan-store records this engine refused: corrupt frames, payloads
    /// failing [`PreparedQuery::verify`], records prepared under an
    /// incompatible configuration, or duplicates of already-cached plans.
    /// Each rejected record degrades to a cold prepare on first traffic,
    /// never to a wrong answer.
    pub plans_rejected: u64,
    /// Plans written out by [`Engine::save_plans`].
    pub plans_saved: u64,
    /// Plans evicted by the LRU and persisted into the configured eviction
    /// store ([`Engine::with_eviction_store`]) instead of being lost.
    /// Zero when no eviction store is configured.
    pub plans_evicted_persisted: u64,
}

impl PrepStats {
    /// Total exact width DPs run (treewidth + pathwidth + tree depth).
    pub fn total_width_calls(&self) -> u64 {
        self.treewidth_calls + self.pathwidth_calls + self.treedepth_calls
    }
}

/// The engine-internal atomic accumulators behind [`PrepStats`].
#[derive(Default)]
struct PrepCounters {
    preparations: AtomicU64,
    treewidth_calls: AtomicU64,
    pathwidth_calls: AtomicU64,
    treedepth_calls: AtomicU64,
    core_computations: AtomicU64,
    counting_preparations: AtomicU64,
    plans_loaded: AtomicU64,
    plans_rejected: AtomicU64,
    plans_saved: AtomicU64,
    plans_evicted_persisted: AtomicU64,
}

impl PrepCounters {
    fn snapshot(&self) -> PrepStats {
        PrepStats {
            preparations: self.preparations.load(Ordering::Relaxed),
            treewidth_calls: self.treewidth_calls.load(Ordering::Relaxed),
            pathwidth_calls: self.pathwidth_calls.load(Ordering::Relaxed),
            treedepth_calls: self.treedepth_calls.load(Ordering::Relaxed),
            core_computations: self.core_computations.load(Ordering::Relaxed),
            counting_preparations: self.counting_preparations.load(Ordering::Relaxed),
            plans_loaded: self.plans_loaded.load(Ordering::Relaxed),
            plans_rejected: self.plans_rejected.load(Ordering::Relaxed),
            plans_saved: self.plans_saved.load(Ordering::Relaxed),
            plans_evicted_persisted: self.plans_evicted_persisted.load(Ordering::Relaxed),
        }
    }

    /// Fold a measured thread-local width-DP delta into the aggregated
    /// counters (the delta is exact: it was measured on the thread that ran
    /// the work, around that work alone).
    fn fold_decomp_delta(&self, delta: &cq_decomp::DecompCounts) {
        self.treewidth_calls
            .fetch_add(delta.treewidth_calls, Ordering::Relaxed);
        self.pathwidth_calls
            .fetch_add(delta.pathwidth_calls, Ordering::Relaxed);
        self.treedepth_calls
            .fetch_add(delta.treedepth_calls, Ordering::Relaxed);
    }
}

struct CacheSlot {
    fingerprint: u64,
    plan: Arc<PreparedQuery>,
    last_used: u64,
    /// Non-identical submitted forms (e.g. relabellings) already verified
    /// homomorphically equivalent to the plan's original — so repeat
    /// lookups of the same form cost a structural equality check instead of
    /// two exponential homomorphism searches per solve.
    verified_aliases: Vec<Structure>,
}

/// Cap on memoized relabelled forms per cached plan (a client cycling more
/// distinct orderings than this re-verifies the overflow ones).
const MAX_VERIFIED_ALIASES: usize = 16;

impl CacheSlot {
    fn matches(&mut self, candidate: &Structure) -> bool {
        if *candidate == *self.plan.original() || self.verified_aliases.contains(candidate) {
            return true;
        }
        if self.plan.answers_for(candidate) {
            if self.verified_aliases.len() < MAX_VERIFIED_ALIASES {
                self.verified_aliases.push(candidate.clone());
            }
            return true;
        }
        false
    }
}

/// One independently locked shard: a small LRU over plans whose
/// fingerprints hash here.  Hit/miss accounting lives in the sharded
/// wrapper (atomics), so a shard is pure storage + recency.
struct PlanCache {
    capacity: usize,
    tick: u64,
    slots: Vec<CacheSlot>,
}

impl PlanCache {
    fn empty(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            tick: 0,
            slots: Vec::new(),
        }
    }

    fn find(&mut self, fingerprint: u64, candidate: &Structure) -> Option<Arc<PreparedQuery>> {
        self.tick += 1;
        let now = self.tick;
        for slot in &mut self.slots {
            if slot.fingerprint == fingerprint && slot.matches(candidate) {
                slot.last_used = now;
                return Some(Arc::clone(&slot.plan));
            }
        }
        None
    }

    /// Insert a plan, returning the plans the LRU evicted to make room —
    /// surrendered to the caller (rather than dropped here) so an engine
    /// with an eviction store can persist them before the last `Arc` goes.
    fn insert(&mut self, plan: Arc<PreparedQuery>) -> Vec<Arc<PreparedQuery>> {
        if self.capacity == 0 {
            return Vec::new();
        }
        let evicted = self.evict_down_to(self.capacity.saturating_sub(1));
        self.tick += 1;
        self.slots.push(CacheSlot {
            fingerprint: plan.fingerprint(),
            plan,
            last_used: self.tick,
            verified_aliases: Vec::new(),
        });
        evicted
    }

    /// Evict least-recently-used slots until at most `target` remain,
    /// returning the evicted plans.
    fn evict_down_to(&mut self, target: usize) -> Vec<Arc<PreparedQuery>> {
        let mut evicted = Vec::new();
        while self.slots.len() > target {
            let pos = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            evicted.push(self.slots.swap_remove(pos).plan);
        }
        evicted
    }
}

/// The N-way sharded plan cache: each shard an independent LRU behind its
/// own mutex, plus process-shared counters and the per-fingerprint
/// single-flight latches.
struct ShardedPlanCache {
    shards: Vec<Mutex<PlanCache>>,
    /// The shard count the caller asked for.  The effective count
    /// (`shards.len()`) is clamped so no shard's share of the capacity is
    /// zero; the request is remembered so a later capacity change can
    /// restore the full spread.
    requested_shards: usize,
    /// Total capacity across shards (shard `i` holds its proportional
    /// share).
    total_capacity: usize,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Per-fingerprint preparation latches: concurrent misses on the same
    /// fingerprint serialize here so each distinct query is prepared exactly
    /// once.  Entries live only while a preparation is in flight.
    in_flight: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
}

impl ShardedPlanCache {
    fn new(shard_count: usize, total_capacity: usize) -> ShardedPlanCache {
        let requested = shard_count.max(1);
        let effective = effective_shards(requested, total_capacity);
        let shards = (0..effective)
            .map(|i| {
                Mutex::new(PlanCache::empty(shard_capacity(
                    total_capacity,
                    effective,
                    i,
                )))
            })
            .collect();
        ShardedPlanCache {
            shards,
            requested_shards: requested,
            total_capacity,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<PlanCache> {
        &self.shards[(fingerprint % self.shards.len() as u64) as usize]
    }

    fn find(&self, fingerprint: u64, candidate: &Structure) -> Option<Arc<PreparedQuery>> {
        self.shard(fingerprint)
            .lock()
            .expect("cache shard lock")
            .find(fingerprint, candidate)
    }

    /// Insert a plan, returning any plans the shard's LRU evicted (already
    /// counted in the `evictions` stat) so the engine can persist them.
    fn insert(&self, plan: Arc<PreparedQuery>) -> Vec<Arc<PreparedQuery>> {
        let evicted = self
            .shard(plan.fingerprint())
            .lock()
            .expect("cache shard lock")
            .insert(plan);
        self.evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        evicted
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard lock").slots.len())
                .sum(),
        }
    }

    /// Rebuild with a new shard count and/or total capacity, rehashing the
    /// surviving slots.  Requires exclusive access (`&mut`), so this is a
    /// construction-time operation on the engine builder — no locks are
    /// taken.  Recency order is preserved globally on re-insertion; slots
    /// that no longer fit their new shard's share are evicted.
    fn reconfigure(&mut self, shard_count: usize, total_capacity: usize) {
        let requested = shard_count.max(1);
        let effective = effective_shards(requested, total_capacity);
        let mut slots: Vec<CacheSlot> = Vec::new();
        for shard in &mut self.shards {
            slots.append(&mut shard.get_mut().expect("cache shard lock").slots);
        }
        slots.sort_by_key(|s| s.last_used);
        self.requested_shards = requested;
        self.total_capacity = total_capacity;
        self.shards = (0..effective)
            .map(|i| {
                Mutex::new(PlanCache::empty(shard_capacity(
                    total_capacity,
                    effective,
                    i,
                )))
            })
            .collect();
        let mut evicted = (slots.len() as u64).saturating_sub(total_capacity as u64);
        // Oldest first, so later (more recent) inserts are also the more
        // recent entries of their new shard; keep only the newest
        // `total_capacity` overall before distribution.  (Recency across
        // old shards is compared by per-shard ticks — approximate, like the
        // sharded LRU itself.)
        let keep_from = slots.len().saturating_sub(total_capacity);
        for slot in slots.drain(..).skip(keep_from) {
            let index = (slot.fingerprint % effective as u64) as usize;
            evicted += self.shards[index]
                .get_mut()
                .expect("cache shard lock")
                .insert(slot.plan)
                .len() as u64;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }
}

/// Counters of the instance-index cache (one [`StructureIndex`] per
/// distinct database seen by the solve/count paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Cache consultations (one per solve/count dispatch).
    pub lookups: u64,
    /// Lookups served an already-built index.
    pub hits: u64,
    /// Lookups that had to build a fresh index.
    pub misses: u64,
    /// Full-structure hash computations performed by lookups.  A lookup
    /// whose database carries a known [content
    /// token](cq_structures::Structure::content_token) skips the `O(|B|)`
    /// hash entirely, so repeat traffic against an unchanged database
    /// leaves this counter flat (one hash on first sight, zero after).
    pub hash_computes: u64,
    /// Indexes currently cached (summed over shards).
    pub entries: usize,
}

/// The outcome of one [`Engine::apply_delta`] call: the delta-maintained
/// index (shared with the engine's cache) and the effective mutation.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    index: Arc<StructureIndex>,
    applied: Arc<AppliedDelta>,
}

impl DeltaReport {
    /// The post-delta index, still cached by the engine (the same `Arc`
    /// every subsequent dispatch against [`Self::database`] is served).
    pub fn index(&self) -> &Arc<StructureIndex> {
        &self.index
    }

    /// The post-delta database.  Pass **this** structure to
    /// `solve`/`count_instance`/aggregate calls: its content token finds
    /// the maintained index in `O(1)` (no rehash, no rebuild).
    pub fn database(&self) -> &Structure {
        self.index.structure()
    }

    /// The effective mutation — deletions and insertions that actually
    /// changed the structure, with no-ops (absent deletes, present
    /// inserts) dropped.  [`cq_structures::TupleWeights::apply_delta`]
    /// consumes this to keep a weight table aligned.
    pub fn applied(&self) -> &Arc<AppliedDelta> {
        &self.applied
    }

    /// The index version after this delta (monotone per index identity).
    pub fn version(&self) -> u64 {
        self.index.version()
    }

    /// The domain epoch after this delta; a bump means compiled programs
    /// against the pre-delta index were retired and will recompile.
    pub fn domain_epoch(&self) -> u64 {
        self.index.domain_epoch()
    }
}

struct IndexSlot {
    hash: u64,
    /// The index shares its database (`Arc<Structure>` inside
    /// [`StructureIndex`]); hash matches are confirmed by full structural
    /// equality against [`StructureIndex::structure`], so a collision
    /// degrades to a rebuild, never a wrong index — and the slot holds no
    /// second copy of the database.
    index: Arc<StructureIndex>,
    last_used: u64,
}

struct IndexShard {
    capacity: usize,
    tick: u64,
    slots: Vec<IndexSlot>,
}

/// One entry of the content-token alias table: the `O(1)` fast path in
/// front of the hash-keyed shards.  A [content
/// token](cq_structures::Structure::content_token) is process-unique per
/// content *state* — a token match implies content equality, so an alias
/// hit serves the index without hashing the database.  The entry also
/// remembers the shard hash its index is filed under, so the in-place
/// delta path can take the slot out without rehashing either.
struct IndexAlias {
    token: u64,
    hash: u64,
    index: Arc<StructureIndex>,
}

/// The sharded **instance-index cache**: one [`StructureIndex`] per
/// distinct database, shared (`Arc`) by every solver dispatch — decision
/// and counting, across the batch fan-out's worker threads.  Keyed by
/// [`structure_hash`] and confirmed by structural equality.
struct InstanceIndexCache {
    shards: Vec<Mutex<IndexShard>>,
    /// The shard count the caller asked for (the instantiated count is
    /// clamped so no shard has zero slots); remembered so a later capacity
    /// change keeps the requested spread.
    requested_shards: usize,
    total_capacity: usize,
    /// Token → index aliases, most-recently-used at the back, capped at
    /// [`Self::alias_capacity`].  An entry can never go stale: it is
    /// recorded only when its index content-equals the token's structure,
    /// and an index is never mutated while *any* shared `Arc` to it exists
    /// (the delta path takes the cache's references out first and clones
    /// when a holdout remains), so whatever an alias serves is exactly the
    /// content its token names.
    aliases: Mutex<Vec<IndexAlias>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    hash_computes: AtomicU64,
}

impl InstanceIndexCache {
    fn new(shard_count: usize, total_capacity: usize) -> InstanceIndexCache {
        let requested = shard_count.max(1);
        let effective = effective_shards(requested, total_capacity);
        InstanceIndexCache {
            shards: (0..effective)
                .map(|i| {
                    Mutex::new(IndexShard {
                        capacity: shard_capacity(total_capacity, effective, i),
                        tick: 0,
                        slots: Vec::new(),
                    })
                })
                .collect(),
            requested_shards: requested,
            total_capacity,
            aliases: Mutex::new(Vec::new()),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hash_computes: AtomicU64::new(0),
        }
    }

    /// The alias table keeps one entry per cached index at most, so it is
    /// bounded by the same knob as the shards themselves.
    fn alias_capacity(&self) -> usize {
        self.total_capacity
    }

    /// The token-alias fast path: a validated hit returns the index and its
    /// shard hash without touching [`structure_hash`].
    fn alias_lookup(&self, token: u64) -> Option<(u64, Arc<StructureIndex>)> {
        let mut aliases = self.aliases.lock().expect("index alias lock");
        let pos = aliases.iter().position(|a| a.token == token)?;
        let entry = aliases.remove(pos);
        let found = (entry.hash, Arc::clone(&entry.index));
        aliases.push(entry); // most-recently-used at the back
        Some(found)
    }

    /// Record (or refresh) the alias of a cached index, evicting the
    /// least-recently-used entry beyond capacity.
    fn alias_record(&self, token: u64, hash: u64, index: &Arc<StructureIndex>) {
        if self.alias_capacity() == 0 {
            return;
        }
        let mut aliases = self.aliases.lock().expect("index alias lock");
        if let Some(pos) = aliases.iter().position(|a| a.token == token) {
            aliases.remove(pos);
        } else if aliases.len() >= self.alias_capacity() {
            aliases.remove(0); // least-recently-used at the front
        }
        aliases.push(IndexAlias {
            token,
            hash,
            index: Arc::clone(index),
        });
    }

    /// Drop the alias entry of `token` (the delta path retires the old
    /// content state before mutating, so the mutation usually owns the only
    /// remaining `Arc` and clones nothing).
    fn alias_take(&self, token: u64) -> Option<(u64, Arc<StructureIndex>)> {
        let mut aliases = self.aliases.lock().expect("index alias lock");
        let pos = aliases.iter().position(|a| a.token == token)?;
        let entry = aliases.remove(pos);
        Some((entry.hash, entry.index))
    }

    /// [`structure_hash`] with its metering — every `O(|B|)` hash the cache
    /// ever computes goes through here.
    fn hashed(&self, database: &Structure) -> u64 {
        self.hash_computes.fetch_add(1, Ordering::Relaxed);
        structure_hash(database)
    }

    /// The cached index for `database`, building (and caching) it on first
    /// sight.  Racing builders of the same database may both build — the
    /// build is linear in `|B|` and idempotent, so no single-flight latch
    /// is warranted; the second insert finds the first and reuses it.
    ///
    /// Repeat lookups are `O(1)`: the first sight of a content state pays
    /// one [`structure_hash`] and records a token alias; every later lookup
    /// presenting the same token is served from the alias table without
    /// rehashing the database (metered by [`IndexStats::hash_computes`]).
    fn get(&self, database: &Structure) -> Arc<StructureIndex> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if self.total_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(StructureIndex::new(database));
        }
        let token = database.content_token();
        if let Some((_, index)) = self.alias_lookup(token) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return index;
        }
        let hash = self.hashed(database);
        let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
        {
            let mut shard = shard.lock().expect("index shard lock");
            shard.tick += 1;
            let now = shard.tick;
            if let Some(slot) = shard
                .slots
                .iter_mut()
                .find(|s| s.hash == hash && s.index.structure() == database)
            {
                slot.last_used = now;
                let index = Arc::clone(&slot.index);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.alias_record(token, hash, &index);
                return index;
            }
        }
        // Build outside the lock so concurrent misses on *different*
        // databases of the same shard do not serialize on the build.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let index = Arc::new(StructureIndex::new(database));
        let index = self.insert_slot(hash, index, Some(database));
        self.alias_record(token, hash, &index);
        index
    }

    /// File `index` into its shard under `hash`, evicting
    /// least-recently-used slots beyond capacity.  When `racing_against` is
    /// given and an equal index was inserted concurrently, the existing one
    /// wins and is returned (ours is dropped).
    fn insert_slot(
        &self,
        hash: u64,
        index: Arc<StructureIndex>,
        racing_against: Option<&Structure>,
    ) -> Arc<StructureIndex> {
        let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
        let mut shard = shard.lock().expect("index shard lock");
        if let Some(database) = racing_against {
            if let Some(slot) = shard
                .slots
                .iter()
                .find(|s| s.hash == hash && s.index.structure() == database)
            {
                // A racing builder beat us: share its index, drop ours.
                return Arc::clone(&slot.index);
            }
        }
        while shard.slots.len() >= shard.capacity.max(1) {
            let pos = shard
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            shard.slots.swap_remove(pos);
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.slots.push(IndexSlot {
            hash,
            index: Arc::clone(&index),
            last_used: tick,
        });
        index
    }

    /// Apply a [`DeltaBatch`] to the cached index of `database` **in
    /// place** — no index rebuild, no structure copy on the usual path.
    ///
    /// The pre-delta index is taken *out* of the alias table and its shard
    /// (so the mutation typically owns the only `Arc` and
    /// [`Arc::try_unwrap`] succeeds without cloning), mutated through
    /// [`StructureIndex::apply_delta`], and re-filed under its original
    /// shard hash with a fresh token alias.  The stale shard hash is sound:
    /// hash lookups confirm by structural equality, so it can only cost a
    /// miss — while all delta-path traffic finds the index through the
    /// token of its post-delta structure in `O(1)`.
    ///
    /// A database never seen before is indexed first (that build is the one
    /// exception to "no rebuild" — there is nothing to maintain yet).
    /// Validation errors leave the cache exactly as it was.
    fn apply_delta(
        &self,
        database: &Structure,
        batch: &DeltaBatch,
    ) -> Result<(Arc<StructureIndex>, Arc<AppliedDelta>), StructureError> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if self.total_capacity == 0 {
            // Caching disabled: mutate a throwaway index so the answer
            // semantics match the cached path.
            self.misses.fetch_add(1, Ordering::Relaxed);
            let mut index = StructureIndex::new(database);
            let applied = index.apply_delta(batch)?;
            return Ok((Arc::new(index), applied));
        }
        let token = database.content_token();
        let (hash, arc) = match self.alias_take(token) {
            Some((hash, index)) => {
                // Also unhook the shard's Arc so ours is the last one.
                let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
                let mut shard = shard.lock().expect("index shard lock");
                if let Some(pos) = shard
                    .slots
                    .iter()
                    .position(|s| Arc::ptr_eq(&s.index, &index))
                {
                    shard.slots.swap_remove(pos);
                }
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                (hash, index)
            }
            None => {
                let hash = self.hashed(database);
                let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
                let mut guard = shard.lock().expect("index shard lock");
                if let Some(pos) = guard
                    .slots
                    .iter()
                    .position(|s| s.hash == hash && s.index.structure() == database)
                {
                    let slot = guard.slots.swap_remove(pos);
                    drop(guard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    (hash, slot.index)
                } else {
                    drop(guard);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    (hash, Arc::new(StructureIndex::new(database)))
                }
            }
        };
        // Concurrent holders of the old Arc (in-flight evaluations, an
        // earlier DeltaReport) keep their pre-delta snapshot; the clone
        // shares the index identity, so warm programs stay keyed right.
        let mut owned = Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone());
        match owned.apply_delta(batch) {
            Ok(applied) => {
                let index = Arc::new(owned);
                let index = self.insert_slot(hash, index, None);
                self.alias_record(index.structure().content_token(), hash, &index);
                Ok((index, applied))
            }
            Err(error) => {
                // Whole-batch validation failed before any mutation: put
                // the untouched index back.
                let index = Arc::new(owned);
                let index = self.insert_slot(hash, index, None);
                self.alias_record(token, hash, &index);
                Err(error)
            }
        }
    }

    /// The chained form of [`Self::apply_delta`]: the caller hands back the
    /// `Arc` of the previous round's index instead of a `&Structure`.
    ///
    /// Dropping the caller's reference *before* the mutation is what makes
    /// steady-state churn truly `O(delta)`: with the alias and shard
    /// references taken out and the caller's `Arc` consumed,
    /// [`Arc::try_unwrap`] owns the index outright and
    /// [`StructureIndex::apply_delta`]'s `Arc::make_mut` mutates the
    /// structure in place — no index clone, no structure copy.  The
    /// `&Structure` form can't do this (the borrow pins a live `Arc`
    /// somewhere), so a round loop over it pays one copy-on-write structure
    /// clone per round.
    ///
    /// Never builds an index: even on a full cache miss the caller's own
    /// index is the thing to mutate.
    fn apply_delta_owned(
        &self,
        caller: Arc<StructureIndex>,
        batch: &DeltaBatch,
    ) -> Result<(Arc<StructureIndex>, Arc<AppliedDelta>), StructureError> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let token = caller.structure().content_token();
        let (hash, arc) = if self.total_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            (None, caller)
        } else {
            match self.alias_take(token) {
                Some((hash, index)) => {
                    // Unhook the shard's Arc, then drop the caller's: the
                    // alias invariant says `index` holds exactly the content
                    // `token` names, so it and `caller` are interchangeable
                    // (normally the same allocation).
                    let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
                    let mut shard = shard.lock().expect("index shard lock");
                    if let Some(pos) = shard
                        .slots
                        .iter()
                        .position(|s| Arc::ptr_eq(&s.index, &index))
                    {
                        shard.slots.swap_remove(pos);
                    }
                    drop(shard);
                    drop(caller);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    (Some(hash), index)
                }
                None => {
                    // Alias evicted (or the report came from another
                    // engine): fall back to the hash, unhooking a matching
                    // shard slot so the caller's Arc is the last one.
                    let hash = self.hashed(caller.structure());
                    let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
                    let mut guard = shard.lock().expect("index shard lock");
                    let slot = guard
                        .slots
                        .iter()
                        .position(|s| s.hash == hash && s.index.structure() == caller.structure())
                        .map(|pos| guard.slots.swap_remove(pos));
                    drop(guard);
                    match slot {
                        Some(slot) => {
                            drop(caller);
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            (Some(hash), slot.index)
                        }
                        None => {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            (Some(hash), caller)
                        }
                    }
                }
            }
        };
        let mut owned = Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone());
        match owned.apply_delta(batch) {
            Ok(applied) => {
                let index = Arc::new(owned);
                let index = match hash {
                    Some(hash) => {
                        let index = self.insert_slot(hash, index, None);
                        self.alias_record(index.structure().content_token(), hash, &index);
                        index
                    }
                    None => index,
                };
                Ok((index, applied))
            }
            Err(error) => {
                if let Some(hash) = hash {
                    let index = Arc::new(owned);
                    let index = self.insert_slot(hash, index, None);
                    self.alias_record(token, hash, &index);
                }
                Err(error)
            }
        }
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            hash_computes: self.hash_computes.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("index shard lock").slots.len())
                .sum(),
        }
    }
}

/// Drop guard removing a fingerprint's single-flight latch entry, so the
/// entry is cleaned up on every exit path — normal returns and panic
/// unwinds alike.
struct LatchCleanup<'a> {
    in_flight: &'a Mutex<HashMap<u64, Arc<Mutex<()>>>>,
    fingerprint: u64,
}

impl Drop for LatchCleanup<'_> {
    fn drop(&mut self) {
        self.in_flight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .remove(&self.fingerprint);
    }
}

/// The shard count actually instantiated for a requested count and total
/// capacity: clamped so every shard's share is at least one slot —
/// otherwise queries hashing into a zero-capacity shard would silently
/// never be cached (a zero *total* capacity means caching is off and one
/// pro-forma shard suffices).
fn effective_shards(requested: usize, total_capacity: usize) -> usize {
    requested.min(total_capacity.max(1))
}

/// Shard `index`'s share of the total capacity: `total / count`, with the
/// remainder spread over the first `total % count` shards.
fn shard_capacity(total: usize, count: usize, index: usize) -> usize {
    total / count + usize::from(index < total % count)
}

/// The prepared-query evaluation engine: solver registry + sharded plan
/// cache + parallel batch API.  Cheap to share across threads (`&Engine` is
/// `Send + Sync`; all interior state is sharded-mutex-guarded or atomic).
pub struct Engine {
    id: u64,
    config: EngineConfig,
    registry: SolverRegistry,
    count_registry: CountRegistry,
    aggregate_registry: AggregateRegistry,
    cache: ShardedPlanCache,
    indexes: InstanceIndexCache,
    registered: Mutex<Vec<Arc<PreparedQuery>>>,
    prep: PrepCounters,
    eviction: Option<EvictionSink>,
}

/// Background save-on-eviction (see [`Engine::with_eviction_store`]): the
/// engine forwards every plan the LRU evicts here; the sink upserts it into
/// an in-memory [`PlanStore`] image (seeded from the file already at the
/// configured path, when plan-compatible) and wakes a background writer
/// thread that persists the image atomically.  Eviction callers pay one
/// mutex + an encode; the file I/O happens off the serving path.
struct EvictionSink {
    store: Arc<Mutex<PlanStore>>,
    /// Wake signals for the writer thread; dropping the sender (engine
    /// drop) flushes all pending work and stops the thread.
    wake: Mutex<Option<std::sync::mpsc::Sender<()>>>,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// An engine with the standard solver registries (decision and
    /// counting) and default cache capacity.
    pub fn new(config: EngineConfig) -> Engine {
        Engine::with_registry(config, SolverRegistry::standard(&config))
    }

    /// An engine with an explicit decision registry (ablations,
    /// experiments); the counting registry stays the standard one and can
    /// be overridden with [`Engine::with_count_registry`].
    pub fn with_registry(config: EngineConfig, registry: SolverRegistry) -> Engine {
        Engine {
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            config,
            registry,
            count_registry: CountRegistry::standard(),
            aggregate_registry: AggregateRegistry::standard(),
            cache: ShardedPlanCache::new(DEFAULT_CACHE_SHARDS, DEFAULT_PLAN_CACHE_CAPACITY),
            indexes: InstanceIndexCache::new(DEFAULT_CACHE_SHARDS, DEFAULT_INDEX_CACHE_CAPACITY),
            registered: Mutex::new(Vec::new()),
            prep: PrepCounters::default(),
            eviction: None,
        }
    }

    /// Override the counting registry (counting ablations — the E15
    /// analogue of the E12 registry edits).
    pub fn with_count_registry(mut self, count_registry: CountRegistry) -> Engine {
        self.count_registry = count_registry;
        self
    }

    /// Override the weighted-aggregate registry (tier ablations for the
    /// min-cost / max-weight entry points).
    pub fn with_aggregate_registry(mut self, aggregate_registry: AggregateRegistry) -> Engine {
        self.aggregate_registry = aggregate_registry;
        self
    }

    /// Override the plan cache's **total** capacity across shards (0
    /// disables caching).  Shrinking below the current population evicts
    /// least-recently-used plans immediately, so the new capacity holds from
    /// this call on.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Engine {
        let shards = self.cache.requested_shards;
        self.cache.reconfigure(shards, capacity);
        self
    }

    /// Override the instance-index cache's **total** capacity across its
    /// shards (0 disables caching: every dispatch rebuilds the database
    /// index from scratch — the cold baseline of bench E16).  Cached
    /// indexes are discarded; the shard spread requested earlier is kept.
    pub fn with_index_cache_capacity(mut self, capacity: usize) -> Engine {
        self.indexes = InstanceIndexCache::new(self.indexes.requested_shards, capacity);
        self
    }

    /// Override the number of cache shards (minimum 1) for **both** the
    /// plan cache and the instance-index cache.  More shards cut lock
    /// contention under concurrent traffic at the price of partitioning
    /// the LRU: eviction order is exact per shard, approximate globally.
    /// Existing plans are rehashed into the new shards; cached database
    /// indexes are discarded (construction-time builder, rebuilt on first
    /// sight).
    ///
    /// The instantiated count is clamped to the total capacity so no shard
    /// ends up with zero slots (see [`Engine::cache_shards`] for the
    /// effective value); the request is remembered and takes full effect if
    /// the capacity is later raised.
    pub fn with_cache_shards(mut self, shards: usize) -> Engine {
        let capacity = self.cache.total_capacity;
        self.cache.reconfigure(shards, capacity);
        self.indexes = InstanceIndexCache::new(shards, self.indexes.total_capacity);
        self
    }

    /// The configuration this engine prepares and solves under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The solver registry used for decision dispatch.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The counting registry used for [`Engine::count_instance`] dispatch.
    pub fn count_registry(&self) -> &CountRegistry {
        &self.count_registry
    }

    /// The aggregate registry used for [`Engine::evaluate_min_cost`] /
    /// [`Engine::evaluate_max_weight`] dispatch.
    pub fn aggregate_registry(&self) -> &AggregateRegistry {
        &self.aggregate_registry
    }

    /// The number of cache shards currently configured.
    pub fn cache_shards(&self) -> usize {
        self.cache.shards.len()
    }

    /// The worker count the batch APIs will fan out to:
    /// [`EngineConfig::workers`], with `0` resolved to the machine's
    /// available parallelism.
    pub fn effective_workers(&self) -> usize {
        match self.config.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Prepare a query — or fetch the cached plan of an equivalent query
    /// prepared earlier.  This is the only place per-query exponential work
    /// (core, width DPs, decompositions) happens.
    ///
    /// Concurrent calls for the same (or an equivalent) query are
    /// single-flighted: one caller prepares, the others wait on a
    /// per-fingerprint latch and are then served the cached plan, so each
    /// distinct fingerprint is prepared exactly once no matter how many
    /// threads race on it.
    pub fn prepare(&self, query: &Structure) -> Arc<PreparedQuery> {
        let fingerprint = query_fingerprint(query);
        self.cache.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = self.cache.find(fingerprint, query) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            return plan;
        }
        if self.cache.total_capacity == 0 {
            // Caching disabled: no plan to share, so no latch either —
            // every call pays preparation.
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
            return self.prepare_counted(query, fingerprint);
        }
        // Single-flight: serialize concurrent preparers of this fingerprint.
        let (latch, we_inserted) = {
            let mut in_flight = self.cache.in_flight.lock().expect("in-flight lock");
            match in_flight.entry(fingerprint) {
                Entry::Occupied(e) => (Arc::clone(e.get()), false),
                Entry::Vacant(v) => {
                    let latch = Arc::new(Mutex::new(()));
                    v.insert(Arc::clone(&latch));
                    (latch, true)
                }
            }
        };
        // If we inserted the latch entry we must also remove it on *every*
        // exit — including a panic inside preparation (e.g. a query beyond
        // the exact-DP size limit), otherwise the stale entry would wedge
        // all future prepares of this fingerprint on a poisoned latch.
        let _cleanup = we_inserted.then(|| LatchCleanup {
            in_flight: &self.cache.in_flight,
            fingerprint,
        });
        // A poisoned latch just means a previous preparer panicked; the
        // exclusion it provides is still sound, so take it and move on.
        let _held = latch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Re-check: if we waited on another thread's preparation, its plan
        // is in the cache now and this lookup counts as a hit.
        if let Some(plan) = self.cache.find(fingerprint, query) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            plan
        } else {
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
            // Prepare while holding only the latch: preparation is the
            // expensive part, and preparers of *different* queries must not
            // serialize (they hold different latches and touch shards only
            // for the final insert).
            let plan = self.prepare_counted(query, fingerprint);
            let evicted = self.cache.insert(Arc::clone(&plan));
            self.persist_evicted(evicted);
            plan
        }
    }

    /// Run the actual preparation, folding the thread-local work counters'
    /// delta into this engine's aggregated [`PrepStats`].  The delta is
    /// measured on the executing thread around this call alone, so it is
    /// exact regardless of which worker runs it.
    fn prepare_counted(&self, query: &Structure, fingerprint: u64) -> Arc<PreparedQuery> {
        let decomp_before = cq_decomp::stats::counts();
        let cores_before = cq_structures::core_computation_count();
        let plan = Arc::new(PreparedQuery::prepare_with_fingerprint(
            query,
            &self.config,
            fingerprint,
        ));
        let delta = cq_decomp::stats::counts().since(&decomp_before);
        let cores = cq_structures::core_computation_count() - cores_before;
        self.prep.preparations.fetch_add(1, Ordering::Relaxed);
        self.prep.fold_decomp_delta(&delta);
        self.prep
            .core_computations
            .fetch_add(cores, Ordering::Relaxed);
        plan
    }

    /// Materialize a plan's counting certificates (the structural analysis
    /// of the original, non-cored query) if they are not there yet, folding
    /// the width-DP delta of the one-time computation into this engine's
    /// aggregated [`PrepStats`].  Idempotent and single-flighted by the
    /// plan's interior `OnceLock`; repeat calls (and plans whose original
    /// is its own core) cost a structure comparison and run no DP at all.
    fn ensure_counting_certificates(&self, plan: &PreparedQuery) -> WidthProfile {
        let decomp_before = cq_decomp::stats::counts();
        let (analysis, computed) = plan.counting_analysis_tracked();
        if computed {
            let delta = cq_decomp::stats::counts().since(&decomp_before);
            self.prep
                .counting_preparations
                .fetch_add(1, Ordering::Relaxed);
            self.prep.fold_decomp_delta(&delta);
        }
        analysis.widths
    }

    /// Register a query for batch evaluation, returning its handle.  Goes
    /// through the plan cache, so registering the same (or an equivalent)
    /// query twice prepares it once.
    pub fn register(&self, query: &Structure) -> QueryId {
        let plan = self.prepare(query);
        let mut registered = self.registered.lock().expect("registry lock");
        registered.push(plan);
        QueryId {
            engine: self.id,
            index: registered.len() - 1,
        }
    }

    /// The prepared plan behind a registered handle.
    ///
    /// Panics when the handle was issued by a different engine.
    pub fn prepared(&self, id: QueryId) -> Arc<PreparedQuery> {
        assert_eq!(
            id.engine, self.id,
            "QueryId was issued by a different Engine (handles are not transferable)"
        );
        Arc::clone(&self.registered.lock().expect("registry lock")[id.index])
    }

    /// Evaluate one instance end to end (prepare through the cache, then
    /// solve).
    pub fn solve(&self, query: &Structure, database: &Structure) -> EngineReport {
        let plan = self.prepare(query);
        self.solve_prepared(&plan, database)
    }

    /// The cached [`StructureIndex`] of a database — built on first sight,
    /// shared by every later decision/counting dispatch against the same
    /// database (including across the batch fan-out's worker threads).
    pub fn instance_index(&self, database: &Structure) -> Arc<StructureIndex> {
        self.indexes.get(database)
    }

    /// Apply a batch of tuple inserts/deletes to `database`'s cached index
    /// **in place**: the index is delta-maintained (no rebuild), its
    /// version advances, and warm compiled programs plus the retained DP
    /// join tables of [`PreparedQuery::decide_via_tree`] /
    /// [`PreparedQuery::count_via_tree`] survive whenever the delta keeps
    /// every position domain's support (a domain-growing delta bumps the
    /// [domain epoch](StructureIndex::domain_epoch) and transparently
    /// recompiles instead).
    ///
    /// Query the post-delta state through [`DeltaReport::database`] — its
    /// content token routes every subsequent `solve`/`count`/aggregate
    /// dispatch to the maintained index in `O(1)`, without rehashing.  The
    /// batch is validated whole-batch-or-nothing; on error the cache is
    /// left exactly as it was.  A database the engine has never indexed is
    /// indexed first, then mutated.
    pub fn apply_delta(
        &self,
        database: &Structure,
        batch: &DeltaBatch,
    ) -> Result<DeltaReport, StructureError> {
        let (index, applied) = self.indexes.apply_delta(database, batch)?;
        Ok(DeltaReport { index, applied })
    }

    /// Apply the next [`DeltaBatch`] of an update stream, consuming the
    /// previous round's [`DeltaReport`].
    ///
    /// This is the steady-state form of [`Engine::apply_delta`]: handing
    /// the report back lets the engine drop every reference to the
    /// pre-delta index *before* mutating, so the round is `O(delta)` with
    /// **no structure copy at all** — the `&Structure` form necessarily
    /// keeps a borrow alive and pays one copy-on-write clone of the
    /// structure per round.  Clone the report first if you need to keep
    /// the pre-delta snapshot (the clone's extra `Arc` re-introduces that
    /// one copy).
    ///
    /// On a validation error the batch is rejected whole and the pre-delta
    /// index stays cached; re-obtain it through a kept clone of the report
    /// or any content-equal database.
    pub fn apply_delta_chained(
        &self,
        report: DeltaReport,
        batch: &DeltaBatch,
    ) -> Result<DeltaReport, StructureError> {
        let DeltaReport { index, applied: _ } = report;
        let (index, applied) = self.indexes.apply_delta_owned(index, batch)?;
        Ok(DeltaReport { index, applied })
    }

    /// Evaluate a prepared query against one database: select the first
    /// admitting solver in registry priority order and run it on the plan's
    /// certificates through the database's cached index.  No per-query
    /// exponential work happens here.
    pub fn solve_prepared(&self, plan: &PreparedQuery, database: &Structure) -> EngineReport {
        let solver = self
            .registry
            .select(plan, &self.config)
            .expect("solver registry has no solver admitting this query (ablated registries must keep a fallback)");
        let index = self.indexes.get(database);
        let outcome = solver.solve(plan, database, &index);
        EngineReport {
            exists: outcome.exists,
            choice: solver.choice(),
            degree_hint: plan.degree_hint(),
            widths: plan.widths(),
            evaluated_query_size: plan.evaluated_size(),
        }
    }

    /// Count the homomorphisms of one instance end to end: prepare the
    /// query through the **shared** plan cache (decision and counting
    /// traffic on the same fingerprint reuse one plan), then count through
    /// the counting registry on the original-structure certificates.
    ///
    /// Counting is invariant under isomorphism but **not** under the
    /// homomorphic equivalence the decision cache trades in, so when the
    /// cache serves a plan whose original differs syntactically from
    /// `query`, the plan is used only if [`PreparedQuery::counts_for`]
    /// confirms the two are isomorphic (relabellings hit this path); a
    /// hom-equivalent-but-not-isomorphic alias — possible only through a
    /// fingerprint collision — falls back to an uncached exact count
    /// instead of a silently wrong one.
    pub fn count_instance(&self, query: &Structure, database: &Structure) -> CountReport {
        let plan = self.prepare(query);
        if plan.counts_for(query) {
            self.count_prepared(&plan, database)
        } else {
            // Fingerprint collision between hom-equivalent non-isomorphic
            // structures: prepare a throwaway plan for the submitted form
            // (uncached — inserting it would fight the colliding slot) and
            // count on that.
            let plan = self.prepare_counted(query, query_fingerprint(query));
            self.count_prepared(&plan, database)
        }
    }

    /// Count a prepared query's homomorphisms into one database: ensure the
    /// original-structure counting certificates exist (lazy, once per
    /// plan), select the first admitting counting solver in registry
    /// priority order, and run it.  On a plan whose counting certificates
    /// are already materialized, no per-query exponential work happens
    /// here.
    pub fn count_prepared(&self, plan: &PreparedQuery, database: &Structure) -> CountReport {
        let widths = self.ensure_counting_certificates(plan);
        let solver = self
            .count_registry
            .select(plan, &self.config)
            .expect("counting registry has no solver admitting this query (ablated registries must keep a fallback)");
        let index = self.indexes.get(database);
        let evaluation = solver.count(plan, database, &index);
        CountReport {
            count: evaluation.outcome,
            method: solver.method(),
            degree_hint: Degree::from_boundedness(
                widths.treewidth <= self.config.treewidth_threshold,
                widths.pathwidth <= self.config.pathwidth_threshold,
                widths.treedepth <= self.config.treedepth_threshold,
            ),
            widths,
            counted_query_size: plan.original().universe_size(),
        }
    }

    /// Count a batch of (query, database) instances across the configured
    /// worker threads — the counting analogue of
    /// [`Engine::solve_batch_instances`]: every distinct query is prepared
    /// once through the shared plan cache (single-flighted under races) and
    /// its counting certificates are materialized once; every instance is
    /// counted against the cached plan.  Results are in input order and
    /// bit-identical to the sequential path for every worker count.
    pub fn count_batch(&self, batch: &[(&Structure, &Structure)]) -> Vec<CountReport> {
        self.run_batch(batch, |engine, &(query, database)| {
            engine.count_instance(query, database)
        })
    }

    /// A cached plan whose original is **structurally identical** to the
    /// submitted canonical structure — the reuse guard for answers.
    ///
    /// Answers need an even stricter guard than counting's
    /// [`PreparedQuery::counts_for`]: free-variable positions are element
    /// indices *of the submitted canonical structure*, and they do not
    /// transport along an isomorphism to a differently-labelled cached
    /// original (the projection would land on the wrong columns).  A cache
    /// hit whose original differs in any way therefore falls back to an
    /// uncached throwaway plan for the exact submitted form.
    fn answer_plan(&self, canonical: &Structure) -> Arc<PreparedQuery> {
        let plan = self.prepare(canonical);
        if *plan.original() == *canonical {
            plan
        } else {
            self.prepare_counted(canonical, query_fingerprint(canonical))
        }
    }

    /// Count the **distinct answers** of a free-variable query against one
    /// database: the number of assignments to
    /// [`ConjunctiveQuery::free_variables`] extendable to a full
    /// homomorphism of the query's canonical structure.
    ///
    /// With zero free variables this degenerates to the boolean question
    /// (`1` if satisfiable, else `0`); with every variable free it is the
    /// number of distinct homomorphisms.  Like homomorphism *counting*
    /// (Theorem 6.1), answers are **not** invariant under taking cores, so
    /// the evaluation runs on the original structure with the counting
    /// certificates; unlike counting, the licensed DP pays a width price of
    /// at most the number of free variables (see
    /// [`cq_solver::kernel::AnswerProgram`]).  The engine dispatches on the
    /// original query's treewidth against
    /// [`EngineConfig::treewidth_threshold`]: within the threshold, the
    /// grouped root-bag DP; beyond it, brute-force enumeration with
    /// projection.
    ///
    /// # Panics
    /// When the query is malformed (atoms inconsistent with its declared
    /// variables) — validate at the boundary, as `cq-service` does.
    pub fn count_answers(
        &self,
        query: &ConjunctiveQuery,
        database: &Structure,
    ) -> AnswerCountReport {
        let canonical = query
            .canonical_structure()
            .expect("query atoms must be consistent with its declared variables");
        let free = query.free_element_indices();
        let plan = self.answer_plan(&canonical);
        let widths = self.ensure_counting_certificates(&plan);
        let (answers, method, answer_width) = if widths.treewidth <= self.config.treewidth_threshold
        {
            let index = self.indexes.get(database);
            let program = plan.answer_program(&index, &free);
            (
                program.count_answers(&index),
                AnswerMethod::TreeDecompositionDp,
                program.answer_width(),
            )
        } else {
            let rows = answers_bruteforce(&canonical, database, &free);
            (
                rows.len() as u64,
                AnswerMethod::BruteForce,
                widths.treewidth + free.len(),
            )
        };
        AnswerCountReport {
            answers,
            method,
            degree_hint: Degree::from_boundedness(
                widths.treewidth <= self.config.treewidth_threshold,
                widths.pathwidth <= self.config.pathwidth_threshold,
                widths.treedepth <= self.config.treedepth_threshold,
            ),
            widths,
            answer_width,
            free_count: free.len(),
        }
    }

    /// One page of the query's answers: skip `offset` rows of the full
    /// enumeration, return up to `limit` rows, and report whether anything
    /// follows.  Rows are tuples of database elements aligned with
    /// [`ConjunctiveQuery::free_variables`] order, in ascending
    /// lexicographic row order — a total order independent of worker count
    /// and engine state, so consecutive pages tile the full answer set
    /// exactly.
    ///
    /// On the licensed path the page is produced by the bounded-delay
    /// cursor of [`cq_solver::kernel::AnswerProgram`]: no answer beyond
    /// `offset + limit + 1` is ever materialized, and the cost of a page is
    /// proportional to its position and size — not to the total number of
    /// answers.  (`has_more` costs one extra cursor step, which is why the
    /// `+ 1`.)  Beyond the treewidth threshold the engine falls back to
    /// materializing the brute-force projection and slicing it.
    ///
    /// # Panics
    /// When the query is malformed, as for [`Engine::count_answers`].
    pub fn answers(
        &self,
        query: &ConjunctiveQuery,
        database: &Structure,
        offset: u64,
        limit: usize,
    ) -> AnswerPage {
        let canonical = query
            .canonical_structure()
            .expect("query atoms must be consistent with its declared variables");
        let free = query.free_element_indices();
        let plan = self.answer_plan(&canonical);
        let widths = self.ensure_counting_certificates(&plan);
        if widths.treewidth <= self.config.treewidth_threshold {
            let index = self.indexes.get(database);
            let program = plan.answer_program(&index, &free);
            let mut cursor = program.cursor(&index);
            let method = AnswerMethod::TreeDecompositionDp;
            for _ in 0..offset {
                if cursor.next().is_none() {
                    // Page starts past the end: empty, nothing follows.
                    return AnswerPage {
                        rows: Vec::new(),
                        offset,
                        has_more: false,
                        method,
                    };
                }
            }
            let mut rows = Vec::new();
            while rows.len() < limit {
                match cursor.next() {
                    Some(row) => rows.push(row),
                    None => {
                        return AnswerPage {
                            rows,
                            offset,
                            has_more: false,
                            method,
                        }
                    }
                }
            }
            let has_more = cursor.next().is_some();
            AnswerPage {
                rows,
                offset,
                has_more,
                method,
            }
        } else {
            let all = answers_bruteforce(&canonical, database, &free);
            let start = offset.min(all.len() as u64) as usize;
            let end = start.saturating_add(limit).min(all.len());
            AnswerPage {
                rows: all[start..end]
                    .iter()
                    .map(|row| row.iter().map(|&e| e as u32).collect())
                    .collect(),
                offset,
                has_more: end < all.len(),
                method: AnswerMethod::BruteForce,
            }
        }
    }

    /// Count answers for a batch of (query, database) instances across the
    /// configured worker threads — the answers analogue of
    /// [`Engine::count_batch`]: plans and compiled answer programs are
    /// shared through the caches, results are in input order and
    /// bit-identical to the sequential path for every worker count.
    pub fn count_answers_batch(
        &self,
        batch: &[(&ConjunctiveQuery, &Structure)],
    ) -> Vec<AnswerCountReport> {
        self.run_batch(batch, |engine, &(query, database)| {
            engine.count_answers(query, database)
        })
    }

    /// Evaluate a batch of paged answer requests
    /// `(query, database, offset, limit)` across the configured worker
    /// threads, in input order and bit-identical to the sequential path for
    /// every worker count.
    pub fn answers_batch(
        &self,
        batch: &[(&ConjunctiveQuery, &Structure, u64, usize)],
    ) -> Vec<AnswerPage> {
        self.run_batch(batch, |engine, &(query, database, offset, limit)| {
            engine.answers(query, database, offset, limit)
        })
    }

    /// Count homomorphisms from the star expansion `A*` into `b` through
    /// the Lemma 6.2 pl-Turing reduction, with **this engine** as the
    /// oracle: every one of the `2^{|A|} − 1` inclusion–exclusion oracle
    /// calls has left-hand side exactly `a`, so the plan (and its counting
    /// certificates) is prepared once and every subsequent call is a cache
    /// hit — the reduction runs over cached plans.
    ///
    /// `b` must be a coloured target interpreting `a`'s vocabulary plus the
    /// colour relations `C_0 … C_{|A|−1}` (see
    /// [`cq_structures::ops::colored_target`]); panics otherwise, like the
    /// underlying [`cq_reductions::count_star_via_oracle`].
    ///
    /// Inclusion–exclusion **subtracts** oracle answers, so one overflowed
    /// term makes the whole reduction unsalvageable: any oracle call
    /// reporting [`CountOutcome::Overflow`] yields
    /// [`CountOutcome::Overflow`] here — never the silently wrong
    /// difference the old saturating arithmetic produced.
    pub fn count_star(&self, a: &Structure, b: &Structure) -> CountOutcome {
        match cq_reductions::count_star_via_oracle(a, b, &mut |query, database| {
            self.count_instance(query, database).count.exact()
        }) {
            Some(n) => CountOutcome::Exact(n),
            None => CountOutcome::Overflow,
        }
    }

    /// Minimum total tuple weight over all homomorphisms from `query` into
    /// `database` — the tropical `(min, +)` instantiation of the same
    /// kernel DPs that decide and count.  `None` when no homomorphism
    /// exists.  Plans are shared with decision/counting traffic through
    /// the same cache (aggregates reuse the compiled counting programs;
    /// only the weights differ per call).
    ///
    /// # Panics
    /// When `weights` is not aligned with `database`'s relations
    /// (`weights.matches(database)` must hold — a weight table is only
    /// meaningful next to the structure it was built for).
    pub fn evaluate_min_cost(
        &self,
        query: &Structure,
        database: &Structure,
        weights: &TupleWeights,
    ) -> AggregateReport {
        self.aggregate_instance(query, database, weights, AggregateObjective::MinCost)
    }

    /// Maximum total tuple weight over all homomorphisms — the `(max, +)`
    /// twin of [`Engine::evaluate_min_cost`], with the same plan sharing
    /// and the same panics.
    pub fn evaluate_max_weight(
        &self,
        query: &Structure,
        database: &Structure,
        weights: &TupleWeights,
    ) -> AggregateReport {
        self.aggregate_instance(query, database, weights, AggregateObjective::MaxWeight)
    }

    /// Evaluate a batch of (query, database, weights) min-cost instances
    /// across the configured worker threads, in input order and
    /// bit-identical to the sequential path for every worker count.
    pub fn min_cost_batch(
        &self,
        batch: &[(&Structure, &Structure, &TupleWeights)],
    ) -> Vec<AggregateReport> {
        self.run_batch(batch, |engine, &(query, database, weights)| {
            engine.evaluate_min_cost(query, database, weights)
        })
    }

    /// The max-weight twin of [`Engine::min_cost_batch`].
    pub fn max_weight_batch(
        &self,
        batch: &[(&Structure, &Structure, &TupleWeights)],
    ) -> Vec<AggregateReport> {
        self.run_batch(batch, |engine, &(query, database, weights)| {
            engine.evaluate_max_weight(query, database, weights)
        })
    }

    /// Shared implementation of the aggregate entry points: prepare through
    /// the cache with the same isomorphism guard as
    /// [`Engine::count_instance`] (aggregates are not core-invariant), then
    /// dispatch through the aggregate registry.
    fn aggregate_instance(
        &self,
        query: &Structure,
        database: &Structure,
        weights: &TupleWeights,
        objective: AggregateObjective,
    ) -> AggregateReport {
        assert!(
            weights.matches(database),
            "weight table does not align with the database's relations"
        );
        let plan = self.prepare(query);
        if plan.counts_for(query) {
            self.aggregate_prepared(&plan, database, weights, objective)
        } else {
            // Fingerprint collision between hom-equivalent non-isomorphic
            // structures — same uncached fallback as counting.
            let plan = self.prepare_counted(query, query_fingerprint(query));
            self.aggregate_prepared(&plan, database, weights, objective)
        }
    }

    /// Aggregate a prepared query against one database: ensure the counting
    /// certificates (aggregates run on the original structure), select the
    /// first admitting aggregate solver, and run it.
    pub fn aggregate_prepared(
        &self,
        plan: &PreparedQuery,
        database: &Structure,
        weights: &TupleWeights,
        objective: AggregateObjective,
    ) -> AggregateReport {
        let widths = self.ensure_counting_certificates(plan);
        let solver = self
            .aggregate_registry
            .select(plan, &self.config)
            .expect("aggregate registry has no solver admitting this query (ablated registries must keep a fallback)");
        let index = self.indexes.get(database);
        let value = solver.evaluate(plan, database, &index, weights, objective);
        AggregateReport {
            value,
            objective,
            method: solver.method(),
            degree_hint: Degree::from_boundedness(
                widths.treewidth <= self.config.treewidth_threshold,
                widths.pathwidth <= self.config.pathwidth_threshold,
                widths.treedepth <= self.config.treedepth_threshold,
            ),
            widths,
        }
    }

    /// Evaluate a batch of (registered query, database) instances across
    /// the configured worker threads.  Each distinct query was prepared
    /// exactly once (at [`register`](Self::register) time); the batch
    /// performs only per-database solver work.  Results are in input order
    /// and identical to the sequential path.
    ///
    /// Panics when a handle was issued by a different engine.
    pub fn solve_batch(&self, batch: &[(QueryId, &Structure)]) -> Vec<EngineReport> {
        // Snapshot the registered plans once: handles resolve lock-free
        // inside the fan-out instead of contending on the registry mutex
        // per instance.  (Registrations racing with the batch may or may
        // not be visible — their handles could not be in `batch` anyway.)
        let plans: Vec<Arc<PreparedQuery>> = self.registered.lock().expect("registry lock").clone();
        self.run_batch(batch, move |engine, &(id, database)| {
            assert_eq!(
                id.engine, engine.id,
                "QueryId was issued by a different Engine (handles are not transferable)"
            );
            engine.solve_prepared(&plans[id.index], database)
        })
    }

    /// Evaluate a batch of raw (query, database) instances across the
    /// configured worker threads: every distinct query is prepared once
    /// through the plan cache (single-flighted under races), every instance
    /// is evaluated against its cached plan.  Results are in input order
    /// and identical to the sequential path.
    pub fn solve_batch_instances(&self, batch: &[(&Structure, &Structure)]) -> Vec<EngineReport> {
        self.run_batch(batch, |engine, &(query, database)| {
            engine.solve(query, database)
        })
    }

    /// Fan `items` out over a scoped thread pool and return the per-item
    /// reports (decision or counting) in input order.  Workers pull the
    /// next unclaimed index from a shared atomic cursor (work stealing), so
    /// skewed per-instance costs balance; output order is fixed by index,
    /// not completion order.
    fn run_batch<T, R, F>(&self, items: &[T], solve_one: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Engine, &T) -> R + Sync,
    {
        let workers = self.effective_workers().min(items.len());
        if workers <= 1 {
            return items.iter().map(|item| solve_one(self, item)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            produced.push((i, solve_one(self, item)));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                let produced = handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                for (i, report) in produced {
                    out[i] = Some(report);
                }
            }
        });
        out.into_iter()
            .map(|r| r.expect("every batch index solved exactly once"))
            .collect()
    }

    /// Plan cache behaviour so far, aggregated across shards and worker
    /// threads.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-query exponential work performed by this engine so far,
    /// aggregated across all threads that prepared through it (see
    /// [`PrepStats`]).
    pub fn prep_stats(&self) -> PrepStats {
        self.prep.snapshot()
    }

    /// Instance-index cache behaviour so far (one index build per distinct
    /// database, shared by decision and counting traffic).
    pub fn index_stats(&self) -> IndexStats {
        self.indexes.stats()
    }

    /// Every plan this engine currently holds — the cached plans of all
    /// shards plus registered plans that outlived eviction — deduplicated
    /// by fingerprint and sorted by it, so the snapshot (and therefore a
    /// saved store's bytes) is deterministic.
    fn snapshot_plans(&self) -> Vec<Arc<PreparedQuery>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for shard in &self.cache.shards {
            for slot in &shard.lock().expect("cache shard lock").slots {
                if seen.insert(slot.plan.fingerprint()) {
                    out.push(Arc::clone(&slot.plan));
                }
            }
        }
        for plan in self.registered.lock().expect("registry lock").iter() {
            if seen.insert(plan.fingerprint()) {
                out.push(Arc::clone(plan));
            }
        }
        out.sort_by_key(|p| p.fingerprint());
        out
    }

    /// Persist every currently held plan (cached and registered) to a
    /// [`crate::persist::PlanStore`] file at `path`, returning how many
    /// plans were written.  Lazily materialized artifacts (sentence,
    /// staircase, counting certificates) are saved exactly as far as
    /// traffic has forced them — a loader materializes the rest on first
    /// use, like any in-process plan.
    pub fn save_plans(&self, path: impl AsRef<std::path::Path>) -> Result<u64, PersistError> {
        let plans = self.snapshot_plans();
        let mut store = PlanStore::new(self.config);
        for plan in &plans {
            store.push_plan(plan);
        }
        // Fold in evicted-but-persisted records no longer live in any
        // shard, so a restart warm-starts every fingerprint this engine
        // ever prepared — churned out or not.
        let mut merged = 0u64;
        if let Some(sink) = &self.eviction {
            let live: std::collections::HashSet<u64> =
                plans.iter().map(|p| p.fingerprint()).collect();
            let evicted = sink
                .store
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for record in evicted.records() {
                if !live.contains(&record.fingerprint()) {
                    store.push_raw_record(record.fingerprint(), record.payload().to_vec());
                    merged += 1;
                }
            }
            store.sort_by_fingerprint();
        }
        store.write_to(path)?;
        let total = plans.len() as u64 + merged;
        self.prep.plans_saved.fetch_add(total, Ordering::Relaxed);
        Ok(total)
    }

    /// Warm-start the sharded plan cache from a plan-store file: decode
    /// each record, verify it against this engine's configuration
    /// ([`PreparedQuery::verify`] — fingerprint, hom-equivalence of the
    /// evaluated core, certificate validity, threshold consistency), and
    /// cache the survivors.  Rejected records are counted
    /// ([`PrepStats::plans_rejected`]) and skipped: the queries they would
    /// have served fall back to a cold prepare on first sight, so a
    /// corrupted or stale store can cost time but never a wrong answer.
    ///
    /// File-level failures (missing file, foreign bytes, version mismatch,
    /// whole-file checksum) are returned as [`PersistError`]; the engine is
    /// unchanged in that case.
    pub fn load_plans(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<WarmStartSummary, PersistError> {
        let store = PlanStore::read_from(path)?;
        Ok(self.adopt_store(&store))
    }

    /// [`Engine::load_plans`], from an in-memory store image (the unit the
    /// corruption tests drive directly).
    pub fn adopt_store(&self, store: &PlanStore) -> WarmStartSummary {
        let mut summary = WarmStartSummary {
            loaded: 0,
            rejected: store.corrupt_records(),
        };
        let compatible =
            store.config().plan_compatible(&self.config) && self.cache.total_capacity > 0;
        for record in store.records() {
            if !compatible {
                summary.rejected += 1;
                continue;
            }
            let plan = match record.decode_plan() {
                Ok(plan) => plan,
                Err(_) => {
                    summary.rejected += 1;
                    continue;
                }
            };
            if plan.fingerprint() != record.fingerprint()
                || plan.verify(&self.config).is_err()
                || self
                    .cache
                    .find(plan.fingerprint(), plan.original())
                    .is_some()
            {
                summary.rejected += 1;
                continue;
            }
            let evicted = self.cache.insert(Arc::new(plan));
            self.persist_evicted(evicted);
            summary.loaded += 1;
        }
        self.prep
            .plans_loaded
            .fetch_add(summary.loaded, Ordering::Relaxed);
        self.prep
            .plans_rejected
            .fetch_add(summary.rejected, Ordering::Relaxed);
        summary
    }

    /// Builder form of [`Engine::load_plans`]: construct the engine, then
    /// warm-start it from `path` — `Engine::new(config).with_plan_store(p)`
    /// is the restart counterpart of a long-running engine's
    /// [`Engine::save_plans`].
    pub fn with_plan_store(
        self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Engine, PersistError> {
        self.load_plans(path)?;
        Ok(self)
    }

    /// Enable **save-on-eviction**: every plan the LRU evicts from now on
    /// is upserted into an in-memory [`PlanStore`] image and persisted to
    /// `path` by a background writer thread, so a long-running engine
    /// accumulates plans incrementally instead of losing everything that
    /// churned out of the cache before the final [`Engine::save_plans`].
    ///
    /// If `path` already holds a plan-compatible store its records seed the
    /// image (nothing previously persisted is clobbered); an unreadable or
    /// incompatible file is ignored and the image starts empty.  Writes are
    /// atomic (temp sibling + rename) and best-effort: an I/O failure skips
    /// that flush, and the next eviction retries with the fuller image.
    /// [`Engine::save_plans`] folds the image's records into its own
    /// snapshot, so a graceful shutdown saves every fingerprint ever
    /// prepared — evicted or live.  Dropping the engine joins the writer
    /// after a final flush.
    pub fn with_eviction_store(mut self, path: impl AsRef<std::path::Path>) -> Engine {
        let path = path.as_ref().to_path_buf();
        let seed = match PlanStore::read_from(&path) {
            Ok(existing) if existing.config().plan_compatible(&self.config) => existing,
            _ => PlanStore::new(self.config),
        };
        let store = Arc::new(Mutex::new(seed));
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                // Each wake covers every upsert that preceded it; draining
                // the queue coalesces a burst of evictions into one write.
                while rx.recv().is_ok() {
                    while rx.try_recv().is_ok() {}
                    let image = store
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .to_bytes();
                    let _ = crate::persist::write_image_atomic(&path, &image);
                }
            })
        };
        self.eviction = Some(EvictionSink {
            store,
            wake: Mutex::new(Some(tx)),
            writer: Some(writer),
        });
        self
    }

    /// Hand plans the LRU just evicted to the eviction sink (no-op without
    /// one): upsert into the store image under its lock, then wake the
    /// background writer — the serving thread never touches the file.
    fn persist_evicted(&self, evicted: Vec<Arc<PreparedQuery>>) {
        let Some(sink) = &self.eviction else { return };
        if evicted.is_empty() {
            return;
        }
        {
            let mut store = sink
                .store
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for plan in &evicted {
                store.upsert_plan(plan);
            }
            // Keep the image fingerprint-sorted so its bytes (and a later
            // `save_plans` merge) stay deterministic under eviction order.
            store.sort_by_fingerprint();
        }
        self.prep
            .plans_evicted_persisted
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        if let Some(tx) = sink
            .wake
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
        {
            let _ = tx.send(());
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if let Some(sink) = self.eviction.take() {
            // Dropping the sender lets the writer drain any queued wakes
            // (flushing every upsert) and exit; join so the final image is
            // on disk before the engine is gone.
            drop(
                sink.wake
                    .into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            );
            if let Some(writer) = sink.writer {
                let _ = writer.join();
            }
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("registry", &self.registry)
            .field("count_registry", &self.count_registry)
            .field("aggregate_registry", &self.aggregate_registry)
            .field("cache_shards", &self.cache_shards())
            .field("cache", &self.cache_stats())
            .field("prep", &self.prep_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountMethod;
    use crate::engine::SolverChoice;
    use cq_structures::{families, homomorphism_exists, relabeled};

    #[test]
    fn solve_matches_reference_and_reuses_plans() {
        let engine = Engine::new(EngineConfig::default());
        let queries = [families::star(4), families::cycle(5), families::clique(4)];
        let targets = [families::clique(4), families::grid(3, 3)];
        for _round in 0..2 {
            for a in &queries {
                for b in &targets {
                    let report = engine.solve(a, b);
                    assert_eq!(report.exists, homomorphism_exists(a, b), "{a} -> {b}");
                }
            }
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 3, "one preparation per distinct query");
        assert_eq!(stats.hits as usize, 2 * 3 * 2 - 3);
        assert_eq!(stats.lookups, stats.hits + stats.misses);
        assert_eq!(stats.entries, 3);
        let prep = engine.prep_stats();
        assert_eq!(prep.preparations, 3);
        assert_eq!(prep.core_computations, 3);
    }

    #[test]
    fn register_and_solve_batch() {
        let engine = Engine::new(EngineConfig::default());
        let star = families::star(4);
        let cycle = families::cycle(5);
        let star_id = engine.register(&star);
        let cycle_id = engine.register(&cycle);
        let targets: Vec<Structure> = (3..7).map(families::clique).collect();
        let batch: Vec<(QueryId, &Structure)> = targets
            .iter()
            .flat_map(|t| [(star_id, t), (cycle_id, t)])
            .collect();
        let reports = engine.solve_batch(&batch);
        assert_eq!(reports.len(), batch.len());
        for ((id, t), report) in batch.iter().zip(&reports) {
            let q = if *id == star_id { &star } else { &cycle };
            assert_eq!(report.exists, homomorphism_exists(q, t), "{q} -> {t}");
        }
    }

    #[test]
    fn parallel_batch_returns_sequential_results_in_input_order() {
        let sequential = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let parallel = Engine::new(EngineConfig {
            workers: 8,
            ..EngineConfig::default()
        });
        let queries = [families::star(4), families::cycle(7), families::clique(4)];
        let targets: Vec<Structure> = (3..8).map(families::clique).collect();
        let batch: Vec<(&Structure, &Structure)> = queries
            .iter()
            .flat_map(|q| targets.iter().map(move |t| (q, t)))
            .collect();
        let seq_reports = sequential.solve_batch_instances(&batch);
        let par_reports = parallel.solve_batch_instances(&batch);
        assert_eq!(seq_reports, par_reports);
        // Both engines prepared each distinct query exactly once.
        assert_eq!(sequential.prep_stats().preparations, 3);
        assert_eq!(parallel.prep_stats().preparations, 3);
    }

    #[test]
    fn registering_an_equivalent_query_hits_the_cache() {
        let engine = Engine::new(EngineConfig::default());
        let c7 = families::cycle(7);
        let perm: Vec<usize> = (0..7).rev().collect();
        let id1 = engine.register(&c7);
        let id2 = engine.register(&relabeled(&c7, &perm));
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 1);
        // Both handles resolve to the same plan.
        assert!(Arc::ptr_eq(&engine.prepared(id1), &engine.prepared(id2)));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_plan() {
        // One shard so global LRU order is exact (the property under test).
        let engine = Engine::new(EngineConfig::default())
            .with_cache_shards(1)
            .with_cache_capacity(2);
        let a = families::star(3);
        let b = families::star(4);
        let c = families::star(5);
        let t = families::clique(3);
        engine.solve(&a, &t); // miss -> {a}
        engine.solve(&b, &t); // miss -> {a, b}
        engine.solve(&a, &t); // hit, a most recent
        engine.solve(&c, &t); // miss, evicts b
        engine.solve(&a, &t); // hit
        engine.solve(&b, &t); // miss again (was evicted)
        let stats = engine.cache_stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.lookups, 6);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = Engine::new(EngineConfig::default()).with_cache_capacity(0);
        let a = families::star(3);
        let t = families::clique(3);
        engine.solve(&a, &t);
        engine.solve(&a, &t);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately_and_zero_disables() {
        let engine = Engine::new(EngineConfig::default()).with_cache_shards(1);
        let t = families::clique(3);
        for legs in 3..8 {
            engine.solve(&families::star(legs), &t);
        }
        assert_eq!(engine.cache_stats().entries, 5);
        // Shrink below the population: trims to the new capacity at once.
        let engine = engine.with_cache_capacity(2);
        assert_eq!(engine.cache_stats().entries, 2);
        assert_eq!(engine.cache_stats().evictions, 3);
        // Shrink to zero after use: caching is actually off.
        let engine = engine.with_cache_capacity(0);
        assert_eq!(engine.cache_stats().entries, 0);
        let before = engine.cache_stats();
        engine.solve(&families::star(3), &t);
        engine.solve(&families::star(3), &t);
        let after = engine.cache_stats();
        assert_eq!(after.hits, before.hits, "no hits once disabled");
        assert_eq!(after.entries, 0);
    }

    #[test]
    fn sharded_cache_caps_total_entries() {
        let engine = Engine::new(EngineConfig::default())
            .with_cache_shards(4)
            .with_cache_capacity(8);
        let t = families::clique(3);
        for legs in 3..20 {
            engine.solve(&families::star(legs), &t);
        }
        let stats = engine.cache_stats();
        assert!(
            stats.entries <= 8,
            "entries {} exceed total capacity",
            stats.entries
        );
        assert!(stats.evictions > 0, "17 distinct plans into 8 slots");
        assert_eq!(stats.lookups, stats.hits + stats.misses);
    }

    #[test]
    fn resharding_rehashes_cached_plans_without_losing_them() {
        let engine = Engine::new(EngineConfig::default())
            .with_cache_shards(4)
            .with_cache_capacity(8);
        let t = families::clique(3);
        let queries: Vec<Structure> = (3..7).map(families::star).collect();
        for q in &queries {
            engine.solve(q, &t);
        }
        assert_eq!(engine.cache_stats().entries, 4);
        // 4 entries fit any single shard's share of 8, so every plan
        // survives the rehash and every query still hits.
        let engine = engine.with_cache_shards(2);
        assert_eq!(engine.cache_shards(), 2);
        assert_eq!(engine.cache_stats().entries, 4);
        let hits_before = engine.cache_stats().hits;
        for q in &queries {
            engine.solve(q, &t);
        }
        assert_eq!(engine.cache_stats().hits, hits_before + 4);
        assert_eq!(engine.prep_stats().preparations, 4);
    }

    #[test]
    fn relabelled_lookups_are_verified_once_then_memoized() {
        let engine = Engine::new(EngineConfig::default());
        let c7 = families::cycle(7);
        let perm: Vec<usize> = (0..7).rev().collect();
        let twisted = relabeled(&c7, &perm);
        engine.prepare(&c7);
        // Repeated lookups of the same relabelled form all hit; the
        // hom-equivalence verification runs only on the first (observable
        // here as: answers stay correct and every lookup is a hit).
        for _ in 0..3 {
            let plan = engine.prepare(&twisted);
            assert!(std::sync::Arc::ptr_eq(&plan, &engine.prepare(&c7)));
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 6);
    }

    #[test]
    fn decision_and_counting_share_one_cached_plan() {
        let engine = Engine::new(EngineConfig::default());
        let p4 = families::path(4);
        let k3 = families::clique(3);
        // Decision first: prepares the plan (core K2, widths of the core).
        let decision = engine.solve(&p4, &k3);
        assert!(decision.exists);
        assert_eq!(decision.evaluated_query_size, 2, "decision ran on the core");
        // Counting reuses the same plan (a cache hit) but counts the
        // original: #hom(P4, K3) = 3·2·2·2 = 24, not #hom(K2, K3) = 6.
        let count = engine.count_instance(&p4, &k3);
        assert_eq!(count.count, 24);
        assert_eq!(count.counted_query_size, 4);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "one plan serves both kinds of traffic");
        assert_eq!(stats.hits, 1);
        let prep = engine.prep_stats();
        assert_eq!(prep.preparations, 1);
        assert_eq!(
            prep.counting_preparations, 1,
            "P4's core is proper, so counting materialized its own certificates"
        );
        // Decision analysis + counting analysis: two of each width DP.
        assert_eq!(prep.treewidth_calls, 2);
    }

    #[test]
    fn cached_plan_counting_runs_zero_additional_decomposition_passes() {
        let engine = Engine::new(EngineConfig::default());
        let queries = [families::path(4), families::star(3), families::cycle(5)];
        let targets = [families::clique(3), families::clique(4)];
        // Warm: first counting pass materializes every counting certificate.
        for q in &queries {
            for t in &targets {
                engine.count_instance(q, t);
            }
        }
        let warm = engine.prep_stats();
        // Cached run: same traffic again — no width DP, no core computation,
        // no counting-certificate materialization may run.
        for q in &queries {
            for t in &targets {
                engine.count_instance(q, t);
            }
        }
        assert_eq!(
            engine.prep_stats(),
            warm,
            "cached counting re-ran prep work"
        );
    }

    #[test]
    fn counting_serves_relabelled_forms_from_the_cached_plan() {
        let engine = Engine::new(EngineConfig::default());
        let c5 = families::cycle(5);
        let perm: Vec<usize> = (0..5).rev().collect();
        let twisted = relabeled(&c5, &perm);
        let t = families::clique(4);
        let direct = engine.count_instance(&c5, &t);
        let via_alias = engine.count_instance(&twisted, &t);
        // Counts are isomorphism-invariant, so the alias may (and does)
        // reuse the plan.
        assert_eq!(direct.count, via_alias.count);
        assert_eq!(engine.prep_stats().preparations, 1);
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn count_star_prepares_the_oracle_query_once() {
        // Lemma 6.2 over cached plans: 2^3 - 1 = 7 subset oracle calls, all
        // with left-hand side C3 — one preparation, the rest cache hits.
        let engine = Engine::new(EngineConfig::default());
        let c3 = families::cycle(3);
        let colored =
            cq_structures::ops::colored_target(3, &families::clique(4), |_| (0..4).collect());
        let got = engine.count_star(&c3, &colored);
        let direct = cq_structures::count_homomorphisms_bruteforce(
            &cq_structures::star_expansion(&c3),
            &colored,
        );
        assert_eq!(got, direct);
        let prep = engine.prep_stats();
        assert_eq!(prep.preparations, 1, "one plan for all 7 oracle calls");
        assert!(prep.counting_preparations <= 1);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, stats.lookups - 1);
    }

    #[test]
    fn ablated_count_registry_changes_method_not_counts() {
        let cfg = EngineConfig::default();
        let full = Engine::new(cfg);
        let ablated = Engine::new(cfg)
            .with_count_registry(CountRegistry::standard().without(CountMethod::ForestSumProduct));
        let star = families::star(4);
        for t in [families::clique(3), families::cycle(6)] {
            let r_full = full.count_instance(&star, &t);
            let r_ablated = ablated.count_instance(&star, &t);
            assert_eq!(r_full.method, CountMethod::ForestSumProduct);
            assert_eq!(r_ablated.method, CountMethod::TreeDecompositionDp);
            assert_eq!(r_full.count, r_ablated.count);
        }
    }

    #[test]
    #[should_panic(expected = "issued by a different Engine")]
    fn query_ids_are_not_transferable_between_engines() {
        let engine_a = Engine::new(EngineConfig::default());
        let engine_b = Engine::new(EngineConfig::default());
        // Give engine_b a registration at index 0 so a silent index-based
        // resolution would *succeed* (with the wrong plan) if unguarded.
        let _ = engine_b.register(&families::clique(4));
        let id_a = engine_a.register(&families::star(3));
        let _ = engine_b.prepared(id_a);
    }

    #[test]
    fn ablated_registry_changes_dispatch_not_answers() {
        let cfg = EngineConfig::default();
        let full = Engine::new(cfg);
        let ablated = Engine::with_registry(
            cfg,
            SolverRegistry::standard(&cfg).without(SolverChoice::TreeDepth),
        );
        let a = families::star(5);
        for b in [families::clique(3), families::cycle(6)] {
            let r_full = full.solve(&a, &b);
            let r_ablated = ablated.solve(&a, &b);
            assert_eq!(r_full.choice, SolverChoice::TreeDepth);
            assert_eq!(r_ablated.choice, SolverChoice::PathDecomposition);
            assert_eq!(r_full.exists, r_ablated.exists);
        }
    }

    #[test]
    fn small_total_capacity_never_zeroes_a_shard() {
        // Capacity below the default shard count used to leave some shards
        // with zero slots, silently disabling caching for every query
        // hashing there.  The effective shard count is clamped instead.
        let engine = Engine::new(EngineConfig::default()).with_cache_capacity(4);
        assert_eq!(engine.cache_shards(), 4, "clamped from the default 8");
        let t = families::clique(3);
        let queries: Vec<Structure> = (3..7).map(families::star).collect();
        for q in &queries {
            engine.solve(q, &t);
            engine.solve(q, &t);
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 4, "every query cached on first sight");
        assert_eq!(stats.hits, 4, "every repeat served from the cache");
        // Raising the capacity later restores the requested shard spread.
        let engine = engine.with_cache_capacity(64);
        assert_eq!(engine.cache_shards(), DEFAULT_CACHE_SHARDS);
    }

    #[test]
    fn panicking_preparation_does_not_wedge_the_fingerprint() {
        // cycle(24) exceeds the exact-DP vertex limit, so preparation
        // panics (use_core = false keeps the 24-vertex graph).  The
        // single-flight latch entry must be cleaned up on the unwind:
        // a retry must panic with the *original* size-limit message, not a
        // stale "preparation latch" error, and unrelated queries must keep
        // working.
        let engine = Engine::new(EngineConfig {
            use_core: false,
            ..EngineConfig::default()
        });
        let too_big = families::cycle(24);
        for attempt in 0..2 {
            let panic =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.prepare(&too_big)))
                    .expect_err("preparation beyond the DP limit must panic");
            let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                message.contains("is exponential"),
                "attempt {attempt} panicked with {message:?} instead of the size-limit error"
            );
        }
        // The engine is still fully usable afterwards.
        let report = engine.solve(&families::star(3), &families::clique(3));
        assert!(report.exists);
    }

    #[test]
    fn instance_indexes_are_built_once_per_database_across_decide_and_count() {
        let engine = Engine::new(EngineConfig::default());
        let queries = [families::star(4), families::path(4)];
        let targets = [families::clique(3), families::clique(4)];
        for _round in 0..3 {
            for q in &queries {
                for t in &targets {
                    let decision = engine.solve(q, t);
                    let count = engine.count_instance(q, t);
                    assert_eq!(decision.exists, count.count.positive(), "{q} -> {t}");
                }
            }
        }
        let stats = engine.index_stats();
        assert_eq!(stats.misses, 2, "one index build per distinct database");
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.lookups, stats.hits + stats.misses);
        // 3 rounds × 2 queries × 2 targets × (decide + count) = 24 lookups.
        assert_eq!(stats.lookups, 24);
    }

    #[test]
    fn repeat_index_lookups_hash_the_database_once() {
        let engine = Engine::new(EngineConfig::default());
        let db = families::clique(4);
        let first = engine.instance_index(&db);
        for _ in 0..9 {
            assert!(Arc::ptr_eq(&first, &engine.instance_index(&db)));
        }
        let stats = engine.index_stats();
        assert_eq!(stats.lookups, 10);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 9);
        assert_eq!(
            stats.hash_computes, 1,
            "repeat lookups of an unchanged database must not rehash it"
        );
        // A clone shares the content token, so it rides the O(1) path too.
        assert!(Arc::ptr_eq(&first, &engine.instance_index(&db.clone())));
        assert_eq!(engine.index_stats().hash_computes, 1);
        // A structurally equal but independently built object carries a
        // fresh token: it pays one hash to find the shared index, then its
        // token is aliased and later lookups are O(1) again.
        let rebuilt = families::clique(4);
        assert!(Arc::ptr_eq(&first, &engine.instance_index(&rebuilt)));
        assert_eq!(engine.index_stats().hash_computes, 2);
        assert!(Arc::ptr_eq(&first, &engine.instance_index(&rebuilt)));
        let stats = engine.index_stats();
        assert_eq!(stats.hash_computes, 2);
        assert_eq!(stats.misses, 1, "one build for all of the above");
        assert_eq!(stats.lookups, stats.hits + stats.misses);
    }

    #[test]
    fn apply_delta_maintains_the_cached_index_in_place() {
        use cq_structures::{count_homomorphisms_bruteforce, DeltaBatch};

        let engine = Engine::new(EngineConfig::default());
        let query = families::star(3);
        let db = families::clique(4);
        let e = db.vocabulary().id_of("E").expect("graph vocabulary");

        // Warm: decision + counting traffic builds and caches one index.
        assert!(engine.solve(&query, &db).exists);
        let warm_count = engine.count_instance(&query, &db);
        assert_eq!(
            warm_count.count,
            count_homomorphisms_bruteforce(&query, &db)
        );
        let before = engine.index_stats();
        assert_eq!(before.misses, 1);

        // Delete one K4 edge in place; query the post-delta state through
        // the report's database so the content token routes to the
        // maintained index.
        let mut batch = DeltaBatch::new();
        batch.delete(e, vec![0, 1]);
        let report = engine.apply_delta(&db, &batch).expect("valid batch");
        assert_eq!(report.applied().deletions().len(), 1);
        assert!(report.version() > 0);
        let mutated = report.database().clone();
        assert_ne!(&mutated, &db, "the cached structure advanced");
        let count = engine.count_instance(&query, &mutated);
        assert_eq!(
            count.count,
            count_homomorphisms_bruteforce(&query, &mutated)
        );
        assert!(engine.solve(&query, &mutated).exists);
        let after = engine.index_stats();
        assert_eq!(
            after.misses, before.misses,
            "the delta path must never rebuild the index"
        );
        assert_eq!(
            after.hash_computes, before.hash_computes,
            "the delta path and post-delta queries must never rehash"
        );

        // Reinsert the edge: content returns to the original, and a second
        // engine agrees from cold on every round.
        let mut undo = DeltaBatch::new();
        undo.insert(e, vec![0, 1]);
        let report = engine.apply_delta(&mutated, &undo).expect("valid batch");
        assert_eq!(report.database(), &db, "insert ∘ delete is the identity");
        let cold = Engine::new(EngineConfig::default());
        assert_eq!(
            engine.count_instance(&query, report.database()).count,
            cold.count_instance(&query, report.database()).count
        );

        // Whole-batch validation: an out-of-universe element fails without
        // touching the cache.
        let mut bad = DeltaBatch::new();
        bad.insert(e, vec![0, 99]);
        let entries_before = engine.index_stats().entries;
        assert!(engine.apply_delta(report.database(), &bad).is_err());
        assert_eq!(engine.index_stats().entries, entries_before);
    }

    #[test]
    fn chained_deltas_run_without_rebuilds_rehashes_or_structure_handles() {
        use cq_structures::{count_homomorphisms_bruteforce, DeltaBatch};

        let engine = Engine::new(EngineConfig::default());
        let query = families::star(3);
        let db = families::clique(4);
        let e = db.vocabulary().id_of("E").expect("graph vocabulary");

        // Round 0 comes in by `&Structure`; every later round consumes the
        // previous report, so the caller holds no handle that would force a
        // copy-on-write.
        let mut batch = DeltaBatch::new();
        batch.delete(e, vec![0, 1]);
        let mut report = engine.apply_delta(&db, &batch).expect("valid batch");
        let id = report.index().id();
        let baseline = engine.index_stats();

        // Toggle the edge back and forth through the chained form: same
        // index identity, monotone version, no build, no rehash.
        for round in 0..7u64 {
            let mut batch = DeltaBatch::new();
            if round % 2 == 0 {
                batch.insert(e, vec![0, 1]);
            } else {
                batch.delete(e, vec![0, 1]);
            }
            report = engine
                .apply_delta_chained(report, &batch)
                .expect("valid batch");
            assert_eq!(report.index().id(), id, "identity survives the chain");
            assert_eq!(report.version(), round + 2, "one version per round");
            assert_eq!(
                engine.count_instance(&query, report.database()).count,
                count_homomorphisms_bruteforce(&query, report.database())
            );
        }
        assert_eq!(report.database(), &db, "the last toggle reinserts the edge");
        let after = engine.index_stats();
        // A per-engine miss is the only event that can build an index here,
        // so flat misses prove zero rebuilds (the global build counter is
        // shared across parallel tests and can't be asserted exactly).
        assert_eq!(after.misses, baseline.misses, "chained rounds never miss");
        assert_eq!(
            after.hash_computes, baseline.hash_computes,
            "chained rounds never rehash"
        );

        // A validation error rejects the batch whole and keeps the
        // pre-delta index cached: a kept clone of the report still routes
        // to it, and its content is unchanged.
        let keep = report.clone();
        let mut bad = DeltaBatch::new();
        bad.insert(e, vec![0, 99]);
        assert!(engine.apply_delta_chained(report, &bad).is_err());
        assert_eq!(keep.database(), &db);
        let misses = engine.index_stats().misses;
        assert!(engine.solve(&query, keep.database()).exists);
        assert_eq!(
            engine.index_stats().misses,
            misses,
            "the pre-delta index is still served after a rejected batch"
        );
    }

    #[test]
    fn zero_index_capacity_disables_index_caching() {
        let engine = Engine::new(EngineConfig::default()).with_index_cache_capacity(0);
        let q = families::star(3);
        let t = families::clique(3);
        engine.solve(&q, &t);
        engine.solve(&q, &t);
        let stats = engine.index_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn index_cache_shares_one_build_across_batch_workers() {
        let engine = Engine::new(EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        });
        let queries = [families::star(4), families::cycle(5), families::path(4)];
        let target = families::clique(4);
        let target_ref = &target;
        let batch: Vec<(&Structure, &Structure)> = queries
            .iter()
            .flat_map(|q| (0..8).map(move |_| (q, target_ref)))
            .collect();
        let reports = engine.solve_batch_instances(&batch);
        assert_eq!(reports.len(), 24);
        let stats = engine.index_stats();
        assert_eq!(stats.entries, 1, "one shared database, one cached index");
        // Racing workers may build the one index more than once (builds are
        // idempotent and not single-flighted), but never once per instance.
        assert!(
            stats.misses < batch.len() as u64 / 2,
            "index cache ineffective under fan-out: {stats:?}"
        );
        assert_eq!(stats.lookups, stats.hits + stats.misses);
    }

    #[test]
    fn concurrent_prepares_of_one_query_are_single_flighted() {
        let engine = Engine::new(EngineConfig::default());
        let query = families::cycle(7);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let plan = engine.prepare(&query);
                    assert_eq!(plan.fingerprint(), engine.prepare(&query).fingerprint());
                });
            }
        });
        let stats = engine.cache_stats();
        assert_eq!(stats.lookups, 16);
        assert_eq!(stats.misses, 1, "one preparation despite 8 racing threads");
        assert_eq!(stats.hits, 15);
        assert_eq!(engine.prep_stats().preparations, 1);
    }
}
