//! # cq-core — the fine classification of conjunctive query classes
//!
//! The primary contribution of Chen & Müller (PODS 2013) is the
//! Classification Theorem (Theorem 3.1): for a decidable class `A` of
//! structures of bounded arity whose cores have bounded treewidth, the
//! problem `p-HOM(A)` falls into exactly one of three degrees under
//! pl-reductions — equivalent to `p-HOM(T*)` (the class TREE), equivalent to
//! `p-HOM(P*)` (the class PATH), or solvable in `para-L` — and which degree
//! applies is determined by whether the *cores* of `A` have bounded
//! pathwidth and bounded tree depth.  Theorem 6.1 gives the analogous
//! counting classification.
//!
//! This crate implements that classification as an executable object:
//!
//! * [`Degree`] — the degrees of the decision classification, plus the
//!   `W[1]`-hard degree outside the bounded-treewidth regime (Grohe's
//!   theorem, quoted as background in the paper);
//! * [`classify_members`] — exact per-member analysis of a finite family
//!   (cores, width profile of the cores);
//! * [`classify_generated`] — classification of an infinite class presented
//!   by a generator, by sampling a prefix and detecting which width measures
//!   of the cores grow without bound;
//! * the **prepared-query engine** — the "preprocess the query once, answer
//!   against many databases" layer:
//!   - [`prepared`] / [`PreparedQuery`] — the once-per-query artifact (core,
//!     Gaifman graph, width profile **with** decomposition certificates);
//!   - [`registry`] / [`HomSolver`] — the solver trait and the
//!     priority-ordered registry (tree-depth sentence evaluation /
//!     path-decomposition sweep / tree-decomposition DP / backtracking),
//!     where ablations (experiment E12) are registry edits;
//!   - [`counting`] / [`CountSolver`] — the Theorem 6.1 counting analogue:
//!     a priority-ordered [`CountRegistry`] (elimination-forest sum–product
//!     / tree-decomposition counting DP / brute force) dispatching on the
//!     **original** query's widths, because counting — unlike decision —
//!     is not invariant under taking cores;
//!   - [`answers`] — free-variable answers: [`Engine::count_answers`]
//!     counts the distinct projections of the homomorphisms onto a query's
//!     free variables, and [`Engine::answers`] enumerates them in pages
//!     with bounded delay through the free-adjoined decomposition DP of
//!     [`cq_solver::kernel::AnswerProgram`];
//!   - [`aggregates`] / [`AggregateSolver`] — the weighted generalization:
//!     min-cost / max-weight homomorphisms through the same kernel DPs
//!     instantiated at the tropical semirings ([`Engine::evaluate_min_cost`],
//!     [`Engine::evaluate_max_weight`]), sharing counting's structural
//!     licences and compiled programs;
//!   - [`service`] / [`Engine`] — the sharded LRU plan cache keyed by an
//!     isomorphism-invariant query fingerprint (single-flight preparation
//!     under concurrent misses), the parallel batch evaluation APIs
//!     ([`Engine::solve_batch`], [`Engine::count_batch`], worker count via
//!     [`EngineConfig`]), and the engine-backed Lemma 6.2 reduction
//!     [`Engine::count_star`];
//!   - [`engine`] — configuration, reports, and the single-instance
//!     compatibility wrappers [`solve_instance`] / [`count_instance`];
//!   - [`persist`] / [`PlanStore`] — the versioned, checksummed on-disk
//!     plan store: [`Engine::save_plans`] snapshots the cache,
//!     [`Engine::load_plans`] / [`Engine::with_plan_store`] warm-start a
//!     fresh engine with every loaded plan verified before reuse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod answers;
pub mod counting;
pub mod engine;
pub mod persist;
pub mod prepared;
pub mod registry;
pub mod service;

use cq_decomp::{width_profile, WidthProfile};
use cq_graphs::gaifman_graph;
use cq_structures::{core_of, Structure};

pub use aggregates::{
    AggregateObjective, AggregateRegistry, AggregateReport, AggregateSolver, ForestAggregateSolver,
    SearchAggregateSolver, TreeDecAggregateSolver,
};
pub use answers::{AnswerCountReport, AnswerMethod, AnswerPage};
pub use counting::{
    count_instance, BruteForceCountSolver, CountEvaluation, CountMethod, CountOutcome,
    CountRegistry, CountReport, CountSolver, ForestCountSolver, TreeDecCountSolver,
};
pub use engine::{solve_instance, EngineConfig, EngineReport, SolverChoice};
pub use persist::{
    PersistError, PlanStore, StoredPlan, WarmStartSummary, PLAN_STORE_MAGIC, PLAN_STORE_VERSION,
};
pub use prepared::PreparedQuery;
pub use registry::{
    BacktrackSolver, HomSolver, PathDpSolver, SolveOutcome, SolverRegistry, TreeDecSolver,
    TreeDepthSolver,
};
pub use service::{
    CacheStats, DeltaReport, Engine, IndexStats, PrepStats, QueryId, DEFAULT_CACHE_SHARDS,
    DEFAULT_INDEX_CACHE_CAPACITY, DEFAULT_PLAN_CACHE_CAPACITY,
};

/// The degrees of the fine classification (Theorem 3.1, plus the
/// intractable degree of Grohe's classification for context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Degree {
    /// `p-HOM(A) ∈ para-L` — the cores have bounded tree depth
    /// (Theorem 3.1 (3)).
    ParaL,
    /// `p-HOM(A) ≡pl p-HOM(P*)` — bounded pathwidth, unbounded tree depth
    /// (Theorem 3.1 (2)); complete for the class PATH.
    PathComplete,
    /// `p-HOM(A) ≡pl p-HOM(T*)` — bounded treewidth, unbounded pathwidth
    /// (Theorem 3.1 (1)); complete for the class TREE.
    TreeComplete,
    /// Outside the scope of Theorem 3.1: the cores have unbounded treewidth,
    /// so `p-HOM(A)` is `W[1]`-hard by Grohe's classification (quoted in the
    /// introduction of the paper).
    W1Hard,
}

impl Degree {
    /// The degree dictated by the three boundedness answers about the cores
    /// of the class (treewidth, pathwidth, tree depth) — the statement of
    /// Theorem 3.1.
    pub fn from_boundedness(
        bounded_treewidth: bool,
        bounded_pathwidth: bool,
        bounded_treedepth: bool,
    ) -> Degree {
        if !bounded_treewidth {
            Degree::W1Hard
        } else if !bounded_pathwidth {
            Degree::TreeComplete
        } else if !bounded_treedepth {
            Degree::PathComplete
        } else {
            Degree::ParaL
        }
    }
}

/// The exact analysis of one class member: its core and the width profile of
/// the core's Gaifman graph.
#[derive(Debug, Clone)]
pub struct MemberAnalysis {
    /// Universe size of the member.
    pub size: usize,
    /// Universe size of its core.
    pub core_size: usize,
    /// Width profile (treewidth, pathwidth, tree depth) of the core.
    pub core_widths: WidthProfile,
}

/// Analyse every member of a finite family exactly.
pub fn classify_members(members: &[Structure]) -> Vec<MemberAnalysis> {
    members
        .iter()
        .map(|m| {
            let core = core_of(m).core;
            MemberAnalysis {
                size: m.universe_size(),
                core_size: core.universe_size(),
                core_widths: width_profile(&gaifman_graph(&core)),
            }
        })
        .collect()
}

/// The outcome of classifying a generated (infinite) class from a sampled
/// prefix.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The inferred degree.
    pub degree: Degree,
    /// Per-sample analyses (in generator order).
    pub samples: Vec<MemberAnalysis>,
    /// Largest core treewidth observed.
    pub max_core_treewidth: usize,
    /// Largest core pathwidth observed.
    pub max_core_pathwidth: usize,
    /// Largest core tree depth observed.
    pub max_core_treedepth: usize,
    /// Which measures were judged to grow without bound.
    pub growing: GrowthFlags,
}

/// Which of the three measures appear to grow along the sampled prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GrowthFlags {
    /// Core treewidth grows.
    pub treewidth: bool,
    /// Core pathwidth grows.
    pub pathwidth: bool,
    /// Core tree depth grows.
    pub treedepth: bool,
}

/// Judge whether a sampled width sequence is growing without bound: the
/// maximum over the last two thirds strictly exceeds the value one third of
/// the way in.  (Width measures of structured families either stabilize —
/// bounded — or keep creeping up, possibly slowly, e.g. logarithmically for
/// the tree depth of paths; this test distinguishes the two on the sampled
/// prefix.)
fn grows(values: &[usize]) -> bool {
    if values.len() < 3 {
        return false;
    }
    let third = values[values.len() / 3];
    let later_max = values[values.len() / 3..]
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    later_max > third
}

/// Classify a class presented by a generator `gen(i)` for `i = 0, 1, …`,
/// sampling `samples` members.
///
/// The growth detection is a *semi-decision* heuristic (Theorem 3.1's
/// hypotheses are about all members, which no algorithm can inspect); for
/// the structured families used in the paper and the experiments — paths,
/// cycles, trees, grids, `B_k`, stars, caterpillars, cliques — sampling a
/// modest prefix identifies the degree correctly, and the returned
/// [`Classification::samples`] lets callers audit the decision.
pub fn classify_generated(gen: impl Fn(usize) -> Structure, samples: usize) -> Classification {
    let members: Vec<Structure> = (0..samples).map(gen).collect();
    let analyses = classify_members(&members);
    let tw: Vec<usize> = analyses.iter().map(|a| a.core_widths.treewidth).collect();
    let pw: Vec<usize> = analyses.iter().map(|a| a.core_widths.pathwidth).collect();
    let td: Vec<usize> = analyses.iter().map(|a| a.core_widths.treedepth).collect();
    let growing = GrowthFlags {
        treewidth: grows(&tw),
        pathwidth: grows(&pw),
        treedepth: grows(&td),
    };
    let degree =
        Degree::from_boundedness(!growing.treewidth, !growing.pathwidth, !growing.treedepth);
    Classification {
        degree,
        max_core_treewidth: tw.iter().copied().max().unwrap_or(0),
        max_core_pathwidth: pw.iter().copied().max().unwrap_or(0),
        max_core_treedepth: td.iter().copied().max().unwrap_or(0),
        samples: analyses,
        growing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_structures::{families, star_expansion};

    const SAMPLES: usize = 7;

    #[test]
    fn degree_from_boundedness_matches_theorem() {
        assert_eq!(Degree::from_boundedness(true, true, true), Degree::ParaL);
        assert_eq!(
            Degree::from_boundedness(true, true, false),
            Degree::PathComplete
        );
        assert_eq!(
            Degree::from_boundedness(true, false, false),
            Degree::TreeComplete
        );
        assert_eq!(
            Degree::from_boundedness(false, false, false),
            Degree::W1Hard
        );
    }

    #[test]
    fn undirected_paths_collapse_to_para_l() {
        // The core of every undirected path is a single edge, so despite the
        // paths growing, the class sits in para-L.
        let c = classify_generated(|i| families::path(i + 2), SAMPLES);
        assert_eq!(c.degree, Degree::ParaL);
        assert!(c.max_core_treedepth <= 2);
    }

    #[test]
    fn directed_paths_are_path_complete() {
        // Directed paths are cores (Example 2.1) with pathwidth 1 and growing
        // tree depth: degree PATH.
        let c = classify_generated(|i| families::directed_path(i + 2), SAMPLES + 3);
        assert_eq!(c.degree, Degree::PathComplete);
        assert_eq!(c.max_core_pathwidth, 1);
        assert!(c.growing.treedepth);
    }

    #[test]
    fn colored_paths_are_path_complete() {
        // The paper's canonical PATH-complete family P*.
        let c = classify_generated(|i| star_expansion(&families::path(i + 2)), SAMPLES + 3);
        assert_eq!(c.degree, Degree::PathComplete);
    }

    #[test]
    fn colored_trees_are_tree_complete() {
        // The canonical TREE-complete family T*: pathwidth of complete binary
        // trees grows (Example 2.2), treewidth stays 1.
        let c = classify_generated(|i| star_expansion(&families::tree_t(i + 1)), 3);
        assert_eq!(c.degree, Degree::TreeComplete);
        assert_eq!(c.max_core_treewidth, 1);
    }

    #[test]
    fn odd_cycles_are_path_complete() {
        // Odd cycles are cores with pathwidth 2 and growing tree depth.
        let c = classify_generated(|i| families::cycle(2 * i + 3), SAMPLES);
        assert_eq!(c.degree, Degree::PathComplete);
        assert_eq!(c.max_core_pathwidth, 2);
    }

    #[test]
    fn even_cycles_collapse_to_para_l() {
        let c = classify_generated(|i| families::cycle(2 * i + 4), SAMPLES);
        assert_eq!(c.degree, Degree::ParaL);
    }

    #[test]
    fn stars_and_caterpillar_cores_stay_para_l() {
        let stars = classify_generated(|i| families::star(i + 1), SAMPLES);
        assert_eq!(stars.degree, Degree::ParaL);
        let cats = classify_generated(|i| families::caterpillar(i + 1, 2), SAMPLES);
        assert_eq!(cats.degree, Degree::ParaL);
    }

    #[test]
    fn colored_grids_are_w1_hard() {
        // Grids* are cores with growing treewidth: outside Theorem 3.1,
        // W[1]-hard by Grohe's classification.
        let c = classify_generated(|i| star_expansion(&families::grid(i + 1, i + 1)), 4);
        assert_eq!(c.degree, Degree::W1Hard);
        assert!(c.growing.treewidth);
    }

    #[test]
    fn cliques_are_w1_hard() {
        let c = classify_generated(|i| families::clique(i + 1), SAMPLES);
        assert_eq!(c.degree, Degree::W1Hard);
    }

    #[test]
    fn member_analysis_reports_core_shrinkage() {
        let analyses = classify_members(&[families::cycle(6), families::cycle(5)]);
        assert_eq!(analyses[0].core_size, 2);
        assert_eq!(analyses[1].core_size, 5);
        assert!(analyses[0].core_widths.treedepth <= 2);
    }

    #[test]
    fn finite_families_have_everything_bounded() {
        // A single fixed structure: trivially para-L territory.
        let c = classify_generated(|_| families::grid(2, 2), SAMPLES);
        assert_eq!(c.degree, Degree::ParaL);
    }
}
