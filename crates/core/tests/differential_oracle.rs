//! Differential solver oracle: on a seeded corpus of random (query,
//! structure) pairs, every structural solver of the registry
//! ([`TreeDepthSolver`], [`PathDpSolver`], [`TreeDecSolver`]) must return
//! the same decision as the structure-agnostic [`BacktrackSolver`].
//!
//! The backtracking search is the reference because it uses none of the
//! prepared certificates beyond the query itself — a disagreement means a
//! solver (or the certificate it consumed) is wrong.  Failures print the
//! offending pair with the seeds that regenerate it, so every
//! counterexample reproduces exactly.
//!
//! This is the safety net that makes aggressive engine refactors (parallel
//! fan-out, cache sharding) cheap to attempt: any plan-level corruption
//! surfaces as a solver disagreement on some corpus pair.

use cq_core::{
    BacktrackSolver, EngineConfig, HomSolver, PathDpSolver, PreparedQuery, TreeDecSolver,
    TreeDepthSolver,
};
use cq_structures::{homomorphism_exists, Structure, StructureIndex};
use cq_workloads::{random_digraph_structure, random_graph_structure};

/// Thresholds generous enough that every structural solver admits most of
/// the corpus (so the oracle actually compares them), but small enough that
/// the path-sweep frontier (`|B|^{pw+1}`) stays testable.
fn oracle_config() -> EngineConfig {
    EngineConfig {
        treedepth_threshold: 4,
        pathwidth_threshold: 3,
        treewidth_threshold: 3,
        ..EngineConfig::default()
    }
}

/// The seeded corpus: small random undirected and directed queries, each
/// paired with a handful of larger random targets of the same vocabulary.
/// Everything derives from the `(n, seed)` labels in the assertion
/// messages.
fn corpus() -> Vec<(String, Structure, Structure)> {
    let mut pairs = Vec::new();
    for n in 3..6 {
        for seed in 0..4 {
            let query = random_graph_structure(n, 0.45, seed);
            for (tn, tseed) in [(6usize, 100u64), (8, 101), (9, 102)] {
                let target = random_graph_structure(tn, 0.4, tseed + seed);
                pairs.push((
                    format!(
                        "graph q=(n={n}, seed={seed}) t=(n={tn}, seed={})",
                        tseed + seed
                    ),
                    query.clone(),
                    target,
                ));
            }
        }
    }
    for n in 3..6 {
        for seed in 0..4 {
            let query = random_digraph_structure(n, 0.35, seed);
            for (tn, tseed) in [(6usize, 200u64), (8, 201)] {
                let target = random_digraph_structure(tn, 0.35, tseed + seed);
                pairs.push((
                    format!(
                        "digraph q=(n={n}, seed={seed}) t=(n={tn}, seed={})",
                        tseed + seed
                    ),
                    query.clone(),
                    target,
                ));
            }
        }
    }
    pairs
}

#[test]
fn every_registry_solver_agrees_with_backtracking_on_the_corpus() {
    let config = oracle_config();
    let reference = BacktrackSolver::default();
    let structural: [(&str, &dyn HomSolver); 3] = [
        ("TreeDepthSolver", &TreeDepthSolver),
        ("PathDpSolver", &PathDpSolver),
        ("TreeDecSolver", &TreeDecSolver),
    ];

    let mut comparisons = 0usize;
    let mut disagreements = Vec::new();
    for (label, query, target) in corpus() {
        let prepared = PreparedQuery::prepare(&query, &config);
        let index = StructureIndex::new(&target);
        let expected = reference.solve(&prepared, &target, &index).exists;
        // The reference itself must match the brute-force ground truth.
        assert_eq!(
            expected,
            homomorphism_exists(&query, &target),
            "backtracking reference wrong on {label}: {query} -> {target}"
        );
        for (name, solver) in structural {
            if !solver.admits(&prepared, &config) {
                continue;
            }
            comparisons += 1;
            let got = solver.solve(&prepared, &target, &index).exists;
            if got != expected {
                disagreements.push(format!(
                    "{name} says {got}, backtracking says {expected} on {label}:\n  query  {query}\n  target {target}"
                ));
            }
        }
    }
    assert!(
        disagreements.is_empty(),
        "{} solver disagreement(s):\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
    // The oracle must not silently go vacuous (e.g. thresholds drifting so
    // no structural solver ever admits a corpus query).
    assert!(
        comparisons >= 100,
        "only {comparisons} solver comparisons ran — corpus or thresholds degenerated"
    );
}

/// Kernel-vs-reference oracle: every kernel evaluation path (indexed tree
/// DP, staircase sweep, forest decision, whole-query search) must agree
/// with the **retained reference implementation** of its tier on every
/// corpus pair — the differential guarantee that lets the registry
/// dispatch to the kernel while the reference survives as ground truth.
#[test]
fn kernel_solvers_agree_with_the_retained_references_on_the_corpus() {
    use cq_solver::kernel;
    let config = oracle_config();
    let mut comparisons = 0usize;
    let mut disagreements = Vec::new();
    let mut record = |name: &str,
                      label: &str,
                      got: bool,
                      expected: bool,
                      q: &Structure,
                      t: &Structure| {
        if got != expected {
            disagreements.push(format!(
                "{name} kernel says {got}, reference says {expected} on {label}:\n  query  {q}\n  target {t}"
            ));
        }
    };
    for (label, query, target) in corpus() {
        let prepared = PreparedQuery::prepare(&query, &config);
        let index = StructureIndex::new(&target);
        let evaluated = prepared.evaluated();

        // Tree DP: kernel hash-join DP vs the reference BTreeMap DP, on
        // the same prepared certificate.
        let td = &prepared.analysis().tree_decomposition;
        let kernel_tree = kernel::hom_via_tree_decomposition_indexed(evaluated, &index, td);
        let reference_tree = cq_solver::treedec::hom_via_tree_decomposition(evaluated, &target, td);
        record(
            "TreeDec",
            &label,
            kernel_tree.exists,
            reference_tree,
            &query,
            &target,
        );
        comparisons += 1;

        // Path sweep: kernel flat-row sweep vs the reference PartialHom
        // frontier, on the same staircase.
        let stair = prepared.staircase();
        let kernel_path = kernel::hom_via_staircase_indexed(evaluated, &index, stair);
        let reference_path = cq_solver::pathdp::hom_via_staircase(evaluated, &target, stair);
        record(
            "PathDp",
            &label,
            kernel_path.exists,
            reference_path.exists,
            &query,
            &target,
        );
        comparisons += 1;

        // Tree depth: kernel forest recursion vs the reference Lemma 3.3
        // sentence model check.
        let kernel_forest = kernel::hom_via_forest_indexed(
            evaluated,
            &index,
            &prepared.analysis().elimination_forest,
        );
        let reference_sentence =
            cq_solver::treedepth::hom_via_compiled_sentence(prepared.sentence(), &target);
        record(
            "TreeDepth",
            &label,
            kernel_forest.exists,
            reference_sentence.exists,
            &query,
            &target,
        );
        comparisons += 1;

        // Fallback search: kernel whole-query program vs the reference
        // propagating backtracker.
        let (witness, _) = kernel::find_hom_indexed(evaluated, &index, true);
        let reference_bt =
            cq_solver::backtrack::BacktrackSolver::default().exists(evaluated, &target);
        record(
            "Backtrack",
            &label,
            witness.is_some(),
            reference_bt,
            &query,
            &target,
        );
        comparisons += 1;
    }
    assert!(
        disagreements.is_empty(),
        "{} kernel disagreement(s):\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
    assert!(
        comparisons >= 200,
        "only {comparisons} kernel comparisons ran — corpus degenerated"
    );
}

/// The oracle repeated through prepared-plan reuse: solving the same corpus
/// through one engine (warm plan cache, every tier dispatched by the
/// registry) matches brute force.  Guards the cache + dispatch composition
/// rather than individual solvers.
#[test]
fn engine_dispatch_over_the_corpus_matches_brute_force() {
    let engine = cq_core::Engine::new(oracle_config());
    for (label, query, target) in corpus() {
        let report = engine.solve(&query, &target);
        assert_eq!(
            report.exists,
            homomorphism_exists(&query, &target),
            "engine ({:?}) wrong on {label}: {query} -> {target}",
            report.choice
        );
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses);
}
