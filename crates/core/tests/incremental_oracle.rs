//! Differential **incremental-evaluation** oracle: drive an engine through
//! rounds of [`DeltaBatch`] mutations ([`Engine::apply_delta`] /
//! [`Engine::apply_delta_chained`]) and, after **every** round, compare
//! decide, count and min-cost answers on the mutated database against a
//! fresh cold engine that has never seen a delta — the update-regime
//! analogue of `differential_oracle.rs`.
//!
//! The warm engine answers through the delta-maintained [`StructureIndex`]
//! and whatever retained DP join tables survived the round; the cold
//! engine indexes and evaluates from scratch.  A disagreement means the
//! in-place index maintenance, the retained-table reuse, or the weight
//! table maintenance dropped or double-applied part of a delta.
//!
//! Weights are a pure function of the tuple **content** (never the row
//! id), so the incrementally maintained [`TupleWeights`] and the cold
//! engine's freshly built table must assign every tuple the same weight
//! even though churn permutes row ids via swap-remove.

use cq_core::{Engine, EngineConfig};
use cq_structures::{families, Structure, SymbolId, TupleWeights};
use cq_workloads::{mutation_traffic, random_digraph_structure, random_graph_structure};

/// Same thresholds as the other differential oracles: every structural
/// tier admits most of the corpus, tables stay testable.
fn oracle_config() -> EngineConfig {
    EngineConfig {
        treedepth_threshold: 4,
        pathwidth_threshold: 3,
        treewidth_threshold: 3,
        ..EngineConfig::default()
    }
}

/// Deterministic content-keyed weights: a function of the symbol and the
/// tuple's elements only, so maintained and freshly built tables agree by
/// construction whenever both are aligned with the same structure.
fn weight_of(sym: SymbolId, tuple: &[u32]) -> u64 {
    let spread: u64 = tuple
        .iter()
        .enumerate()
        .map(|(pos, &e)| (u64::from(e) + 1) * (pos as u64 * 5 + 3))
        .sum();
    (sym.index() as u64 + 1) * 11 + spread % 97
}

/// One corpus entry: a database plus the queries evaluated against it
/// after every mutation round.
fn corpus() -> Vec<(String, Structure, Vec<Structure>)> {
    vec![
        (
            "graph (n=24, seed=11)".to_string(),
            random_graph_structure(24, 0.2, 11),
            vec![
                families::path(4),
                families::cycle(5),
                families::star(3),
                random_graph_structure(4, 0.5, 3),
            ],
        ),
        (
            "digraph (n=20, seed=13)".to_string(),
            random_digraph_structure(20, 0.25, 13),
            vec![
                random_digraph_structure(3, 0.5, 1),
                random_digraph_structure(4, 0.4, 2),
            ],
        ),
    ]
}

#[test]
fn delta_path_agrees_with_a_cold_engine_after_every_round() {
    const ROUNDS: usize = 8;
    const CHURN: f64 = 0.08;
    let mut comparisons = 0usize;
    for (label, db, queries) in corpus() {
        let warm = Engine::new(oracle_config());
        let batches = mutation_traffic(&db, ROUNDS, CHURN, 0xA11CE);
        assert_eq!(batches.len(), ROUNDS, "traffic generator degenerated");
        let mut weights = TupleWeights::from_fn(&db, |sym, _, t| weight_of(sym, t));
        let mut report = None;
        for (round, batch) in batches.iter().enumerate() {
            // Round 0 enters by reference; later rounds consume the
            // previous report so the engine mutates its index in place.
            let next = match report.take() {
                None => warm.apply_delta(&db, batch),
                Some(prev) => warm.apply_delta_chained(prev, batch),
            }
            .expect("mutation_traffic emits only valid batches");
            weights.apply_delta(next.applied(), weight_of);
            let now = next.database().clone();
            assert!(
                weights.matches(&now),
                "{label} round {round}: maintained weight table misaligned"
            );

            // The cold reference: a brand-new engine and a freshly built
            // weight table over the same mutated database.
            let cold = Engine::new(oracle_config());
            let cold_weights = TupleWeights::from_fn(&now, |sym, _, t| weight_of(sym, t));
            for (qi, query) in queries.iter().enumerate() {
                let warm_decide = warm.solve(query, &now);
                let cold_decide = cold.solve(query, &now);
                assert_eq!(
                    warm_decide.exists, cold_decide.exists,
                    "{label} round {round} query {qi}: delta-path decide diverged"
                );
                let warm_count = warm.count_instance(query, &now);
                let cold_count = cold.count_instance(query, &now);
                assert_eq!(
                    warm_count.count, cold_count.count,
                    "{label} round {round} query {qi}: delta-path count diverged"
                );
                let warm_min = warm.evaluate_min_cost(query, &now, &weights);
                let cold_min = cold.evaluate_min_cost(query, &now, &cold_weights);
                assert_eq!(
                    warm_min.value, cold_min.value,
                    "{label} round {round} query {qi}: delta-path min-cost diverged"
                );
                comparisons += 3;
            }
            report = Some(next);
        }
    }
    assert!(
        comparisons >= 100,
        "only {comparisons} comparisons ran — corpus or traffic degenerated"
    );
}

#[test]
fn chained_and_unchained_delta_application_agree() {
    // The two entry points differ only in ownership (chained consumes the
    // previous report to mutate in place); the resulting database and the
    // answers on it must be identical round for round.
    let db = random_graph_structure(18, 0.25, 5);
    let query = families::cycle(4);
    let batches = mutation_traffic(&db, 6, 0.1, 99);
    let chained_engine = Engine::new(oracle_config());
    let stepwise_engine = Engine::new(oracle_config());
    let mut chained = None;
    let mut current = db.clone();
    for (round, batch) in batches.iter().enumerate() {
        let next = match chained.take() {
            None => chained_engine.apply_delta(&db, batch),
            Some(prev) => chained_engine.apply_delta_chained(prev, batch),
        }
        .expect("valid batch");
        // The unchained route: re-enter by reference every round.
        let step = stepwise_engine
            .apply_delta(&current, batch)
            .expect("valid batch");
        current = step.database().clone();
        assert_eq!(
            next.database(),
            &current,
            "round {round}: chained and unchained structures diverged"
        );
        assert_eq!(
            chained_engine.solve(&query, &current).exists,
            stepwise_engine.solve(&query, &current).exists,
            "round {round}: decisions diverged"
        );
        chained = Some(next);
    }
}
