//! The plan-store round-trip gate: prepare the `distinct_query_fleet`
//! workload, save the plans, reload them into a **fresh** engine, and
//! assert that the warm engine (a) returns bit-identical `EngineReport`s /
//! `CountReport`s and (b) performs **zero** per-query exponential work —
//! no width DP, no core computation, no preparation — on the warm path.
//!
//! This is the executable statement of the persistence goal: the per-query
//! cost the Classification Theorem licenses is paid once per *store*, not
//! once per *process*.  CI runs this file in both harness modes.

use cq_core::{Engine, EngineConfig};
use cq_structures::{families, relabeled, Structure};
use cq_workloads::distinct_query_fleet;

fn fleet_targets() -> Vec<Structure> {
    vec![
        families::clique(3),
        families::clique(4),
        families::grid(3, 3),
        families::cycle(6),
    ]
}

fn store_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cq_plan_store_{name}_{}.bin", std::process::id()));
    p
}

struct TempStore(std::path::PathBuf);

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn warm_started_engine_is_bit_identical_with_zero_preparation_work() {
    let path = store_path("roundtrip");
    let _cleanup = TempStore(path.clone());
    let config = EngineConfig::default();
    let fleet = distinct_query_fleet(12);
    let targets = fleet_targets();
    let batch: Vec<(&Structure, &Structure)> = fleet
        .iter()
        .flat_map(|q| targets.iter().map(move |t| (q, t)))
        .collect();

    // Cold engine: prepare + decide + count the whole workload, then save.
    let cold = Engine::new(config);
    let cold_reports = cold.solve_batch_instances(&batch);
    let cold_counts = cold.count_batch(&batch);
    let cold_prep = cold.prep_stats();
    assert_eq!(cold_prep.preparations, fleet.len() as u64);
    let saved = cold.save_plans(&path).expect("save_plans");
    assert_eq!(saved, fleet.len() as u64);
    assert_eq!(cold.prep_stats().plans_saved, fleet.len() as u64);

    // Fresh engine, warm-started from the file.
    let warm = Engine::new(config).with_plan_store(&path).expect("load");
    let after_load = warm.prep_stats();
    assert_eq!(after_load.plans_loaded, fleet.len() as u64);
    assert_eq!(after_load.plans_rejected, 0);
    assert_eq!(
        after_load.preparations, 0,
        "loading must not prepare anything"
    );
    assert_eq!(after_load.total_width_calls(), 0, "loading must run no DP");
    assert_eq!(after_load.core_computations, 0);

    // The warm path: bit-identical reports, zero exponential work.
    let warm_reports = warm.solve_batch_instances(&batch);
    let warm_counts = warm.count_batch(&batch);
    assert_eq!(warm_reports, cold_reports, "decision reports must agree");
    assert_eq!(warm_counts, cold_counts, "count reports must agree");
    let warm_prep = warm.prep_stats();
    assert_eq!(warm_prep.preparations, 0, "warm path prepared a plan");
    assert_eq!(
        warm_prep.total_width_calls(),
        0,
        "warm path ran a width DP: {warm_prep:?}"
    );
    assert_eq!(
        warm_prep.core_computations, 0,
        "warm path recomputed a core"
    );
    assert_eq!(
        warm_prep.counting_preparations, 0,
        "counting certificates travelled with the plans"
    );
    let cache = warm.cache_stats();
    assert_eq!(cache.misses, 0, "every lookup must hit the loaded plans");
    assert_eq!(cache.hits, 2 * batch.len() as u64);
}

#[test]
fn second_generation_save_reproduces_the_store_bytes() {
    // save -> load -> save must be a fixed point: the loaded plans carry
    // everything the originals did (including lazily materialized
    // artifacts), so the second file is byte-identical to the first.
    let path1 = store_path("gen1");
    let path2 = store_path("gen2");
    let _c1 = TempStore(path1.clone());
    let _c2 = TempStore(path2.clone());
    let config = EngineConfig::default();
    let cold = Engine::new(config);
    for q in distinct_query_fleet(8) {
        cold.solve(&q, &families::clique(3));
        cold.count_instance(&q, &families::clique(3));
    }
    cold.save_plans(&path1).expect("first save");
    let warm = Engine::new(config).with_plan_store(&path1).expect("load");
    warm.save_plans(&path2).expect("second save");
    let gen1 = std::fs::read(&path1).unwrap();
    let gen2 = std::fs::read(&path2).unwrap();
    assert_eq!(gen1, gen2, "save∘load∘save must be a fixed point");
}

#[test]
fn warm_plans_serve_relabelled_queries_and_counting() {
    let path = store_path("relabel");
    let _cleanup = TempStore(path.clone());
    let config = EngineConfig::default();
    let c7 = families::cycle(7);
    let cold = Engine::new(config);
    cold.count_instance(&c7, &families::clique(4));
    cold.save_plans(&path).expect("save");

    let warm = Engine::new(config).with_plan_store(&path).expect("load");
    let perm: Vec<usize> = (0..7).rev().collect();
    let twisted = relabeled(&c7, &perm);
    let direct = warm.count_instance(&c7, &families::clique(4));
    let via_alias = warm.count_instance(&twisted, &families::clique(4));
    assert_eq!(direct.count, via_alias.count);
    assert_eq!(warm.prep_stats().preparations, 0);
}

#[test]
fn incompatible_config_rejects_the_whole_store_and_degrades_cold() {
    let path = store_path("stale");
    let _cleanup = TempStore(path.clone());
    let cold = Engine::new(EngineConfig::default());
    let fleet = distinct_query_fleet(4);
    for q in &fleet {
        cold.prepare(q);
    }
    cold.save_plans(&path).expect("save");

    // Different thresholds => stale degree hints => wholesale rejection.
    let other_config = EngineConfig {
        treedepth_threshold: 1,
        ..EngineConfig::default()
    };
    let warm = Engine::new(other_config)
        .with_plan_store(&path)
        .expect("file reads fine");
    let stats = warm.prep_stats();
    assert_eq!(stats.plans_loaded, 0);
    assert_eq!(stats.plans_rejected, fleet.len() as u64);
    // Degraded but correct: queries prepare cold and answer correctly.
    for q in &fleet {
        let report = warm.solve(q, &families::clique(4));
        assert_eq!(
            report.exists,
            cq_structures::homomorphism_exists(q, &families::clique(4))
        );
    }
    assert_eq!(warm.prep_stats().preparations, fleet.len() as u64);
}

#[test]
fn loading_on_top_of_existing_plans_skips_duplicates() {
    let path = store_path("dup");
    let _cleanup = TempStore(path.clone());
    let config = EngineConfig::default();
    let engine = Engine::new(config);
    let fleet = distinct_query_fleet(5);
    for q in &fleet {
        engine.prepare(q);
    }
    engine.save_plans(&path).expect("save");
    // Loading into the same engine: everything is already cached.
    let summary = engine.load_plans(&path).expect("load");
    assert_eq!(summary.loaded, 0);
    assert_eq!(summary.rejected, fleet.len() as u64);
    assert_eq!(engine.cache_stats().entries, fleet.len());
}

#[test]
fn missing_store_file_is_a_clean_error() {
    let engine = Engine::new(EngineConfig::default());
    let err = engine
        .load_plans(store_path("does_not_exist"))
        .expect_err("missing file must error");
    assert!(matches!(err, cq_core::PersistError::Io(_)));
    // The engine is untouched and fully usable.
    assert_eq!(engine.prep_stats().plans_loaded, 0);
    assert!(
        engine
            .solve(&families::star(3), &families::clique(3))
            .exists
    );
}
