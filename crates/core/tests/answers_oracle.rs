//! Differential **answers** oracle: on a seeded corpus of free-variable
//! queries against random targets, [`Engine::count_answers`] and the paged
//! [`Engine::answers`] must agree with the structure-agnostic reference
//! [`answers_bruteforce`] — exact counts, exact rows, exact order.
//!
//! The reference enumerates every homomorphism by plain backtracking and
//! projects onto the free positions (sorted, deduplicated), using none of
//! the prepared certificates: a disagreement means the free-adjoined
//! decomposition DP, the pinned-prefix cursor, or the engine's paging is
//! wrong.  On top of row-level agreement the suite pins the paging algebra
//! (consecutive pages tile the full enumeration, `has_more` flips exactly
//! at the end), the brute-force fallback (a treewidth threshold of zero
//! must change the method, never the rows), the plan-reuse guard (an
//! isomorphic-but-relabelled alias must not serve another query's answer
//! columns), and worker-count determinism (batch answers are bit-identical
//! for 1, 2, 4 and 8 workers).

use cq_core::{AnswerMethod, Engine, EngineConfig};
use cq_structures::{answers_bruteforce, ConjunctiveQuery, Element, Structure};
use cq_workloads::{random_digraph_structure, random_graph_structure};

/// Thresholds generous enough that the answer DP is licensed on most of the
/// corpus (dispatch keys on the *original* query's treewidth, as for
/// counting) while keeping the adjoined-width tables testable.
fn oracle_config() -> EngineConfig {
    EngineConfig {
        treedepth_threshold: 4,
        pathwidth_threshold: 3,
        treewidth_threshold: 3,
        ..EngineConfig::default()
    }
}

/// The free-variable markings exercised per query: none (boolean
/// degeneration), one, all, and a pair marked in reverse element order
/// (answer columns follow marked order, not element order).
fn free_sets(n: usize) -> Vec<Vec<usize>> {
    let mut sets = vec![Vec::new(), vec![0], (0..n).collect()];
    if n >= 2 {
        sets.push(vec![n - 1, 0]);
    }
    sets
}

/// Mark `free` (element indices) on a query built from a structure whose
/// variables are declared in element order, so variable `x{i}` is element
/// `i` of the canonical structure.
fn with_free(a: &Structure, free: &[usize]) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::from_structure(a);
    let vars: Vec<String> = free.iter().map(|&i| q.variables()[i].clone()).collect();
    for v in vars {
        q.mark_free(v).expect("corpus free sets are valid");
    }
    q
}

/// The seeded corpus: small random undirected and directed queries, each
/// with every free marking of [`free_sets`], against random targets of the
/// same vocabulary.  Everything derives from the `(n, seed)` labels in the
/// assertion messages.
fn corpus() -> Vec<(String, ConjunctiveQuery, Structure)> {
    let mut pairs = Vec::new();
    for n in 3..6 {
        for seed in 0..3 {
            let query = random_graph_structure(n, 0.45, seed);
            for (tn, tseed) in [(6usize, 100u64), (7, 101)] {
                let target = random_graph_structure(tn, 0.4, tseed + seed);
                for free in free_sets(n) {
                    pairs.push((
                        format!(
                            "graph q=(n={n}, seed={seed}) t=(n={tn}, seed={}) free={free:?}",
                            tseed + seed
                        ),
                        with_free(&query, &free),
                        target.clone(),
                    ));
                }
            }
        }
    }
    for n in 3..6 {
        for seed in 0..3 {
            let query = random_digraph_structure(n, 0.35, seed);
            for (tn, tseed) in [(6usize, 200u64)] {
                let target = random_digraph_structure(tn, 0.35, tseed + seed);
                for free in free_sets(n) {
                    pairs.push((
                        format!(
                            "digraph q=(n={n}, seed={seed}) t=(n={tn}, seed={}) free={free:?}",
                            tseed + seed
                        ),
                        with_free(&query, &free),
                        target.clone(),
                    ));
                }
            }
        }
    }
    pairs
}

/// The brute-force projection of a query's answers, in the engine's row
/// type (`u32` database elements).
fn reference_rows(query: &ConjunctiveQuery, target: &Structure) -> Vec<Vec<u32>> {
    let canonical = query
        .canonical_structure()
        .expect("corpus queries are valid");
    let free: Vec<Element> = query.free_element_indices();
    answers_bruteforce(&canonical, target, &free)
        .into_iter()
        .map(|row| row.into_iter().map(|e| e as u32).collect())
        .collect()
}

#[test]
fn engine_counts_and_full_pages_match_the_bruteforce_projection() {
    let engine = Engine::new(oracle_config());
    let mut dp_dispatches = 0usize;
    for (label, query, target) in corpus() {
        let expected = reference_rows(&query, &target);
        let report = engine.count_answers(&query, &target);
        assert_eq!(
            report.answers,
            expected.len() as u64,
            "count ({:?}) wrong on {label}: {query}",
            report.method
        );
        assert_eq!(report.free_count, query.free_variables().len(), "{label}");
        if report.method == AnswerMethod::TreeDecompositionDp {
            dp_dispatches += 1;
            assert!(
                report.answer_width <= report.widths.treewidth + report.free_count,
                "adjoined width exceeded its bound on {label}"
            );
        }
        // Row-level comparison: the full enumeration for moderate answer
        // sets, a prefix page (cursor cost is proportional to the prefix,
        // so this stays cheap) for the huge all-free ones.
        if expected.len() <= 150 {
            let page = engine.answers(&query, &target, 0, expected.len() + 3);
            assert_eq!(page.rows, expected, "rows wrong on {label}: {query}");
            assert!(!page.has_more, "phantom continuation on {label}");
            assert_eq!(page.offset, 0);
        } else {
            let page = engine.answers(&query, &target, 0, 60);
            assert_eq!(
                page.rows,
                &expected[..60],
                "prefix wrong on {label}: {query}"
            );
            assert!(page.has_more, "missing continuation on {label}");
        }
    }
    // The oracle must not silently go vacuous (thresholds drifting until
    // everything brute-forces would still pass row comparisons).
    assert!(
        dp_dispatches >= 100,
        "only {dp_dispatches} DP dispatches — corpus or thresholds degenerated"
    );
}

#[test]
fn pages_tile_the_full_enumeration_with_exact_has_more_flags() {
    let engine = Engine::new(oracle_config());
    for (label, query, target) in corpus().into_iter().step_by(7) {
        let expected = reference_rows(&query, &target);
        if expected.len() > 60 {
            // Restarting a cursor per page is quadratic in the enumeration
            // length; the tiling algebra is fully exercised by the moderate
            // answer sets.
            continue;
        }
        for page_size in [1usize, 2, 3, 7] {
            let mut tiled: Vec<Vec<u32>> = Vec::new();
            let mut offset = 0u64;
            loop {
                let page = engine.answers(&query, &target, offset, page_size);
                assert_eq!(page.offset, offset, "{label}");
                assert!(
                    page.rows.len() <= page_size,
                    "oversized page on {label} at offset {offset}"
                );
                let consumed = page.rows.len() as u64;
                tiled.extend(page.rows);
                if page.has_more {
                    assert_eq!(
                        consumed, page_size as u64,
                        "has_more on a short page on {label} at offset {offset}"
                    );
                    offset += consumed;
                } else {
                    break;
                }
            }
            assert_eq!(
                tiled, expected,
                "pages of size {page_size} do not tile on {label}: {query}"
            );
            // One past the end: empty page, nothing follows.
            let past = engine.answers(&query, &target, expected.len() as u64, page_size);
            assert!(past.rows.is_empty() && !past.has_more, "{label}");
        }
    }
}

#[test]
fn bruteforce_fallback_changes_the_method_but_never_the_rows() {
    let licensed = Engine::new(oracle_config());
    // Treewidth threshold 0: every corpus query with an edge is pushed off
    // the DP onto the brute-force projection.
    let fallback = Engine::new(EngineConfig {
        treewidth_threshold: 0,
        ..oracle_config()
    });
    let mut forced = 0usize;
    for (label, query, target) in corpus().into_iter().step_by(5) {
        let a = licensed.count_answers(&query, &target);
        let b = fallback.count_answers(&query, &target);
        assert_eq!(a.answers, b.answers, "fallback count diverged on {label}");
        let pa = licensed.answers(&query, &target, 1, 4);
        let pb = fallback.answers(&query, &target, 1, 4);
        assert_eq!(
            (pa.rows, pa.has_more),
            (pb.rows, pb.has_more),
            "fallback page diverged on {label}"
        );
        if b.method == AnswerMethod::BruteForce {
            forced += 1;
        }
    }
    assert!(
        forced >= 10,
        "only {forced} brute-force dispatches — the fallback went untested"
    );
}

#[test]
fn zero_free_variables_degenerate_to_the_boolean_answer() {
    let engine = Engine::new(oracle_config());
    for (label, query, target) in corpus() {
        if !query.free_variables().is_empty() {
            continue;
        }
        let canonical = query.canonical_structure().unwrap();
        let exists = engine.solve(&canonical, &target).exists;
        let report = engine.count_answers(&query, &target);
        assert_eq!(report.answers, u64::from(exists), "{label}");
        let page = engine.answers(&query, &target, 0, 10);
        assert_eq!(
            page.rows,
            if exists { vec![Vec::new()] } else { Vec::new() },
            "the boolean page is the single empty row iff satisfiable ({label})"
        );
        assert!(!page.has_more);
    }
}

/// The plan-reuse guard: two queries with isomorphic (same fingerprint,
/// cache-colliding) but differently-labelled canonical structures must each
/// get answers in their **own** element numbering — serving one query's
/// compiled answer columns to the other would project onto the wrong
/// positions.
#[test]
fn aliased_plans_fall_back_to_the_exact_submitted_form() {
    let engine = Engine::new(oracle_config());
    let a = random_digraph_structure(5, 0.4, 9);
    let n = a.universe_size();
    let perm: Vec<usize> = (0..n).map(|i| (i + 2) % n).collect();
    let b = cq_structures::relabeled(&a, &perm);
    let qa = with_free(&a, &[0, 2]);
    let qb = with_free(&b, &[0, 2]);
    for target_seed in 0..4u64 {
        let target = random_digraph_structure(7, 0.4, 300 + target_seed);
        // Same engine, interleaved: whichever plan lands in the cache first,
        // the other query must not reuse its columns.
        for q in [&qa, &qb] {
            let expected = reference_rows(q, &target);
            assert_eq!(
                engine.count_answers(q, &target).answers,
                expected.len() as u64,
                "aliased count wrong for {q} on seed {target_seed}"
            );
            assert_eq!(
                engine.answers(q, &target, 0, expected.len() + 1).rows,
                expected,
                "aliased rows wrong for {q} on seed {target_seed}"
            );
        }
    }
}

#[test]
fn answer_batches_are_bit_identical_for_every_worker_count() {
    let pairs = corpus();
    let count_batch: Vec<(&ConjunctiveQuery, &Structure)> =
        pairs.iter().map(|(_, q, t)| (q, t)).collect();
    let page_batch: Vec<(&ConjunctiveQuery, &Structure, u64, usize)> = pairs
        .iter()
        .enumerate()
        .map(|(i, (_, q, t))| (q, t, (i % 3) as u64, 1 + i % 5))
        .collect();
    let sequential = Engine::new(EngineConfig {
        workers: 1,
        ..oracle_config()
    });
    let expected_counts = sequential.count_answers_batch(&count_batch);
    let expected_pages = sequential.answers_batch(&page_batch);
    for ((label, query, target), report) in pairs.iter().zip(&expected_counts) {
        assert_eq!(
            report.answers,
            reference_rows(query, target).len() as u64,
            "sequential batch count wrong on {label}"
        );
    }
    for workers in [2usize, 4, 8] {
        let parallel = Engine::new(EngineConfig {
            workers,
            ..oracle_config()
        });
        assert_eq!(
            parallel.count_answers_batch(&count_batch),
            expected_counts,
            "workers={workers} counts diverged from sequential"
        );
        assert_eq!(
            parallel.answers_batch(&page_batch),
            expected_pages,
            "workers={workers} pages diverged from sequential"
        );
    }
}
