//! Differential **weighted-aggregate** oracle: on a seeded corpus of
//! random (query, structure, weights) triples, every aggregate solver of
//! the [`AggregateRegistry`] must return the same min-cost / max-weight as
//! the structure-agnostic reference (enumerate every homomorphism with
//! [`homomorphisms_iter`], cost each by summing image-tuple weights) — the
//! weighted analogue of `counting_oracle.rs`.
//!
//! Weighted aggregates share counting's failure mode (a solver silently
//! optimizing over the **core**'s homomorphisms misses cost-distinct
//! homomorphisms the core collapses), plus one of their own: a kernel bag
//! charging a tuple's weight twice (or not at all) still *decides* and
//! *counts* correctly — only a weighted differential catches it.  The
//! corpus weights are deliberately non-uniform so every double-charge
//! shifts some optimum.

use cq_core::{
    AggregateObjective, AggregateRegistry, AggregateSolver, Engine, EngineConfig,
    ForestAggregateSolver, PreparedQuery, SearchAggregateSolver, TreeDecAggregateSolver,
};
use cq_structures::{homomorphisms_iter, Structure, StructureIndex, TupleWeights};
use cq_workloads::{random_digraph_structure, random_graph_structure, weighted_traffic};

/// Same thresholds as the counting oracle: generous enough that the
/// structural tiers admit most of the corpus on the original query's
/// widths, small enough that the DP tables stay testable.
fn oracle_config() -> EngineConfig {
    EngineConfig {
        treedepth_threshold: 4,
        pathwidth_threshold: 3,
        treewidth_threshold: 3,
        ..EngineConfig::default()
    }
}

/// Deterministic non-uniform weights: a fixed formula of the symbol, the
/// row id and the tuple's first element — no RNG, so every failure
/// reproduces from the corpus labels alone.
fn test_weights(db: &Structure) -> TupleWeights {
    TupleWeights::from_fn(db, |sym, row, t| {
        (sym.index() as u64 + 1) * 7 + row as u64 * 3 + t.first().copied().unwrap_or(0) as u64 % 5
    })
}

/// The reference: enumerate every homomorphism, cost each one by summing
/// the weights of its image tuples, and fold with min / max.  Uses none of
/// the prepared certificates, so a disagreement means an aggregate solver
/// (or the certificate it consumed) is wrong.
fn bruteforce_aggregates(
    query: &Structure,
    db: &Structure,
    index: &StructureIndex,
    weights: &TupleWeights,
) -> (Option<u64>, Option<u64>) {
    let mut min: Option<u64> = None;
    let mut max: Option<u64> = None;
    for h in homomorphisms_iter(query, db) {
        let mut cost = 0u64;
        for sym in query.vocabulary().ids() {
            let db_sym = db
                .vocabulary()
                .id_of(query.vocabulary().name(sym))
                .expect("query vocabulary interpretable in the database");
            for t in query.relation(sym).rows() {
                let image: Vec<u32> = t.iter().map(|&v| h[v as usize] as u32).collect();
                let row = index
                    .row_of(db_sym, &image)
                    .expect("a homomorphism's image is a database tuple");
                cost += weights.get(db_sym, row);
            }
        }
        min = Some(min.map_or(cost, |m| m.min(cost)));
        max = Some(max.map_or(cost, |m| m.max(cost)));
    }
    (min, max)
}

/// The seeded corpus of `counting_oracle.rs`, reused verbatim: small random
/// undirected and directed queries against larger random targets.
fn corpus() -> Vec<(String, Structure, Structure)> {
    let mut pairs = Vec::new();
    for n in 3..6 {
        for seed in 0..4 {
            let query = random_graph_structure(n, 0.45, seed);
            for (tn, tseed) in [(6usize, 100u64), (8, 101)] {
                let target = random_graph_structure(tn, 0.4, tseed + seed);
                pairs.push((
                    format!(
                        "graph q=(n={n}, seed={seed}) t=(n={tn}, seed={})",
                        tseed + seed
                    ),
                    query.clone(),
                    target,
                ));
            }
        }
    }
    for n in 3..6 {
        for seed in 0..4 {
            let query = random_digraph_structure(n, 0.35, seed);
            for (tn, tseed) in [(6usize, 200u64), (8, 201)] {
                let target = random_digraph_structure(tn, 0.35, tseed + seed);
                pairs.push((
                    format!(
                        "digraph q=(n={n}, seed={seed}) t=(n={tn}, seed={})",
                        tseed + seed
                    ),
                    query.clone(),
                    target,
                ));
            }
        }
    }
    pairs
}

#[test]
fn every_aggregate_solver_agrees_with_bruteforce_on_the_corpus() {
    let config = oracle_config();
    let solvers: [(&str, &dyn AggregateSolver); 3] = [
        ("ForestAggregateSolver", &ForestAggregateSolver),
        ("TreeDecAggregateSolver", &TreeDecAggregateSolver),
        ("SearchAggregateSolver", &SearchAggregateSolver),
    ];

    let mut comparisons = 0usize;
    let mut disagreements = Vec::new();
    for (label, query, target) in corpus() {
        let prepared = PreparedQuery::prepare(&query, &config);
        let index = StructureIndex::new(&target);
        let weights = test_weights(&target);
        let (expected_min, expected_max) = bruteforce_aggregates(&query, &target, &index, &weights);
        for (name, solver) in solvers {
            if !solver.admits(&prepared, &config) {
                continue;
            }
            for (objective, expected) in [
                (AggregateObjective::MinCost, expected_min),
                (AggregateObjective::MaxWeight, expected_max),
            ] {
                comparisons += 1;
                let got = solver.evaluate(&prepared, &target, &index, &weights, objective);
                if got != expected {
                    disagreements.push(format!(
                        "{name} {objective} says {got:?}, brute force says {expected:?} on {label}:\n  query  {query}\n  target {target}"
                    ));
                }
            }
        }
    }
    assert!(
        disagreements.is_empty(),
        "{} weighted disagreement(s):\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
    // The oracle must not silently go vacuous.
    assert!(
        comparisons >= 100,
        "only {comparisons} weighted comparisons ran — corpus or thresholds degenerated"
    );
}

/// The engine entry points against the closed-form weighted workload:
/// `evaluate_min_cost` / `evaluate_max_weight` must reproduce every
/// closed form through the cached-plan path (the workload's query fleet
/// crosses the core-invariance trap on every other instance).
#[test]
fn engine_matches_the_closed_forms_of_the_weighted_workload() {
    let w = weighted_traffic(&[3, 4, 5], 4, 11);
    let engine = Engine::new(oracle_config());
    for (i, (query, db, weights)) in w.instances().into_iter().enumerate() {
        let min = engine.evaluate_min_cost(query, db, weights);
        let max = engine.evaluate_max_weight(query, db, weights);
        assert_eq!(
            min.value, w.expected_min[i],
            "min-cost wrong on trace entry {i} ({query} -> {db}), method {:?}",
            min.method
        );
        assert_eq!(
            max.value, w.expected_max[i],
            "max-weight wrong on trace entry {i} ({query} -> {db}), method {:?}",
            max.method
        );
        assert_eq!(min.objective, AggregateObjective::MinCost);
        assert_eq!(max.objective, AggregateObjective::MaxWeight);
    }
    // The workload has 4 distinct queries; the whole trace must have been
    // served from 4 cached plans (aggregates share the decision/counting
    // plan cache).
    assert_eq!(engine.prep_stats().preparations, 4);
}

/// Weighted batch determinism: `min_cost_batch` / `max_weight_batch` under
/// any worker count return sequences bit-identical to the sequential path
/// (the guarantee `count_batch` makes, extended to aggregates).
#[test]
fn weighted_batches_are_bit_identical_across_worker_counts() {
    let w = weighted_traffic(&[3, 4, 5], 6, 23);
    let instances = w.instances();
    let sequential = Engine::new(EngineConfig {
        workers: 1,
        ..oracle_config()
    });
    let expected_min = sequential.min_cost_batch(&instances);
    let expected_max = sequential.max_weight_batch(&instances);
    for (i, report) in expected_min.iter().enumerate() {
        assert_eq!(
            report.value, w.expected_min[i],
            "sequential min wrong at {i}"
        );
    }
    for workers in [2usize, 4] {
        let parallel = Engine::new(EngineConfig {
            workers,
            ..oracle_config()
        });
        assert_eq!(
            parallel.min_cost_batch(&instances),
            expected_min,
            "min_cost_batch diverged at workers={workers}"
        );
        assert_eq!(
            parallel.max_weight_batch(&instances),
            expected_max,
            "max_weight_batch diverged at workers={workers}"
        );
        assert_eq!(
            parallel.prep_stats().preparations,
            sequential.prep_stats().preparations,
            "workers={workers} prepared a different number of plans"
        );
    }
}

/// No homomorphism means `None` on both objectives through the engine —
/// and an ablated aggregate registry changes the dispatched tier, never
/// the value.
#[test]
fn unsatisfiable_instances_and_ablations_behave() {
    use cq_core::CountMethod;
    use cq_structures::families;
    let engine = Engine::new(oracle_config());
    // C3 has no homomorphism into bipartite C4.
    let c3 = families::cycle(3);
    let c4 = families::cycle(4);
    let weights = TupleWeights::uniform(&c4, 1);
    assert_eq!(engine.evaluate_min_cost(&c3, &c4, &weights).value, None);
    assert_eq!(engine.evaluate_max_weight(&c3, &c4, &weights).value, None);

    let star = families::star(3);
    let k4 = families::clique(4);
    let wk4 = test_weights(&k4);
    let full = engine.evaluate_min_cost(&star, &k4, &wk4);
    assert_eq!(full.method, CountMethod::ForestSumProduct);
    let ablated_engine = Engine::new(oracle_config()).with_aggregate_registry(
        AggregateRegistry::standard().without(CountMethod::ForestSumProduct),
    );
    let ablated = ablated_engine.evaluate_min_cost(&star, &k4, &wk4);
    assert_eq!(ablated.method, CountMethod::TreeDecompositionDp);
    assert_eq!(full.value, ablated.value, "ablation changed the optimum");
}
