//! Differential **counting** oracle: on a seeded corpus of random (query,
//! structure) pairs, every counting solver of the [`CountRegistry`]
//! ([`ForestCountSolver`], [`TreeDecCountSolver`],
//! [`BruteForceCountSolver`]) must return the same number as the
//! structure-agnostic reference [`count_homomorphisms_bruteforce`] — the
//! counting analogue of `differential_oracle.rs`.
//!
//! Brute-force enumeration is the reference because it uses none of the
//! prepared certificates: a disagreement means a counting solver (or the
//! original-structure certificate it consumed) is wrong.  Failures print
//! the offending pair with the seeds that regenerate it, so every
//! counterexample reproduces exactly.
//!
//! Counting has a failure mode decision does not: a solver silently
//! counting the **core** instead of the original query returns a plausible
//! but wrong (smaller) number on every query with a proper core — the
//! corpus is full of such queries, and the closed-form regression at the
//! bottom pins the trap explicitly.

use cq_core::{
    BruteForceCountSolver, CountRegistry, CountSolver, Engine, EngineConfig, ForestCountSolver,
    PreparedQuery, TreeDecCountSolver,
};
use cq_structures::{core_of, count_homomorphisms_bruteforce, families, Structure, StructureIndex};
use cq_workloads::{random_digraph_structure, random_graph_structure};

/// Thresholds generous enough that the structural counters admit most of
/// the corpus **on the original query's widths** (counting never keys on
/// the core's), but small enough that the DP tables stay testable.
fn oracle_config() -> EngineConfig {
    EngineConfig {
        treedepth_threshold: 4,
        pathwidth_threshold: 3,
        treewidth_threshold: 3,
        ..EngineConfig::default()
    }
}

/// The seeded corpus: small random undirected and directed queries, each
/// paired with a handful of larger random targets of the same vocabulary.
/// Everything derives from the `(n, seed)` labels in the assertion
/// messages.
fn corpus() -> Vec<(String, Structure, Structure)> {
    let mut pairs = Vec::new();
    for n in 3..6 {
        for seed in 0..4 {
            let query = random_graph_structure(n, 0.45, seed);
            for (tn, tseed) in [(6usize, 100u64), (8, 101), (9, 102)] {
                let target = random_graph_structure(tn, 0.4, tseed + seed);
                pairs.push((
                    format!(
                        "graph q=(n={n}, seed={seed}) t=(n={tn}, seed={})",
                        tseed + seed
                    ),
                    query.clone(),
                    target,
                ));
            }
        }
    }
    for n in 3..6 {
        for seed in 0..4 {
            let query = random_digraph_structure(n, 0.35, seed);
            for (tn, tseed) in [(6usize, 200u64), (8, 201)] {
                let target = random_digraph_structure(tn, 0.35, tseed + seed);
                pairs.push((
                    format!(
                        "digraph q=(n={n}, seed={seed}) t=(n={tn}, seed={})",
                        tseed + seed
                    ),
                    query.clone(),
                    target,
                ));
            }
        }
    }
    pairs
}

#[test]
fn every_count_registry_solver_agrees_with_bruteforce_on_the_corpus() {
    let config = oracle_config();
    let solvers: [(&str, &dyn CountSolver); 3] = [
        ("ForestCountSolver", &ForestCountSolver),
        ("TreeDecCountSolver", &TreeDecCountSolver),
        ("BruteForceCountSolver", &BruteForceCountSolver),
    ];

    let mut comparisons = 0usize;
    let mut disagreements = Vec::new();
    for (label, query, target) in corpus() {
        let prepared = PreparedQuery::prepare(&query, &config);
        let index = StructureIndex::new(&target);
        let expected = count_homomorphisms_bruteforce(&query, &target);
        for (name, solver) in solvers {
            if !solver.admits(&prepared, &config) {
                continue;
            }
            comparisons += 1;
            let got = solver.count(&prepared, &target, &index).outcome;
            if got != expected {
                disagreements.push(format!(
                    "{name} says {got}, brute force says {expected} on {label}:\n  query  {query}\n  target {target}"
                ));
            }
        }
    }
    assert!(
        disagreements.is_empty(),
        "{} counting disagreement(s):\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
    // The oracle must not silently go vacuous (e.g. thresholds drifting so
    // no structural counter ever admits a corpus query).
    assert!(
        comparisons >= 150,
        "only {comparisons} counting comparisons ran — corpus or thresholds degenerated"
    );
}

/// Kernel-vs-reference **counting** oracle: the kernel group-sum tree DP
/// and the kernel forest sum–product must return the exact counts of the
/// retained reference implementations (`count_hom_via_tree_decomposition`,
/// `count_with_forest`) on every corpus pair, certificate for certificate.
#[test]
fn kernel_counting_agrees_with_the_retained_references_on_the_corpus() {
    use cq_solver::kernel;
    let config = oracle_config();
    let mut comparisons = 0usize;
    let mut disagreements = Vec::new();
    for (label, query, target) in corpus() {
        let prepared = PreparedQuery::prepare(&query, &config);
        let index = StructureIndex::new(&target);
        let analysis = prepared.counting_analysis();

        let kernel_tree = kernel::count_hom_via_tree_decomposition_indexed(
            prepared.original(),
            &index,
            &analysis.tree_decomposition,
        );
        let reference_tree = cq_solver::treedec::count_hom_via_tree_decomposition(
            prepared.original(),
            &target,
            &analysis.tree_decomposition,
        );
        if kernel_tree.count != reference_tree {
            disagreements.push(format!(
                "TreeDec kernel counts {}, reference counts {reference_tree} on {label}:\n  query  {query}\n  target {target}",
                kernel_tree.count
            ));
        }
        comparisons += 1;

        let kernel_forest = kernel::count_with_forest_indexed(
            prepared.original(),
            &index,
            &analysis.elimination_forest,
        );
        let reference_forest = cq_solver::treedepth::count_with_forest(
            prepared.original(),
            &target,
            &analysis.elimination_forest,
        );
        if kernel_forest.count != reference_forest {
            disagreements.push(format!(
                "Forest kernel counts {}, reference counts {reference_forest} on {label}:\n  query  {query}\n  target {target}",
                kernel_forest.count
            ));
        }
        comparisons += 1;
    }
    assert!(
        disagreements.is_empty(),
        "{} kernel counting disagreement(s):\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
    assert!(
        comparisons >= 100,
        "only {comparisons} kernel counting comparisons ran — corpus degenerated"
    );
}

/// The oracle repeated through prepared-plan reuse: counting the same
/// corpus through one engine (warm plan cache, every tier dispatched by the
/// counting registry) matches brute force, and the parallel `count_batch`
/// returns bit-identical sequences for every worker count.  Guards the
/// cache + counting-dispatch composition rather than individual solvers.
#[test]
fn engine_count_batch_over_the_corpus_matches_brute_force_for_every_worker_count() {
    let pairs = corpus();
    let batch: Vec<(&Structure, &Structure)> = pairs.iter().map(|(_, q, t)| (q, t)).collect();
    let sequential = Engine::new(EngineConfig {
        workers: 1,
        ..oracle_config()
    });
    let expected = sequential.count_batch(&batch);
    for ((label, query, target), report) in pairs.iter().zip(&expected) {
        assert_eq!(
            report.count,
            count_homomorphisms_bruteforce(query, target),
            "engine ({:?}) wrong on {label}: {query} -> {target}",
            report.method
        );
    }
    for workers in [2usize, 4, 8] {
        let parallel = Engine::new(EngineConfig {
            workers,
            ..oracle_config()
        });
        let got = parallel.count_batch(&batch);
        assert_eq!(got, expected, "workers={workers} diverged from sequential");
        assert_eq!(
            parallel.prep_stats().preparations,
            sequential.prep_stats().preparations,
            "workers={workers} prepared a different number of plans"
        );
    }
}

/// Regression pinning the core-invariance trap (the caveat of
/// Theorem 6.1): on a query with a non-trivial core, the decision engine
/// evaluates the core, but the count must be over the original structure —
/// closed-form expected values on both sides of the trap.
#[test]
fn counting_uses_the_original_query_even_when_decision_uses_the_core() {
    let engine = Engine::new(EngineConfig::default());
    let k3 = families::clique(3);

    // C8 cores down to an edge K2.  #hom(C_n, K_q) counts proper
    // q-colourings of the cycle: (q-1)^n + (-1)^n (q-1), so
    // #hom(C8, K3) = 2^8 + 2 = 258, while #hom(K2, K3) = 3·2 = 6.
    let c8 = families::cycle(8);
    let decision = engine.solve(&c8, &k3);
    assert!(decision.exists);
    assert_eq!(
        decision.evaluated_query_size, 2,
        "decision evaluates the core"
    );
    let core_count = count_homomorphisms_bruteforce(&core_of(&c8).core, &k3);
    assert_eq!(core_count, 6);
    let report = engine.count_instance(&c8, &k3);
    assert_eq!(report.count, 258, "count over the original C8");
    assert_ne!(report.count, core_count, "the trap is non-vacuous");
    assert_eq!(report.counted_query_size, 8);

    // P4 cores down to K2 as well: #hom(P_k, K_q) = q·(q-1)^(k-1), so
    // #hom(P4, K3) = 3·2³ = 24 against the same core count 6.
    let p4 = families::path(4);
    assert_eq!(engine.solve(&p4, &k3).evaluated_query_size, 2);
    assert_eq!(engine.count_instance(&p4, &k3).count, 24);

    // Both counting runs reused the decision plans (2 preparations, both
    // materializing original-structure certificates exactly once).
    let prep = engine.prep_stats();
    assert_eq!(prep.preparations, 2);
    assert_eq!(prep.counting_preparations, 2);
}

/// The Lemma 6.2 inclusion–exclusion reduction through the engine-backed
/// oracle: `Engine::count_star` agrees with directly counting from the star
/// expansion, while all oracle calls run over one cached plan.
#[test]
fn engine_backed_star_counting_matches_direct_counting() {
    let engine = Engine::new(EngineConfig::default());
    for (a, base) in [
        (families::path(3), families::cycle(5)),
        (families::cycle(4), families::clique(3)),
        (families::star(3), families::clique(3)),
    ] {
        let n = a.universe_size();
        let b =
            cq_structures::ops::colored_target(n, &base, |_| (0..base.universe_size()).collect());
        let expected = count_homomorphisms_bruteforce(&cq_structures::star_expansion(&a), &b);
        assert_eq!(engine.count_star(&a, &b), expected, "query {a}");
    }
    // Three distinct left-hand sides, each prepared exactly once despite
    // 2^n - 1 oracle calls apiece.
    assert_eq!(engine.prep_stats().preparations, 3);
}

/// An ablated counting registry must change the dispatched method, never
/// the number — exercised against the corpus reference on a query every
/// tier admits.
#[test]
fn counting_ablations_preserve_counts() {
    let config = oracle_config();
    let full = Engine::new(config);
    let no_forest = Engine::new(config).with_count_registry(
        CountRegistry::standard().without(cq_core::CountMethod::ForestSumProduct),
    );
    let no_structural = Engine::new(config).with_count_registry(
        CountRegistry::standard()
            .without(cq_core::CountMethod::ForestSumProduct)
            .without(cq_core::CountMethod::TreeDecompositionDp),
    );
    let star = families::star(3);
    for t in [
        families::clique(3),
        families::cycle(6),
        families::grid(3, 3),
    ] {
        let expected = count_homomorphisms_bruteforce(&star, &t);
        assert_eq!(full.count_instance(&star, &t).count, expected);
        assert_eq!(no_forest.count_instance(&star, &t).count, expected);
        assert_eq!(no_structural.count_instance(&star, &t).count, expected);
    }
}
