//! Scale differential oracle: the E18 corpus generator ([`scale_corpus`]
//! at 10^5 tuples) feeds the scale bench, so its *distribution* must be
//! covered by the same brute-force references that guard the small corpora.
//! Enumerating homomorphisms into a 10^5-tuple database is hopeless, so the
//! oracle runs on seeded **induced subsamples** ([`subsample_database`]):
//! small enough for brute force, drawn from exactly the joint distribution
//! of (schema, density, query shape) the bench times.
//!
//! Three gates, all on the subsampled slice:
//!
//! 1. decision: `Engine::solve` agrees with [`homomorphism_exists`];
//! 2. counting: `Engine::count_batch` agrees with
//!    [`count_homomorphisms_bruteforce`];
//! 3. determinism: a 1-worker engine and a 4-worker engine return
//!    bit-identical report batches (parallel fan-out must not perturb
//!    results, orderings, or counts).

use cq_core::{Engine, EngineConfig};
use cq_structures::{count_homomorphisms_bruteforce, homomorphism_exists, Structure};
use cq_workloads::{scale_corpus, scale_join_queries, selective_join_queries, subsample_database};

/// The quick-mode E18 corpus shape: three dense fact relations plus the
/// sparse `S`, ~10^5 distinct tuples over 500 elements (dense enough that
/// induced subsamples carry tuples).  Seed fixed so every failure message
/// reproduces; the bench uses the same generator and seed.
const CORPUS_ELEMS: usize = 500;
const CORPUS_FACT_RELATIONS: usize = 3;
const CORPUS_FACT_TUPLES_PER_RELATION: usize = 37_000;
const CORPUS_SELECTIVE_TUPLES: usize = 2_500;
const CORPUS_SEED: u64 = 0xE18;

const SUBSAMPLE_ELEMS: usize = 12;
const SUBSAMPLE_SEEDS: [u64; 4] = [1, 2, 3, 4];

fn corpus() -> Structure {
    scale_corpus(
        CORPUS_ELEMS,
        CORPUS_FACT_RELATIONS,
        CORPUS_FACT_TUPLES_PER_RELATION,
        CORPUS_SELECTIVE_TUPLES,
        CORPUS_SEED,
    )
}

/// Both query families of the bench: bulk joins over the fact relations
/// and selective joins over `S`.
fn queries() -> Vec<Structure> {
    let mut qs = scale_join_queries(CORPUS_FACT_RELATIONS);
    qs.extend(selective_join_queries());
    qs
}

fn slices(db: &Structure) -> Vec<(u64, Structure)> {
    SUBSAMPLE_SEEDS
        .iter()
        .map(|&s| (s, subsample_database(db, SUBSAMPLE_ELEMS, s)))
        .collect()
}

#[test]
fn corpus_is_at_scale_and_subsamples_are_nontrivial() {
    let db = corpus();
    assert!(
        db.tuple_count() >= 100_000,
        "E18 corpus must reach 10^5 tuples, got {}",
        db.tuple_count()
    );
    for (seed, slice) in slices(&db) {
        assert!(
            slice.tuple_count() > 0,
            "subsample seed {seed} induced no tuples — corpus too sparse"
        );
    }
}

#[test]
fn engine_decisions_agree_with_brute_force_on_subsampled_slices() {
    let db = corpus();
    let queries = queries();
    let engine = Engine::new(EngineConfig::default());
    for (qi, q) in queries.iter().enumerate() {
        for (seed, slice) in slices(&db) {
            let report = engine.solve(q, &slice);
            let truth = homomorphism_exists(q, &slice);
            assert_eq!(
                report.exists, truth,
                "decision disagrees: query {qi}, subsample seed {seed}"
            );
        }
    }
}

#[test]
fn engine_counts_agree_with_brute_force_on_subsampled_slices() {
    let db = corpus();
    let queries = queries();
    let engine = Engine::new(EngineConfig::default());
    let sliced = slices(&db);
    let batch: Vec<(&Structure, &Structure)> = queries
        .iter()
        .flat_map(|q| sliced.iter().map(move |(_, s)| (q, s)))
        .collect();
    let reports = engine.count_batch(&batch);
    for ((q, slice), report) in batch.iter().zip(&reports) {
        let truth = count_homomorphisms_bruteforce(q, slice);
        assert_eq!(
            report.count, truth,
            "count disagrees on a subsampled slice (solver {:?})",
            report.method
        );
    }
}

#[test]
fn one_worker_and_four_workers_are_bit_identical_on_the_slice_batch() {
    let db = corpus();
    let queries = queries();
    let sliced = slices(&db);
    let batch: Vec<(&Structure, &Structure)> = queries
        .iter()
        .flat_map(|q| sliced.iter().map(move |(_, s)| (q, s)))
        .collect();
    let serial = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let parallel = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    assert_eq!(
        serial.solve_batch_instances(&batch),
        parallel.solve_batch_instances(&batch),
        "decision batch must not depend on worker count"
    );
    assert_eq!(
        serial.count_batch(&batch),
        parallel.count_batch(&batch),
        "count batch must not depend on worker count"
    );
}
