//! Behavioural tests of the plan cache: equivalent queries hit, distinct
//! queries miss, and cached plans answer exactly like cold preparation —
//! across every solver tier of the registry.

use cq_core::{Engine, EngineConfig, SolverChoice, SolverRegistry};
use cq_structures::{families, homomorphism_exists, relabeled, star_expansion, Structure};

/// `cycle(7)` built with two different vertex orderings is the same
/// canonical query: the second preparation must be a cache hit.
#[test]
fn same_canonical_query_hits_the_cache() {
    let engine = Engine::new(EngineConfig::default());
    let c7 = families::cycle(7);
    let reversed: Vec<usize> = (0..7).rev().collect();
    let rotated: Vec<usize> = (0..7).map(|i| (i + 3) % 7).collect();

    let p1 = engine.prepare(&c7);
    let p2 = engine.prepare(&relabeled(&c7, &reversed));
    let p3 = engine.prepare(&relabeled(&c7, &rotated));

    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "one cold preparation");
    assert_eq!(stats.hits, 2, "both relabellings hit");
    assert!(std::sync::Arc::ptr_eq(&p1, &p2));
    assert!(std::sync::Arc::ptr_eq(&p1, &p3));
}

/// Distinct queries never share a plan.
#[test]
fn distinct_queries_do_not_hit_the_cache() {
    let engine = Engine::new(EngineConfig::default());
    let queries = [
        families::cycle(7),
        families::cycle(5),
        families::path(7),
        families::star(6),
        families::clique(4),
        star_expansion(&families::path(4)),
    ];
    for q in &queries {
        engine.prepare(q);
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.misses as usize, queries.len());
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.entries, queries.len());
}

/// The engine.rs test matrix (queries exercising all four solver tiers
/// against assorted targets): cached and cold paths must return identical
/// `exists` answers, and both must match the reference solver.
#[test]
fn cached_and_cold_answers_agree_across_the_registry() {
    let queries = [
        families::star(4),                    // tree depth 2
        star_expansion(&families::path(6)),   // pathwidth 1
        star_expansion(&families::tree_t(2)), // treewidth 1, pathwidth grows
        families::clique(4),                  // nothing bounded
    ];
    let targets = [
        families::clique(4),
        families::cycle(6),
        families::grid(3, 3),
    ];

    let cached_engine = Engine::new(EngineConfig::default());
    for a in &queries {
        for b in &targets {
            // Cold: a fresh engine every time (never a cache hit).
            let cold = Engine::new(EngineConfig::default()).solve(a, b);
            // Cached: same engine throughout; every repetition after the
            // first prepare of `a` is served from the plan cache.
            let warm_first = cached_engine.solve(a, b);
            let warm_again = cached_engine.solve(a, b);
            let expected = homomorphism_exists(a, b);
            assert_eq!(cold.exists, expected, "cold {a} -> {b}");
            assert_eq!(warm_first.exists, expected, "warm {a} -> {b}");
            assert_eq!(warm_again.exists, expected, "warm repeat {a} -> {b}");
            assert_eq!(cold.choice, warm_again.choice, "{a} -> {b}");
            assert_eq!(cold.widths, warm_again.widths, "{a} -> {b}");
        }
    }
    let stats = cached_engine.cache_stats();
    assert_eq!(stats.misses as usize, queries.len());
    assert_eq!(
        stats.hits as usize,
        queries.len() * targets.len() * 2 - queries.len()
    );
}

/// Cache hits respect the relabelling: answers computed through a plan
/// prepared from a *differently ordered* copy of the query are still
/// correct (homomorphic equivalence preserves answers).
#[test]
fn relabelled_cache_hits_answer_correctly() {
    let engine = Engine::new(EngineConfig::default());
    let c7 = families::cycle(7);
    let perm: Vec<usize> = (0..7).map(|i| (i * 3) % 7).collect();
    let relabelled = relabeled(&c7, &perm);

    let targets: Vec<Structure> = vec![
        families::clique(3),
        families::cycle(7),
        families::cycle(5),
        families::grid(3, 3),
    ];
    engine.prepare(&c7);
    for t in &targets {
        let report = engine.solve(&relabelled, t);
        assert_eq!(report.exists, homomorphism_exists(&relabelled, t), "-> {t}");
    }
    assert_eq!(engine.cache_stats().misses, 1);
}

/// Plan caching composes with registry ablations: an engine with the
/// tree-depth tier removed still caches, still answers correctly, and
/// dispatches the affected queries to the next tier.
#[test]
fn ablated_engine_caches_and_answers_correctly() {
    let cfg = EngineConfig::default();
    let engine = Engine::with_registry(
        cfg,
        SolverRegistry::standard(&cfg).without(SolverChoice::TreeDepth),
    );
    let star = families::star(5);
    for _ in 0..3 {
        let report = engine.solve(&star, &families::clique(3));
        assert_eq!(report.choice, SolverChoice::PathDecomposition);
        assert!(report.exists);
    }
    assert_eq!(engine.cache_stats().misses, 1);
    assert_eq!(engine.cache_stats().hits, 2);
}
