//! Save-on-eviction gate: a long-running engine with a small LRU must not
//! lose evicted plans.  With an eviction store configured
//! (`Engine::with_eviction_store`), every plan the LRU churns out is
//! persisted in the background, `save_plans` folds the evicted records into
//! its snapshot, and a restart warm-starts **every** fingerprint — the
//! churned ones included — with zero preparations and zero width DPs.

use cq_core::persist::PlanStore;
use cq_core::{Engine, EngineConfig};
use cq_structures::Structure;
use cq_workloads::distinct_query_fleet;

fn store_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cq_evict_store_{name}_{}.bin", std::process::id()));
    p
}

struct TempStore(std::path::PathBuf);

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Prepare the whole fleet through a cache that can only hold `capacity`
/// plans, forcing `fleet.len() - capacity` evictions.
fn churn(engine: &Engine, fleet: &[Structure]) {
    for q in fleet {
        engine.prepare(q);
    }
}

#[test]
fn eviction_churn_plus_graceful_save_warm_starts_every_fingerprint() {
    let path = store_path("graceful");
    let _cleanup = TempStore(path.clone());
    let config = EngineConfig::default();
    let fleet = distinct_query_fleet(10);
    let capacity = 3;

    let engine = Engine::new(config)
        .with_cache_capacity(capacity)
        .with_eviction_store(&path);
    churn(&engine, &fleet);
    let stats = engine.prep_stats();
    assert_eq!(stats.preparations, fleet.len() as u64);
    let evicted_live = engine.cache_stats().evictions;
    assert_eq!(
        evicted_live,
        (fleet.len() - capacity) as u64,
        "a capacity-{capacity} cache over {} distinct queries must evict",
        fleet.len()
    );
    assert_eq!(
        stats.plans_evicted_persisted, evicted_live,
        "every evicted plan must reach the eviction store"
    );

    // Graceful shutdown: save_plans merges live + evicted records.
    let saved = engine.save_plans(&path).expect("save_plans");
    assert_eq!(
        saved,
        fleet.len() as u64,
        "save_plans must cover evicted fingerprints, not just the {capacity} live ones"
    );
    drop(engine);

    // Restart with a roomy cache: every fingerprint warm-starts.
    let warm = Engine::new(config)
        .with_plan_store(&path)
        .expect("warm start");
    churn(&warm, &fleet);
    let warm_stats = warm.prep_stats();
    assert_eq!(warm_stats.plans_loaded, fleet.len() as u64);
    assert_eq!(
        warm_stats.preparations, 0,
        "no cold prepares after warm start"
    );
    assert_eq!(
        warm_stats.total_width_calls(),
        0,
        "no width DPs on the warm path"
    );
    assert_eq!(warm_stats.core_computations, 0);
}

#[test]
fn crash_without_save_still_persists_the_evicted_records() {
    let path = store_path("crash");
    let _cleanup = TempStore(path.clone());
    let config = EngineConfig::default();
    let fleet = distinct_query_fleet(8);
    let capacity = 2;

    let engine = Engine::new(config)
        .with_cache_capacity(capacity)
        .with_eviction_store(&path);
    churn(&engine, &fleet);
    let expected_evicted = (fleet.len() - capacity) as u64;
    assert_eq!(
        engine.prep_stats().plans_evicted_persisted,
        expected_evicted
    );
    // Simulated crash: drop without save_plans.  Drop flushes the writer,
    // so the background image must already hold every evicted record.
    drop(engine);

    let store = PlanStore::read_from(&path).expect("eviction image on disk");
    assert_eq!(store.corrupt_records(), 0);
    assert_eq!(
        store.len() as u64,
        expected_evicted,
        "the background image holds exactly the evicted plans"
    );

    // The image is a legitimate warm-start source for the evicted subset.
    let warm = Engine::new(config)
        .with_plan_store(&path)
        .expect("warm start");
    assert_eq!(warm.prep_stats().plans_loaded, expected_evicted);
    churn(&warm, &fleet);
    assert_eq!(
        warm.prep_stats().preparations,
        capacity as u64,
        "only the never-evicted (hence never-persisted) plans prepare cold"
    );
}

#[test]
fn eviction_store_seeds_from_an_existing_image_without_clobbering() {
    let path = store_path("seed");
    let _cleanup = TempStore(path.clone());
    let config = EngineConfig::default();
    let fleet = distinct_query_fleet(6);
    let (first_half, second_half) = fleet.split_at(3);

    // First run persists its evictions (capacity 1 ⇒ two of three evicted).
    let first = Engine::new(config)
        .with_cache_capacity(1)
        .with_eviction_store(&path);
    churn(&first, first_half);
    drop(first);
    let after_first = PlanStore::read_from(&path).expect("first image").len();
    assert_eq!(after_first, 2);

    // Second run over different queries seeds from the file: its image
    // keeps the first run's records alongside its own evictions.
    let second = Engine::new(config)
        .with_cache_capacity(1)
        .with_eviction_store(&path);
    churn(&second, second_half);
    drop(second);
    let merged = PlanStore::read_from(&path).expect("merged image");
    assert_eq!(
        merged.len(),
        4,
        "two evictions per run accumulate across restarts"
    );
    let mut fingerprints: Vec<u64> = merged.records().map(|r| r.fingerprint()).collect();
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), 4, "no duplicate fingerprints");
    let sorted = {
        let mut s = fingerprints.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(fingerprints, sorted, "image stays fingerprint-sorted");
}
