//! Regression gate for the silent-saturation bug: counting DPs used to
//! clamp past `u64::MAX` with saturating arithmetic, so astronomical counts
//! came back as exactly `u64::MAX` and downstream inclusion–exclusion
//! subtracted garbage with full confidence.  These instances are small
//! enough to count in microseconds but have homomorphism counts far past
//! `u64::MAX`; the engine must now report a typed
//! [`CountOutcome::Overflow`], never a clamped number.

use cq_core::{CountMethod, CountOutcome, Engine, EngineConfig};
use cq_structures::families;

#[test]
fn astronomical_counts_overflow_instead_of_clamping() {
    let engine = Engine::new(EngineConfig::default());

    // #hom(P_12, K_64) = 64 · 63^11 ≈ 6.2e21 > u64::MAX.  P_12 has
    // treedepth 4 > default threshold 3, so this exercises the
    // tree-decomposition DP tier.
    let p12 = families::path(12);
    let k64 = families::clique(64);
    let report = engine.count_instance(&p12, &k64);
    assert_eq!(report.method, CountMethod::TreeDecompositionDp);
    assert_eq!(report.count, CountOutcome::Overflow);
    // Overflow still certifies existence: > u64::MAX homomorphisms is
    // emphatically more than zero.
    assert!(report.count.positive());
    assert_eq!(report.count.exact(), None);

    // #hom(star(11), K_100) = 100 · 99^11 ≈ 9e23, through the forest
    // sum-product tier (a star has treedepth 2).
    let star = families::star(11);
    let k100 = families::clique(100);
    let report = engine.count_instance(&star, &k100);
    assert_eq!(report.method, CountMethod::ForestSumProduct);
    assert_eq!(report.count, CountOutcome::Overflow);
    assert!(report.count.positive());

    // Control: one vertex shorter on the same tiers stays finite and
    // exact, so the overflow above is a property of the count, not of the
    // instance size.
    let p2 = families::path(2);
    let exact = engine.count_instance(&p2, &k64);
    assert_eq!(exact.count, CountOutcome::Exact(64 * 63));
    let star2 = families::star(2);
    let exact = engine.count_instance(&star2, &k100);
    // Centre anywhere, each of the two leaves independently on any of the
    // other 99 vertices.
    assert_eq!(exact.count.exact(), Some(100 * 99 * 99));
}

#[test]
fn overflow_displays_as_a_word_not_a_number() {
    // The one string a caller must never see is a plausible-looking
    // clamped integer.
    assert_eq!(CountOutcome::Overflow.to_string(), "overflow");
    assert_eq!(CountOutcome::Exact(42).to_string(), "42");
}
