//! Regression tests for the prepared-query engine's core guarantee: all
//! per-query exponential work (core computation, width DPs, decompositions)
//! runs **at most once per prepared query**, no matter how many databases
//! the query is evaluated against.
//!
//! Single-threaded preparation is asserted through the thread-local call
//! counters of [`cq_decomp::stats`] and
//! [`cq_structures::core_computation_count`] (the test harness runs every
//! `#[test]` on its own thread, so those observe exactly the calls made by
//! that test).  The batch APIs fan out to worker threads, whose calls the
//! caller's thread-locals *cannot* see — batch assertions therefore go
//! through [`Engine::prep_stats`], the engine's cross-thread aggregate,
//! and a dedicated regression test pins down the undercount the aggregate
//! exists to fix.

use cq_core::{Engine, EngineConfig, PreparedQuery, QueryId};
use cq_decomp::stats;
use cq_structures::{core_computation_count, families, homomorphism_exists, star_expansion};

/// The historical bug this guards against: `solve_instance` computed the
/// width profile (one pass over all three exact DPs) and then called
/// `pathwidth_exact` / `treewidth_exact` *again* to get the decompositions
/// it had just thrown away.  Preparation must run each DP exactly once, and
/// the resulting `StructuralAnalysis` must carry the certificates.
#[test]
fn preparing_a_query_runs_each_width_dp_exactly_once() {
    let a = star_expansion(&families::path(6)); // pathwidth 1: path-sweep tier
    let decomp_before = stats::counts();
    let cores_before = core_computation_count();

    let q = PreparedQuery::prepare(&a, &EngineConfig::default());

    let delta = stats::counts().since(&decomp_before);
    assert_eq!(delta.treewidth_calls, 1, "one treewidth DP per preparation");
    assert_eq!(delta.pathwidth_calls, 1, "one pathwidth DP per preparation");
    assert_eq!(
        delta.treedepth_calls, 1,
        "one tree-depth DP per preparation"
    );
    assert_eq!(core_computation_count() - cores_before, 1);

    // The certificates are right there — nothing needs recomputing.
    let w = q.widths();
    assert_eq!(q.analysis().tree_decomposition.width(), w.treewidth);
    assert_eq!(q.analysis().path_decomposition.width(), w.pathwidth);
    assert_eq!(q.analysis().elimination_forest.height(), w.treedepth);
}

/// Solving through a prepared query does zero additional per-query work,
/// across all four solver tiers.
#[test]
fn solving_a_prepared_query_recomputes_nothing() {
    let engine = Engine::new(EngineConfig::default());
    let queries = [
        families::star(4),                    // tree-depth solver
        star_expansion(&families::path(6)),   // path sweep
        star_expansion(&families::tree_t(2)), // tree DP
        families::clique(4),                  // backtracking
    ];
    let targets = [
        families::clique(4),
        families::cycle(6),
        families::grid(3, 3),
    ];
    for a in &queries {
        let plan = engine.prepare(a);
        let decomp_before = stats::counts();
        let cores_before = core_computation_count();
        for b in &targets {
            let report = engine.solve_prepared(&plan, b);
            assert_eq!(report.exists, homomorphism_exists(a, b), "{a} -> {b}");
        }
        let delta = stats::counts().since(&decomp_before);
        assert_eq!(delta.total(), 0, "no width DP during evaluation of {a}");
        assert_eq!(
            core_computation_count(),
            cores_before,
            "no core computation during evaluation of {a}"
        );
    }
}

/// Acceptance criterion: a batch of N instances sharing one query performs
/// exactly one core computation and one decomposition pass, total.
#[test]
fn batch_over_one_query_prepares_once() {
    let engine = Engine::new(EngineConfig::default());
    let query = families::cycle(5);
    let targets: Vec<_> = (3..11).map(families::clique).collect();

    let decomp_before = stats::counts();
    let cores_before = core_computation_count();

    let id = engine.register(&query);
    let batch: Vec<(QueryId, &_)> = targets.iter().map(|t| (id, t)).collect();
    let reports = engine.solve_batch(&batch);

    assert_eq!(reports.len(), targets.len());
    for (t, report) in targets.iter().zip(&reports) {
        assert_eq!(report.exists, homomorphism_exists(&query, t));
    }
    // `register` prepared on this thread; `solve_batch` must add nothing,
    // no matter which worker threads it ran on.
    let delta = stats::counts().since(&decomp_before);
    assert_eq!(delta.treewidth_calls, 1);
    assert_eq!(delta.pathwidth_calls, 1);
    assert_eq!(delta.treedepth_calls, 1);
    assert_eq!(core_computation_count() - cores_before, 1);
    let prep = engine.prep_stats();
    assert_eq!(prep.preparations, 1);
    assert_eq!(prep.treewidth_calls, 1);
    assert_eq!(prep.pathwidth_calls, 1);
    assert_eq!(prep.treedepth_calls, 1);
    assert_eq!(prep.core_computations, 1);
}

/// The raw-instance batch API behaves identically: repeated occurrences of
/// the same query hit the plan cache instead of re-preparing.  Preparation
/// may happen on any worker thread, so the accounting goes through the
/// engine's aggregated [`PrepStats`], which is exact across workers.
#[test]
fn instance_batch_with_repeated_queries_prepares_each_distinct_query_once() {
    let engine = Engine::new(EngineConfig::default());
    let star = families::star(4);
    let cycle = families::cycle(5);
    let targets: Vec<_> = (3..7).map(families::clique).collect();

    let batch: Vec<(&_, &_)> = targets
        .iter()
        .flat_map(|t| [(&star, t), (&cycle, t)])
        .collect();
    let reports = engine.solve_batch_instances(&batch);

    for ((q, t), report) in batch.iter().zip(&reports) {
        assert_eq!(report.exists, homomorphism_exists(q, t), "{q} -> {t}");
    }
    let prep = engine.prep_stats();
    assert_eq!(prep.preparations, 2, "two distinct queries");
    assert_eq!(prep.total_width_calls(), 6, "three DPs per preparation");
    assert_eq!(prep.core_computations, 2);
    assert_eq!(engine.cache_stats().misses, 2);
    assert_eq!(engine.cache_stats().hits as usize, batch.len() - 2);
}

/// Regression test for the parallel-stats fix: a batch forced onto multiple
/// workers prepares off the calling thread, so the caller's thread-local
/// counters see **nothing** — the historical undercount — while the
/// engine's aggregated [`PrepStats`] still accounts for every preparation
/// exactly once.
#[test]
fn aggregated_prep_stats_are_exact_where_thread_locals_undercount() {
    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let queries = [
        families::star(4),
        families::cycle(5),
        families::cycle(7),
        families::clique(4),
    ];
    let targets: Vec<_> = (3..6).map(families::clique).collect();
    let batch: Vec<(&_, &_)> = queries
        .iter()
        .flat_map(|q| targets.iter().map(move |t| (q, t)))
        .collect();

    let decomp_before = stats::counts();
    let cores_before = core_computation_count();
    let global_before = stats::global_counts();

    let reports = engine.solve_batch_instances(&batch);
    assert_eq!(reports.len(), batch.len());

    // The calling thread only dispatched: its thread-locals are silent...
    assert_eq!(stats::counts().since(&decomp_before).total(), 0);
    assert_eq!(core_computation_count(), cores_before);
    // ...but the engine aggregate is exact: one preparation (one core
    // computation, one DP of each kind) per distinct query.
    let prep = engine.prep_stats();
    assert_eq!(prep.preparations, 4);
    assert_eq!(prep.treewidth_calls, 4);
    assert_eq!(prep.pathwidth_calls, 4);
    assert_eq!(prep.treedepth_calls, 4);
    assert_eq!(prep.core_computations, 4);
    // The process-wide counters saw the worker threads too (>=: concurrent
    // tests in this binary may add their own calls).
    let global_delta = stats::global_counts().since(&global_before);
    assert!(global_delta.treewidth_calls >= 4);
}
