//! Concurrency stress: many threads hammering one shared [`Engine`] with
//! overlapping query fleets.
//!
//! What must hold under fire:
//!
//! * no deadlock (the test terminating is the assertion — CI runs this
//!   binary as a dedicated step so a hang is attributable);
//! * answers are identical to an isolated sequential engine, thread by
//!   thread and instance by instance;
//! * the aggregated [`CacheStats`] are consistent
//!   (`hits + misses == lookups`);
//! * each distinct query fingerprint is prepared **exactly once**
//!   (single-flight), observable through the aggregated
//!   [`Engine::prep_stats`].
//!
//! The workloads overlap on purpose: every thread submits the same four
//! query shapes (against its own database fleet), so all threads race to
//! prepare the same plans.

use cq_core::{CountReport, Engine, EngineConfig, EngineReport};
use cq_structures::{core_of, Structure};
use cq_workloads::concurrent_query_traffic;

const THREADS: usize = 8;

/// Reference answers computed on an isolated engine, sequentially.
fn sequential_reference(instances: &[(&Structure, &Structure)]) -> Vec<EngineReport> {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    instances.iter().map(|&(q, d)| engine.solve(q, d)).collect()
}

/// Reference counts computed on an isolated engine, sequentially.
fn sequential_count_reference(instances: &[(&Structure, &Structure)]) -> Vec<CountReport> {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    instances
        .iter()
        .map(|&(q, d)| engine.count_instance(q, d))
        .collect()
}

/// How many of the distinct query shapes have a proper core — exactly the
/// plans for which the counting path must materialize its own
/// original-structure certificates (the engine reuses the decision analysis
/// whenever `core(q) == q`).
fn proper_core_count(queries: &[Structure]) -> u64 {
    queries.iter().filter(|q| core_of(q).core != **q).count() as u64
}

#[test]
fn eight_threads_hammering_one_engine_stay_consistent() {
    // Workers > 1 so each thread's own batch *also* fans out internally:
    // external threads x internal workers is the worst-case interleaving.
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    let workloads = concurrent_query_traffic(THREADS, 3, 11, 6, 2024);
    let distinct_queries = workloads[0].queries.len();

    let all_reports: Vec<Vec<EngineReport>> = std::thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| s.spawn(|| engine.solve_batch_instances(&w.instances())))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress thread panicked"))
            .collect()
    });

    // Answers: every thread got exactly what a sequential engine computes.
    for (workload, reports) in workloads.iter().zip(&all_reports) {
        assert_eq!(reports, &sequential_reference(&workload.instances()));
    }

    // Stats consistency across all the interleavings.
    let stats = engine.cache_stats();
    let total_instances: u64 = workloads.iter().map(|w| w.len() as u64).sum();
    assert_eq!(stats.lookups, total_instances, "one lookup per instance");
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    assert_eq!(stats.entries, distinct_queries);
    assert_eq!(stats.evictions, 0, "capacity far above the fleet");

    // Single-flight: the overlapping fleets share plans — each distinct
    // fingerprint was prepared exactly once, engine-wide, and each
    // preparation ran exactly one core computation and one DP of each kind.
    let prep = engine.prep_stats();
    assert_eq!(prep.preparations, distinct_queries as u64);
    assert_eq!(stats.misses, prep.preparations);
    assert_eq!(prep.core_computations, distinct_queries as u64);
    assert_eq!(prep.treewidth_calls, distinct_queries as u64);
    assert_eq!(prep.pathwidth_calls, distinct_queries as u64);
    assert_eq!(prep.treedepth_calls, distinct_queries as u64);
}

#[test]
fn mixed_decide_and_count_traffic_on_shared_fingerprints_stays_consistent() {
    // Half the threads decide, half count — over the SAME four query
    // shapes, so decision and counting traffic race to prepare (and then
    // share) the same plans.  Counting must additionally materialize the
    // original-structure certificates exactly once per plan with a proper
    // core, no matter how many counting threads race on it.
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    let workloads = concurrent_query_traffic(THREADS, 3, 11, 6, 4242);
    let queries = workloads[0].queries.clone();
    let distinct_queries = queries.len() as u64;

    std::thread::scope(|s| {
        for (i, w) in workloads.iter().enumerate() {
            if i % 2 == 0 {
                s.spawn(|| {
                    let reports = engine.solve_batch_instances(&w.instances());
                    assert_eq!(reports, sequential_reference(&w.instances()));
                });
            } else {
                s.spawn(|| {
                    let counts = engine.count_batch(&w.instances());
                    assert_eq!(counts, sequential_count_reference(&w.instances()));
                });
            }
        }
    });

    // Stats consistency across decide/count interleavings.
    let stats = engine.cache_stats();
    let total_instances: u64 = workloads.iter().map(|w| w.len() as u64).sum();
    assert_eq!(stats.lookups, total_instances, "one lookup per instance");
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    assert_eq!(stats.entries as u64, distinct_queries);

    // Exactly-once preparation — for the plans AND for the counting
    // certificates: each distinct fingerprint was prepared once
    // (single-flight), and the counting side materialized original-structure
    // certificates only for the queries whose core is proper, each once
    // (the plan's interior OnceLock single-flights racing counters).
    let prep = engine.prep_stats();
    assert_eq!(prep.preparations, distinct_queries);
    assert_eq!(stats.misses, prep.preparations);
    assert_eq!(prep.counting_preparations, proper_core_count(&queries));
    assert!(
        prep.counting_preparations > 0,
        "fleet must contain a proper-core query or the counting invariant is vacuous"
    );
    // One decision analysis per preparation plus one counting analysis per
    // proper-core plan: each runs every width DP exactly once.
    assert_eq!(
        prep.treewidth_calls,
        prep.preparations + prep.counting_preparations
    );
    assert_eq!(
        prep.treedepth_calls,
        prep.preparations + prep.counting_preparations
    );
}

#[test]
fn counts_stay_stable_under_eviction_churn() {
    // A deliberately tiny sharded cache under mixed decide/count traffic:
    // plans (and their counting certificates) are evicted and re-prepared
    // concurrently.  Exactly-once is off the table — bit-stable counts,
    // consistency and termination are not.
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    })
    .with_cache_shards(2)
    .with_cache_capacity(2);
    let workloads = concurrent_query_traffic(THREADS, 2, 10, 4, 99);

    std::thread::scope(|s| {
        for (i, w) in workloads.iter().enumerate() {
            if i % 2 == 0 {
                s.spawn(|| {
                    let counts = engine.count_batch(&w.instances());
                    assert_eq!(counts, sequential_count_reference(&w.instances()));
                });
            } else {
                s.spawn(|| {
                    let reports = engine.solve_batch_instances(&w.instances());
                    assert_eq!(reports, sequential_reference(&w.instances()));
                });
            }
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    assert!(stats.entries <= 2, "capacity bound holds under churn");
    let prep = engine.prep_stats();
    // Every cache miss that ran to completion is a preparation, and churn
    // re-materializes counting certificates at most once per preparation.
    assert_eq!(prep.preparations, stats.misses);
    assert!(prep.counting_preparations <= prep.preparations);
}

#[test]
fn stress_survives_an_eviction_churning_cache() {
    // A deliberately tiny sharded cache under the same overlapping traffic:
    // plans are evicted and re-prepared concurrently, so the exactly-once
    // invariant is off the table — consistency and termination are not.
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    })
    .with_cache_shards(2)
    .with_cache_capacity(2);
    let workloads = concurrent_query_traffic(THREADS, 2, 10, 4, 7);

    std::thread::scope(|s| {
        for w in &workloads {
            s.spawn(|| {
                let reports = engine.solve_batch_instances(&w.instances());
                assert_eq!(reports, sequential_reference(&w.instances()));
            });
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    assert!(stats.entries <= 2, "capacity bound holds under churn");
    // Every cache miss that ran to completion is a preparation.
    assert_eq!(engine.prep_stats().preparations, stats.misses);
}
