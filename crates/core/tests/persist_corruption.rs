//! Corruption-fuzz of the plan-store decoder over a seeded mutation corpus:
//! truncations, bit flips, hostile length fields, wrong magic/version —
//! every mutation must yield a clean `DecodeError` (or a cleanly rejected
//! record), never a panic, a hang, or a wrong plan.
//!
//! Two layers are attacked separately:
//!
//! 1. the **file frame** (magic/version/checksums) — raw byte mutations,
//!    which the whole-file checksum must catch;
//! 2. the **record payload decoder** — mutated payloads re-framed behind
//!    *fresh, valid* checksums (via `PlanStore::push_raw_record`), so the
//!    `PreparedQuery` decoder and the plan verifier face the hostile bytes
//!    directly.  Surviving records must still answer correctly.

use cq_core::{Engine, EngineConfig, PlanStore, PreparedQuery};
use cq_structures::codec::{decode_from_slice, encode_to_vec};
use cq_structures::{families, homomorphism_exists, Structure};

/// Deterministic xorshift64* PRNG — the fuzz corpus is fully reproducible
/// from the printed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn corpus_queries() -> Vec<Structure> {
    vec![
        families::star(3),
        families::cycle(5),
        families::path(4), // proper core: exercises the counting option
        families::directed_path(3),
    ]
}

/// A store whose plans carry every lazily materialized artifact, so the
/// mutation corpus reaches the sentence/staircase/counting decoders too.
fn rich_store_bytes() -> Vec<u8> {
    let config = EngineConfig::default();
    let engine = Engine::new(config);
    for q in corpus_queries() {
        engine.solve(&q, &families::clique(3));
        engine.count_instance(&q, &families::clique(3));
    }
    let mut path = std::env::temp_dir();
    path.push(format!("cq_fuzz_store_{}.bin", std::process::id()));
    engine.save_plans(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn every_truncation_fails_cleanly() {
    let bytes = rich_store_bytes();
    for len in 0..bytes.len() {
        let err = PlanStore::from_bytes(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes parsed"));
        let _ = err.to_string(); // every error renders
    }
}

#[test]
fn seeded_bit_flips_never_panic_and_never_yield_a_wrong_plan() {
    let bytes = rich_store_bytes();
    let seed = 0x5eed_cafe_f00d_0001u64;
    println!("bit-flip corpus: {} bytes, seed {seed:#x}", bytes.len());
    let mut rng = Rng(seed);
    for round in 0..400 {
        let mut mutated = bytes.clone();
        // 1–3 bit flips per round.
        for _ in 0..=rng.below(2) {
            let pos = rng.below(mutated.len());
            mutated[pos] ^= 1 << rng.below(8);
        }
        match PlanStore::from_bytes(&mutated) {
            // The whole-file checksum catches raw flips; anything that
            // somehow still parses must be adoptable without panicking and
            // must keep answers right.
            Err(_) => {}
            Ok(store) => assert_adoption_is_sound(&store, round),
        }
    }
}

#[test]
fn mutated_payloads_behind_valid_checksums_are_rejected_or_harmless() {
    // Attack layer 2: the payload decoder itself.  Each round mutates one
    // plan payload, then re-frames it behind *fresh* checksums so the file
    // parses and the PreparedQuery decoder faces the hostile bytes.
    let config = EngineConfig::default();
    let queries = corpus_queries();
    let payloads: Vec<(u64, Vec<u8>)> = queries
        .iter()
        .map(|q| {
            let plan = PreparedQuery::prepare(q, &config);
            plan.counting_analysis();
            plan.sentence();
            plan.staircase();
            (plan.fingerprint(), encode_to_vec(&plan))
        })
        .collect();
    let seed = 0x5eed_cafe_f00d_0002u64;
    println!(
        "payload corpus: {} payloads, seed {seed:#x}",
        payloads.len()
    );
    let mut rng = Rng(seed);
    for round in 0..300 {
        let victim = rng.below(payloads.len());
        let (fingerprint, original) = &payloads[victim];
        let mut payload = original.clone();
        match round % 3 {
            0 => {
                // Bit flips.
                for _ in 0..=rng.below(3) {
                    let pos = rng.below(payload.len());
                    payload[pos] ^= 1 << rng.below(8);
                }
            }
            1 => {
                // Truncation.
                payload.truncate(rng.below(payload.len()));
            }
            _ => {
                // Hostile length field: stamp a huge little-endian u64 at a
                // random aligned-ish offset.
                let pos = rng.below(payload.len().saturating_sub(8));
                let bogus = (u64::MAX - rng.next() % 1024).to_le_bytes();
                payload[pos..pos + 8].copy_from_slice(&bogus);
            }
        }
        // The raw decoder must be total: Err or a value, never a panic.
        let decoded = decode_from_slice::<PreparedQuery>(&payload);
        if let Ok(plan) = &decoded {
            // If it decodes, verification + the engine's confirmation paths
            // must keep answers sound end to end.
            let _ = plan.verify(&config);
        }
        // End to end through a re-sealed store.
        let mut store = PlanStore::new(config);
        store.push_raw_record(*fingerprint, payload);
        let resealed =
            PlanStore::from_bytes(&store.to_bytes()).expect("fresh checksums must parse");
        assert_adoption_is_sound(&resealed, round);
    }
}

/// Adopt a (possibly hostile) store into a fresh engine and prove the
/// engine still answers every corpus instance correctly — loaded plans are
/// verified, rejected plans degrade to cold prepares, and in neither case
/// does an answer change.
fn assert_adoption_is_sound(store: &PlanStore, round: usize) {
    let engine = Engine::new(EngineConfig::default());
    let summary = engine.adopt_store(store);
    let stats = engine.prep_stats();
    assert_eq!(stats.plans_loaded, summary.loaded, "round {round}");
    for q in corpus_queries() {
        for t in [families::clique(3), families::cycle(5)] {
            let report = engine.solve(&q, &t);
            assert_eq!(
                report.exists,
                homomorphism_exists(&q, &t),
                "round {round}: wrong answer for {q} -> {t} after adoption"
            );
        }
    }
}

#[test]
fn wrong_magic_and_foreign_files_fail_cleanly() {
    for bogus in [
        &b""[..],
        &b"CQPLANS"[..],          // magic truncated
        &b"NOTPLANS........"[..], // wrong magic
        &[0u8; 64][..],
        &[0xffu8; 64][..],
    ] {
        assert!(PlanStore::from_bytes(bogus).is_err());
    }
}

#[test]
fn hostile_record_count_fails_before_allocating() {
    // A syntactically well-formed frame whose record count is absurd: the
    // count check must fire against the remaining length, not allocate.
    let store = PlanStore::new(EngineConfig::default());
    let mut bytes = store.to_bytes();
    // Record count sits right after the config block; rather than compute
    // the offset, splice a huge count where the (empty) record table's
    // count lives: last 8 bytes before the file checksum.
    let n = bytes.len();
    bytes[n - 16..n - 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let body_end = n - 8;
    let seal = cq_structures::codec::fnv1a64(&bytes[..body_end]).to_le_bytes();
    bytes[body_end..].copy_from_slice(&seal);
    assert!(matches!(
        PlanStore::from_bytes(&bytes),
        Err(cq_structures::codec::DecodeError::LengthOutOfRange { .. })
    ));
}
