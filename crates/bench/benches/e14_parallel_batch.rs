//! E14 — parallel batch evaluation: scoped thread-pool fan-out speedup
//! over the sequential path, and sharded-cache vs single-lock contention.
//!
//! Two sweeps, both printed as tables:
//!
//! 1. **Worker sweep** — the same repeated-query trace through
//!    `solve_batch_instances` with `workers = 1, 2, 4, …`: wall-clock per
//!    batch and speedup vs the sequential path.  On a 4+-core machine the
//!    parallel rows must show ≥ 2x; on fewer cores the table degenerates
//!    honestly (the fan-out costs nothing but buys nothing).
//! 2. **Shard sweep** — 8 threads hammering one shared engine (warm cache,
//!    every lookup a hit) with the shard count swept 1 → 16: per-lookup
//!    cost under contention.  One shard serializes every lookup on a single
//!    mutex; sharding spreads them.

use cq_bench::median_time;
use cq_core::{Engine, EngineConfig};
use cq_structures::Structure;
use cq_workloads::{distinct_query_fleet, repeated_query_traffic};
use criterion::{criterion_group, criterion_main, Criterion};

fn engine_with_workers(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    })
}

fn bench(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("E14: available parallelism = {cores} core(s)");
    if cores < 4 {
        println!("E14: note — speedup targets assume 4+ cores; this machine has {cores}");
    }

    // ---- Worker sweep: parallel solve_batch_instances vs sequential ----
    // Mixed repeated-query traffic (4 query shapes x 24 repeats, databases
    // of 16 vertices): enough per-instance solver work that fan-out
    // amortizes thread spawn, with preparation amortized by the warm cache.
    let traffic = repeated_query_traffic(8, 16, 24, 42);
    let instances = traffic.instances();
    println!(
        "E14: worker sweep over {} instances ({} distinct queries, {} databases)",
        instances.len(),
        traffic.queries.len(),
        traffic.databases.len()
    );

    let mut worker_counts = vec![1usize, 2, 4, 8];
    if cores > 8 {
        worker_counts.push(cores);
    }
    let mut sequential_time = None;
    println!("  workers | median batch time | speedup vs workers=1");
    for &workers in &worker_counts {
        let engine = engine_with_workers(workers);
        engine.solve_batch_instances(&instances); // warm the plan cache
        let t = median_time(7, || {
            engine.solve_batch_instances(&instances);
        });
        let baseline = *sequential_time.get_or_insert(t);
        println!(
            "  {workers:>7} | {t:>17.3?} | {:>6.2}x",
            baseline.as_secs_f64() / t.as_secs_f64()
        );
    }

    // The same two end points through the criterion harness, for the
    // uniform `bench ...` output lines the other experiments produce.
    let mut g = c.benchmark_group("e14");
    g.sample_size(10);
    g.bench_function("sequential: solve_batch_instances, workers=1", |b| {
        let engine = engine_with_workers(1);
        engine.solve_batch_instances(&instances);
        b.iter(|| engine.solve_batch_instances(&instances).len())
    });
    g.bench_function("parallel: solve_batch_instances, workers=auto", |b| {
        let engine = engine_with_workers(0);
        engine.solve_batch_instances(&instances);
        b.iter(|| engine.solve_batch_instances(&instances).len())
    });
    g.finish();

    // ---- Shard sweep: cache-lock contention under concurrent lookups ----
    // 8 threads, warm cache, every prepare() a hit: the measured cost is
    // the shard mutex + slot scan.  distinct_query_fleet gives every
    // fingerprint its own slot so single-lock contention is maximal.
    const HAMMER_THREADS: usize = 8;
    const ROUNDS: usize = 40;
    let fleet: Vec<Structure> = distinct_query_fleet(16);
    println!(
        "E14: shard sweep — {HAMMER_THREADS} threads x {ROUNDS} rounds of hits over {} cached plans",
        fleet.len()
    );
    println!("  shards | median hammer time | vs 1 shard");
    let mut single_shard_time = None;
    for shards in [1usize, 2, 4, 8, 16] {
        let engine = engine_with_workers(1).with_cache_shards(shards);
        for q in &fleet {
            engine.prepare(q); // warm: all lookups below are hits
        }
        let t = median_time(5, || {
            std::thread::scope(|s| {
                for _ in 0..HAMMER_THREADS {
                    s.spawn(|| {
                        for _ in 0..ROUNDS {
                            for q in &fleet {
                                criterion::black_box(engine.prepare(q));
                            }
                        }
                    });
                }
            });
        });
        let baseline = *single_shard_time.get_or_insert(t);
        println!(
            "  {shards:>6} | {t:>18.3?} | {:>6.2}x",
            baseline.as_secs_f64() / t.as_secs_f64()
        );
        let stats = engine.cache_stats();
        assert_eq!(stats.hits + stats.misses, stats.lookups);
    }

    // Accounting sanity printed like E13's closing lines: one warm pass.
    let engine = engine_with_workers(0);
    engine.solve_batch_instances(&instances);
    let stats = engine.cache_stats();
    let prep = engine.prep_stats();
    println!(
        "E14: one warm pass: {} lookups = {} hits + {} misses; {} preparations across workers",
        stats.lookups, stats.hits, stats.misses, prep.preparations
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
